//! # network-tomography
//!
//! A from-scratch Rust reproduction of **"Shifting Network Tomography Toward
//! A Practical Goal"** (Ghita, Karakus, Argyraki, Thiran — ACM CoNEXT 2011).
//!
//! The paper considers a Tier-1 ISP that wants to monitor the congestion of
//! its peers from end-to-end path measurements only. It shows that the
//! classical goal — *Boolean Inference*, inferring exactly which links were
//! congested in each interval — cannot be solved accurately enough under
//! realistic conditions (sparse traceroute-derived topologies, correlated
//! links, non-stationary dynamics), and argues for solving *Congestion
//! Probability Computation* instead: how frequently each set of links is
//! congested. The paper contributes an algorithm (here
//! [`prob::CorrelationComplete`]) that solves it accurately under only the
//! Separability, E2E-Monitoring and Correlation-Sets assumptions.
//!
//! This crate is a facade over the workspace:
//!
//! * [`graph`] — the network model (links, paths, correlation sets,
//!   identifiability conditions).
//! * [`linalg`] — the dense linear-algebra substrate (RREF, QR, null space,
//!   the incremental null-space update of Algorithm 2).
//! * [`topology`] — BRITE-style and traceroute-derived topology generators.
//! * [`sim`] — the congestion/loss simulator and scenarios of §3.2.
//! * [`prob`] — the Probability Computation algorithms of §5
//!   (Correlation-complete, Independence, Correlation-heuristic).
//! * [`inference`] — the Boolean Inference baselines of §3
//!   (Sparsity, Bayesian-Independence, Bayesian-Correlation).
//! * [`metrics`] — detection rate, false-positive rate, absolute error, CDFs.
//! * [`experiments`] — the harness that regenerates every figure and table.
//!
//! ## Quickstart
//!
//! ```
//! use network_tomography::prelude::*;
//!
//! // The toy topology of Fig. 1 of the paper.
//! let network = network_tomography::graph::toy::fig1_case1();
//!
//! // Simulate a congestion scenario on it.
//! let mut scenario = ScenarioConfig::random_congestion();
//! scenario.congestible_fraction = 0.5;
//! let sim = Simulator::new(SimulationConfig::fast(scenario, 300, 42));
//! let output = sim.run(&network);
//!
//! // Estimate congestion probabilities from the path observations alone.
//! let estimate = CorrelationComplete::default().compute(&network, &output.observations);
//! for link in network.link_ids() {
//!     let p = estimate.link_congestion_probability(link);
//!     assert!((0.0..=1.0).contains(&p));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tomo_experiments as experiments;
pub use tomo_graph as graph;
pub use tomo_inference as inference;
pub use tomo_linalg as linalg;
pub use tomo_metrics as metrics;
pub use tomo_prob as prob;
pub use tomo_sim as sim;
pub use tomo_topology as topology;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use tomo_graph::{
        AsId, CorrelationSet, CorrelationSubset, LinkId, Network, NetworkBuilder, NodeId, Path,
        PathId,
    };
    pub use tomo_inference::{
        infer_all_intervals, BayesianCorrelation, BayesianIndependence, BooleanInference, Sparsity,
    };
    pub use tomo_metrics::{AbsoluteErrorStats, Cdf, InferenceScore};
    pub use tomo_prob::{
        CorrelationComplete, CorrelationHeuristic, Independence, ProbabilityComputation,
        ProbabilityEstimate,
    };
    pub use tomo_sim::{
        MeasurementMode, PathObservations, ScenarioConfig, ScenarioKind, SimulationConfig,
        SimulationOutput, Simulator,
    };
    pub use tomo_topology::{BriteConfig, BriteGenerator, SparseConfig, SparseGenerator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let network = crate::graph::toy::fig1_case1();
        let mut scenario = ScenarioConfig::no_independence();
        scenario.congestible_fraction = 0.5;
        let sim = Simulator::new(SimulationConfig::fast(scenario, 100, 7));
        let out = sim.run(&network);
        let est = CorrelationComplete::default().compute(&network, &out.observations);
        assert_eq!(est.num_links(), network.num_links());
    }
}
