//! # network-tomography
//!
//! A from-scratch Rust reproduction of **"Shifting Network Tomography Toward
//! A Practical Goal"** (Ghita, Karakus, Argyraki, Thiran — ACM CoNEXT 2011).
//!
//! The paper considers a Tier-1 ISP that wants to monitor the congestion of
//! its peers from end-to-end path measurements only. It shows that the
//! classical goal — *Boolean Inference*, inferring exactly which links were
//! congested in each interval — cannot be solved accurately enough under
//! realistic conditions (sparse traceroute-derived topologies, correlated
//! links, non-stationary dynamics), and argues for solving *Congestion
//! Probability Computation* instead: how frequently each set of links is
//! congested. The paper contributes an algorithm (here
//! [`prob::CorrelationComplete`]) that solves it accurately under only the
//! Separability, E2E-Monitoring and Correlation-Sets assumptions.
//!
//! This crate is a facade over the workspace:
//!
//! * [`graph`] — the network model (links, paths, correlation sets,
//!   identifiability conditions).
//! * [`linalg`] — the dense linear-algebra substrate (RREF, QR, null space,
//!   the incremental null-space update of Algorithm 2).
//! * [`topology`] — BRITE-style and traceroute-derived topology generators.
//! * [`sim`] — the congestion/loss simulator and scenarios of §3.2.
//! * [`prob`] — the Probability Computation algorithms of §5
//!   (Correlation-complete, Independence, Correlation-heuristic).
//! * [`inference`] — the Boolean Inference baselines of §3
//!   (Sparsity, Bayesian-Independence, Bayesian-Correlation).
//! * [`metrics`] — detection rate, false-positive rate, absolute error, CDFs.
//! * [`pipeline`] — the unified estimation API: the `Estimator` trait, the
//!   `Pipeline`/`Experiment` runner, the string-keyed estimator registry
//!   and the typed `TomoError`.
//! * [`experiments`] — the harness that regenerates every figure and table
//!   through the pipeline API.
//! * [`sweep`] — the parallel experiment-sweep engine: cartesian scenario
//!   grids fanned across a work-stealing thread pool with deterministic
//!   per-task seeding and JSON-lines reports.
//! * [`serve`] — the online multi-tenant streaming-tomography daemon: one
//!   process serves a fleet of topologies (sharded tenant registry,
//!   versioned v2 JSON-lines protocol, bounded-ingest backpressure),
//!   incrementally re-estimated queries, per-tenant snapshot/restore.
//! * [`chaos`] — the fault-injection subsystem: the `FaultKind`/`FaultEvent`
//!   taxonomy shared by the adversarial simulator dynamics and the
//!   reaction-scoring metrics, plus the deterministic wire-level chaos
//!   proxy.
//!
//! ## Quickstart
//!
//! All six algorithms of the paper run through one entry point: build a
//! [`pipeline::Pipeline`] over a network, pick an estimator from the
//! registry by name, and run the simulate → observe → estimate → score loop:
//!
//! ```
//! use network_tomography::prelude::*;
//!
//! // The toy topology of Fig. 1 of the paper.
//! let network = network_tomography::graph::toy::fig1_case1();
//!
//! // Simulate a correlated-congestion scenario and run the paper's
//! // Correlation-complete algorithm on the path observations alone.
//! let mut scenario = ScenarioConfig::no_independence();
//! scenario.congestible_fraction = 0.5;
//! let mut algorithm = estimators::by_name("correlation-complete")?;
//! let outcome = Pipeline::on(network.clone())
//!     .scenario(scenario)
//!     .intervals(300)
//!     .seed(42)
//!     .run(algorithm.as_mut())?;
//!
//! let estimate = outcome.estimate.expect("probability capability");
//! for link in network.link_ids() {
//!     let p = estimate.link_congestion_probability(link);
//!     assert!((0.0..=1.0).contains(&p));
//! }
//! # Ok::<(), network_tomography::pipeline::TomoError>(())
//! ```
//!
//! To compare several estimators on the *same* simulated data (as the
//! paper's figures do), split the run into `Pipeline::simulate()` and
//! `Experiment::evaluate(..)` — see [`pipeline`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tomo_chaos as chaos;
pub use tomo_core as pipeline;
pub use tomo_experiments as experiments;
pub use tomo_graph as graph;
pub use tomo_inference as inference;
pub use tomo_linalg as linalg;
pub use tomo_metrics as metrics;
pub use tomo_prob as prob;
pub use tomo_serve as serve;
pub use tomo_sim as sim;
pub use tomo_sweep as sweep;
pub use tomo_topology as topology;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use tomo_core::online::{OnlineCorrelation, OnlineEstimator, OnlineIndependence, Refit};
    pub use tomo_core::{
        estimators, Capabilities, Estimator, EstimatorOptions, Experiment, Pipeline, RunOutcome,
        SessionConfig, TomoError, TomographySession,
    };
    pub use tomo_graph::{
        AsId, CorrelationSet, CorrelationSubset, LinkId, Network, NetworkBuilder, NodeId, Path,
        PathId,
    };
    pub use tomo_inference::{
        infer_all_intervals, BayesianCorrelation, BayesianIndependence, BooleanInference, Sparsity,
    };
    pub use tomo_metrics::{AbsoluteErrorStats, Cdf, InferenceScore};
    pub use tomo_prob::{
        CorrelationComplete, CorrelationHeuristic, Independence, ProbabilityComputation,
        ProbabilityEstimate,
    };
    pub use tomo_serve::{Client, EngineRegistry, RegistryConfig, Server, TenantId};
    pub use tomo_sim::{
        MeasurementMode, PathObservations, ScenarioConfig, ScenarioKind, SimulationConfig,
        SimulationOutput, Simulator,
    };
    pub use tomo_sweep::{SweepGrid, SweepRecord, SweepReport, SweepRunner, TopologySpec};
    pub use tomo_topology::{BriteConfig, BriteGenerator, SparseConfig, SparseGenerator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let network = crate::graph::toy::fig1_case1();
        let mut scenario = ScenarioConfig::no_independence();
        scenario.congestible_fraction = 0.5;
        let sim = Simulator::new(SimulationConfig::fast(scenario, 100, 7));
        let out = sim.run(&network);
        let est = CorrelationComplete::default().compute(&network, &out.observations);
        assert_eq!(est.num_links(), network.num_links());
    }

    #[test]
    fn pipeline_facade_runs_registry_estimators() {
        let network = crate::graph::toy::fig1_case1();
        let experiment = Pipeline::on(network)
            .scenario(ScenarioConfig::random_congestion())
            .intervals(80)
            .seed(5)
            .measurement(MeasurementMode::Ideal)
            .simulate()
            .expect("simulates");
        for name in estimators::names() {
            let mut est = estimators::by_name(name).expect("known name");
            let outcome = experiment.evaluate(est.as_mut()).expect("evaluates");
            assert_eq!(outcome.estimator, est.name());
        }
    }
}
