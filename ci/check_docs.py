#!/usr/bin/env python3
"""Docs-drift gate: the operations runbook must track the wire protocol.

``docs/OPERATIONS.md`` documents the v2 request grammar, the full error
taxonomy, the topology-drift event taxonomy, and the chaos fault taxonomy.
Those lists rot silently when someone adds a ``Request``/``ErrorKind``
variant to ``crates/tomo-serve/src/protocol.rs``, a ``DriftKind`` variant
to ``crates/tomo-topo/src/drift.rs``, or a ``FaultKind`` variant to
``crates/tomo-chaos/src/fault.rs`` — without touching the runbook. So CI
extracts the variant names straight from the enum source and fails unless
every one of them appears in the doc.

The check is membership, not prose: each variant name must occur verbatim
somewhere in OPERATIONS.md. Removing a variant from the source without
pruning the doc also fails (the doc would promise behavior the daemon can
no longer emit).
"""

import re
import sys

OPERATIONS = "docs/OPERATIONS.md"

# (source file, enum) pairs whose variants the runbook must enumerate.
ENUMS = (
    ("crates/tomo-serve/src/protocol.rs", "ErrorKind"),
    ("crates/tomo-serve/src/protocol.rs", "Request"),
    ("crates/tomo-topo/src/drift.rs", "DriftKind"),
    ("crates/tomo-chaos/src/fault.rs", "FaultKind"),
)


def enum_variants(source, path, enum_name):
    """Extracts top-level variant names of ``pub enum <enum_name>``."""
    match = re.search(
        rf"pub enum {enum_name}\s*\{{(.*?)\n\}}", source, re.DOTALL
    )
    if not match:
        sys.exit(f"check_docs: cannot find `pub enum {enum_name}` in {path}")
    body = match.group(1)
    variants = []
    depth = 0
    for line in body.splitlines():
        stripped = line.strip()
        # Only lines at brace-depth 0 can start a variant; skip attribute
        # lines, doc comments, and the bodies of struct-style variants.
        if depth == 0 and stripped and not stripped.startswith(("#", "/")):
            m = re.match(r"([A-Z][A-Za-z0-9]*)", stripped)
            if m:
                variants.append(m.group(1))
        depth += line.count("{") + line.count("(") - line.count("}") - line.count(")")
    if not variants:
        sys.exit(f"check_docs: no variants parsed for {enum_name}")
    return variants


def main():
    try:
        with open(OPERATIONS, encoding="utf-8") as fh:
            doc = fh.read()
    except OSError as e:
        sys.exit(f"check_docs: {e}")

    failures = []
    doc_words = set(re.findall(r"[A-Za-z0-9]+", doc))
    for path, enum_name in ENUMS:
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as e:
            sys.exit(f"check_docs: {e}")
        variants = enum_variants(source, path, enum_name)
        missing = [v for v in variants if v not in doc_words]
        failures.extend(
            f"{enum_name}::{v} is in {path} but never mentioned in {OPERATIONS}"
            for v in missing
        )
        print(
            f"check_docs: {enum_name}: {len(variants)} variants, "
            f"{len(variants) - len(missing)} documented"
        )

    if failures:
        print("check_docs: FAIL — the operations runbook drifted from the protocol:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        sys.exit(1)
    print("check_docs: OK — OPERATIONS.md covers the full protocol surface")


if __name__ == "__main__":
    main()
