#!/usr/bin/env python3
"""Docs-drift gate: the operations runbook must track the wire protocol.

``docs/OPERATIONS.md`` documents the v2 request grammar and the full error
taxonomy. Those lists rot silently when someone adds a ``Request`` or
``ErrorKind`` variant to ``crates/tomo-serve/src/protocol.rs`` without
touching the runbook — so CI extracts the variant names straight from the
enum source and fails unless every one of them appears in the doc.

The check is membership, not prose: each variant name must occur verbatim
somewhere in OPERATIONS.md. Removing a variant from the protocol without
pruning the doc also fails (the doc would promise an error kind the daemon
can no longer emit).
"""

import re
import sys

PROTOCOL = "crates/tomo-serve/src/protocol.rs"
OPERATIONS = "docs/OPERATIONS.md"

# Enums whose variants the runbook must enumerate.
ENUMS = ("ErrorKind", "Request")


def enum_variants(source, enum_name):
    """Extracts top-level variant names of ``pub enum <enum_name>``."""
    match = re.search(
        rf"pub enum {enum_name}\s*\{{(.*?)\n\}}", source, re.DOTALL
    )
    if not match:
        sys.exit(f"check_docs: cannot find `pub enum {enum_name}` in {PROTOCOL}")
    body = match.group(1)
    variants = []
    depth = 0
    for line in body.splitlines():
        stripped = line.strip()
        # Only lines at brace-depth 0 can start a variant; skip attribute
        # lines, doc comments, and the bodies of struct-style variants.
        if depth == 0 and stripped and not stripped.startswith(("#", "/")):
            m = re.match(r"([A-Z][A-Za-z0-9]*)", stripped)
            if m:
                variants.append(m.group(1))
        depth += line.count("{") + line.count("(") - line.count("}") - line.count(")")
    if not variants:
        sys.exit(f"check_docs: no variants parsed for {enum_name}")
    return variants


def main():
    try:
        with open(PROTOCOL, encoding="utf-8") as fh:
            source = fh.read()
        with open(OPERATIONS, encoding="utf-8") as fh:
            doc = fh.read()
    except OSError as e:
        sys.exit(f"check_docs: {e}")

    failures = []
    doc_words = set(re.findall(r"[A-Za-z0-9]+", doc))
    for enum_name in ENUMS:
        variants = enum_variants(source, enum_name)
        missing = [v for v in variants if v not in doc_words]
        failures.extend(
            f"{enum_name}::{v} is in {PROTOCOL} but never mentioned in {OPERATIONS}"
            for v in missing
        )
        print(
            f"check_docs: {enum_name}: {len(variants)} variants, "
            f"{len(variants) - len(missing)} documented"
        )

    if failures:
        print("check_docs: FAIL — the operations runbook drifted from the protocol:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        sys.exit(1)
    print("check_docs: OK — OPERATIONS.md covers the full protocol surface")


if __name__ == "__main__":
    main()
