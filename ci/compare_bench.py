#!/usr/bin/env python3
"""Bench-regression gate: compare a criterion-shim JSON report against a
committed baseline and fail on wall-clock regressions.

Both files use the format the vendored criterion shim emits when
``TOMO_BENCH_JSON=path`` is set: one JSON object per line with ``name``,
``median_ns`` and ``samples`` keys.

Rules:

* a benchmark regresses when ``current >= baseline * threshold``
  (default threshold 1.25, i.e. >25% slower);
* benchmarks where either side is faster than ``--min-ns`` (default 50 µs)
  are reported but never fail the gate — at that scale the shim's median
  over a handful of smoke samples is noise;
* a benchmark present in the baseline but missing from the current run
  fails (deleting a hot-path bench must come with a baseline refresh);
* a benchmark present only in the current run is reported as new.

Refresh baselines with ``--update`` (copies the current report over the
baseline file); see README "Refreshing bench baselines".
"""

import argparse
import json
import sys


def load_report(path):
    """Parses a JSON-lines bench report into {name: median_ns}."""
    results = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    results[entry["name"]] = float(entry["median_ns"])
                except (json.JSONDecodeError, KeyError, TypeError, ValueError) as e:
                    sys.exit(f"{path}:{lineno}: malformed bench entry: {e}")
    except OSError as e:
        sys.exit(f"cannot read {path}: {e}")
    if not results:
        sys.exit(f"{path}: no benchmark entries found")
    return results


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3f} us"
    return f"{ns:.0f} ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed BENCH_*.json file")
    parser.add_argument("--current", required=True, help="fresh TOMO_BENCH_JSON report")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="fail when current >= baseline * threshold (default 1.25)",
    )
    parser.add_argument(
        "--min-ns",
        type=float,
        default=50_000,
        help="ignore regressions when either median is below this (default 50000)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="overwrite the baseline with the current report and exit",
    )
    args = parser.parse_args()

    current = load_report(args.current)

    if args.update:
        with open(args.current, "r", encoding="utf-8") as src:
            content = src.read()
        with open(args.baseline, "w", encoding="utf-8") as dst:
            dst.write(content)
        print(f"baseline {args.baseline} refreshed from {args.current}")
        return

    baseline = load_report(args.baseline)
    failures = []
    for name, base_ns in sorted(baseline.items()):
        if name not in current:
            failures.append(
                f"MISSING  {name}: present in baseline but not in the current run "
                f"(refresh {args.baseline} if the bench was intentionally removed)"
            )
            continue
        cur_ns = current[name]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        verdict = "ok"
        if ratio >= args.threshold:
            if min(cur_ns, base_ns) < args.min_ns:
                verdict = "noise (below --min-ns, not gated)"
            else:
                verdict = "REGRESSION"
                failures.append(
                    f"REGRESSION  {name}: {fmt_ns(base_ns)} -> {fmt_ns(cur_ns)} "
                    f"({ratio:.2f}x, threshold {args.threshold:.2f}x)"
                )
        print(f"  {name:<50} {fmt_ns(base_ns):>12} -> {fmt_ns(cur_ns):>12}  {ratio:5.2f}x  {verdict}")

    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:<50} {'—':>12} -> {fmt_ns(current[name]):>12}   new (not in baseline)")

    if failures:
        print(f"\n{len(failures)} bench-regression failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print(
            f"\nIf the slowdown is intended, refresh the baseline:\n"
            f"  python3 ci/compare_bench.py --baseline {args.baseline} "
            f"--current {args.current} --update",
            file=sys.stderr,
        )
        sys.exit(1)
    print("bench-regression gate: OK")


if __name__ == "__main__":
    main()
