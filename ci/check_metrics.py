#!/usr/bin/env python3
"""Smoke-test assertions over a `probe-client metrics` JSON report.

The daemon's fleet `Metrics` response is one JSON object (see
``MetricsReport`` in ``crates/tomo-serve/src/protocol.rs``). CI captures it
with ``probe-client metrics --addr ... > report.json`` and runs this script
to assert the observability layer actually observed something:

* ``--expect-total N``: the fleet-wide ingested-interval counter is exactly N;
* ``--expect-tenants N``: exactly N per-tenant rows;
* ``--require-net``: network I/O counters are present and non-zero;
* ``--sum-of A.json B.json ...``: *merge consistency* — this report's
  ``total_intervals`` equals the sum over the listed per-backend reports,
  its tenant names are exactly the union of theirs, and each merged row's
  ``ingested_intervals`` is the sum over same-named backend rows (several
  backends may legitimately carry the same tenant id — the implicit
  ``default`` tenant, or a tenant mid-rebalance — and the router merges
  those rows into one). This is the invariant that catches a router
  dropping or double-counting a backend in the fan-out.

Every populated per-tenant row is additionally required to carry ordered,
non-zero ingest quantiles (p50 <= p95 <= p99) — histograms that were wired
through but never recorded show up here as zeros.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"cannot load metrics report {path}: {e}")


def fail(msg):
    sys.exit(f"check_metrics: FAIL: {msg}")


def check_rows(report, path):
    for row in report.get("per_tenant", []):
        tenant = row.get("tenant", "<unnamed>")
        if row.get("ingested_intervals", 0) == 0:
            continue
        ingest = row.get("ingest", {})
        if ingest.get("count", 0) == 0:
            fail(f"{path}: tenant {tenant} ingested intervals but has an empty histogram")
        p50, p95, p99 = (ingest.get(k, 0) for k in ("p50_ns", "p95_ns", "p99_ns"))
        if not 0 < p50 <= p95 <= p99:
            fail(f"{path}: tenant {tenant} quantiles not ordered/non-zero: {p50} {p95} {p99}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", required=True, help="MetricsReport JSON file")
    parser.add_argument("--expect-total", type=int, default=None)
    parser.add_argument("--expect-tenants", type=int, default=None)
    parser.add_argument("--require-net", action="store_true")
    parser.add_argument("--sum-of", nargs="+", default=None, metavar="BACKEND_REPORT")
    args = parser.parse_args()

    report = load(args.report)
    total = report.get("total_intervals", 0)
    rows = report.get("per_tenant", [])

    if args.expect_total is not None and total != args.expect_total:
        fail(f"total_intervals {total} != expected {args.expect_total}")
    if args.expect_tenants is not None and len(rows) != args.expect_tenants:
        names = [r.get("tenant") for r in rows]
        fail(f"{len(rows)} per-tenant rows != expected {args.expect_tenants}: {names}")
    if args.require_net:
        net = report.get("net")
        if not net:
            fail("net counters missing from report")
        for key in ("accepted", "lines_in", "lines_out", "bytes_in", "bytes_out"):
            if net.get(key, 0) <= 0:
                fail(f"net counter {key} is zero: {net}")
    check_rows(report, args.report)

    if args.sum_of:
        backend_total = 0
        backend_intervals = {}
        for path in args.sum_of:
            backend = load(path)
            backend_total += backend.get("total_intervals", 0)
            for r in backend.get("per_tenant", []):
                tenant = r.get("tenant")
                backend_intervals[tenant] = backend_intervals.get(tenant, 0) + r.get(
                    "ingested_intervals", 0
                )
            check_rows(backend, path)
        if total != backend_total:
            fail(
                f"merge inconsistency: merged total_intervals {total} != "
                f"sum of backend totals {backend_total}"
            )
        # Tenant names are compared as a set: two backends may both carry a
        # tenant id (the implicit `default` tenant, or one mid-rebalance),
        # and the router merges same-id rows into one. The per-tenant
        # interval sums must still agree exactly.
        merged_intervals = {
            r.get("tenant"): r.get("ingested_intervals", 0) for r in rows
        }
        if sorted(merged_intervals) != sorted(set(backend_intervals)):
            fail(
                f"merge inconsistency: merged tenants {sorted(merged_intervals)} "
                f"!= union of backend tenants {sorted(set(backend_intervals))}"
            )
        if merged_intervals != backend_intervals:
            diff = {
                t: (merged_intervals.get(t), backend_intervals.get(t))
                for t in set(merged_intervals) | set(backend_intervals)
                if merged_intervals.get(t) != backend_intervals.get(t)
            }
            fail(f"merge inconsistency: per-tenant interval sums differ (merged, backends): {diff}")

    print(
        f"check_metrics: OK ({args.report}: total_intervals={total}, "
        f"tenants={len(rows)}{', merge-consistent' if args.sum_of else ''})"
    )


if __name__ == "__main__":
    main()
