//! Peer monitoring: the paper's motivating scenario.
//!
//! A Tier-1 "source ISP" wants to know how frequently each of its peers is
//! congested, using only end-to-end measurements of paths that cross those
//! peers. This example generates a BRITE-style two-level topology, simulates
//! a week-in-the-life congestion process with correlated links, runs the
//! Correlation-complete algorithm, and then aggregates the per-link
//! probabilities into a per-peer (per-AS) congestion report — the artifact
//! the ISP operator actually wants.
//!
//! Run with: `cargo run --release --example peer_monitoring`

use std::collections::BTreeMap;

use network_tomography::prelude::*;

fn main() -> Result<(), TomoError> {
    // ------------------------------------------------------------------
    // 1. Topology: a mid-sized BRITE-style instance (the source ISP is AS0).
    // ------------------------------------------------------------------
    let mut config = BriteConfig::tiny(11);
    config.num_ases = 16;
    config.routers_per_as = 6;
    config.num_paths = 220;
    let network = BriteGenerator::new(config).generate()?;
    println!(
        "Monitoring {} AS-level links over {} paths across {} peers",
        network.num_links(),
        network.num_paths(),
        network.correlation_sets().len()
    );

    // ------------------------------------------------------------------
    // 2. Simulate a correlated, non-stationary congestion process — the
    //    conditions the paper says real peers exhibit — and run the paper's
    //    algorithm on it, all through one pipeline.
    // ------------------------------------------------------------------
    let experiment = Pipeline::on(network.clone())
        .scenario(ScenarioConfig::no_independence().with_nonstationary(50))
        .intervals(600)
        .seed(23)
        .measurement(MeasurementMode::PacketProbes {
            packets_per_interval: 300,
        })
        .simulate()?;
    let mut algorithm = estimators::by_name("correlation-complete")?;
    let outcome = experiment.evaluate(algorithm.as_mut())?;
    let output = experiment.output();

    // ------------------------------------------------------------------
    // 3. The Probability Computation result.
    // ------------------------------------------------------------------
    let estimate = outcome.estimate.as_ref().expect("probability capability");
    println!(
        "Solved a system of {} equations over {} unknowns ({} of {} targets identifiable)",
        estimate.diagnostics.num_equations,
        estimate.diagnostics.num_unknowns,
        estimate.diagnostics.identifiable_targets,
        estimate.diagnostics.total_targets,
    );

    // ------------------------------------------------------------------
    // 4. Aggregate into the per-peer report the operator wants: for each
    //    peer AS, the most congested link and the average congestion
    //    frequency of its links, estimated vs actual.
    // ------------------------------------------------------------------
    #[derive(Default)]
    struct PeerReport {
        links: usize,
        estimated_sum: f64,
        actual_sum: f64,
        worst_link: Option<(LinkId, f64)>,
    }
    let mut per_peer: BTreeMap<usize, PeerReport> = BTreeMap::new();
    for link in network.links() {
        let peer = link.asn.index();
        let est = estimate.link_congestion_probability(link.id);
        let act = output.ground_truth.link_frequency(link.id);
        let entry = per_peer.entry(peer).or_default();
        entry.links += 1;
        entry.estimated_sum += est;
        entry.actual_sum += act;
        if entry.worst_link.map(|(_, p)| est > p).unwrap_or(true) {
            entry.worst_link = Some((link.id, est));
        }
    }

    println!("\nPer-peer congestion report (sorted by estimated congestion):");
    println!(
        "{:<8}{:>8}{:>16}{:>16}{:>20}",
        "peer", "links", "est. mean", "actual mean", "worst link (est.)"
    );
    let mut peers: Vec<(usize, PeerReport)> = per_peer.into_iter().collect();
    peers.sort_by(|a, b| {
        (b.1.estimated_sum / b.1.links as f64).total_cmp(&(a.1.estimated_sum / a.1.links as f64))
    });
    for (peer, report) in peers.iter().take(10) {
        let (worst, worst_p) = report.worst_link.expect("every peer has links");
        println!(
            "AS{:<6}{:>8}{:>16.3}{:>16.3}{:>14} {:>5.3}",
            peer,
            report.links,
            report.estimated_sum / report.links as f64,
            report.actual_sum / report.links as f64,
            worst.to_string(),
            worst_p
        );
    }

    // ------------------------------------------------------------------
    // 5. How good is the estimate overall?
    // ------------------------------------------------------------------
    let mut stats = AbsoluteErrorStats::new();
    for link in network.link_ids() {
        stats.add(
            output.ground_truth.link_frequency(link),
            estimate.link_congestion_probability(link),
        );
    }
    println!(
        "\nMean absolute error over all {} links: {:.3} (90th percentile {:.3})",
        stats.len(),
        stats.mean(),
        stats.quantile(0.9)
    );
    Ok(())
}
