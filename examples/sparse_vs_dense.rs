//! Sparse vs dense topologies: why the paper shifts the goal.
//!
//! Reproduces, on small instances, the core observation of §3.2 and §5.4:
//! Boolean Inference works acceptably on dense (BRITE-like) topologies but
//! degrades on sparse traceroute-derived ones, whereas Probability
//! Computation (Correlation-complete) stays accurate on both.
//!
//! Run with: `cargo run --release --example sparse_vs_dense`

use network_tomography::prelude::*;
use network_tomography::sim::LossModel;
use network_tomography::topology::topology_stats;

fn run_on(name: &str, network: &Network, seed: u64) {
    let stats = topology_stats(network);
    println!(
        "\n=== {name}: {} links, {} paths, {:.0}% of links observed by 2+ paths ===",
        stats.num_links,
        stats.num_paths,
        stats.intersected_link_fraction * 100.0
    );

    let scenario = ScenarioConfig::random_congestion();
    let config = SimulationConfig {
        num_intervals: 400,
        scenario,
        loss: LossModel::default(),
        measurement: MeasurementMode::PacketProbes {
            packets_per_interval: 300,
        },
        seed,
    };
    let output = Simulator::new(config).run(network);

    // --- Boolean Inference --------------------------------------------------
    let mut algorithms: Vec<Box<dyn BooleanInference>> = vec![
        Box::new(Sparsity::new()),
        Box::new(BayesianIndependence::new()),
        Box::new(BayesianCorrelation::new()),
    ];
    println!("{:<26}{:>16}{:>20}", "Boolean Inference", "detection", "false positives");
    for algo in algorithms.iter_mut() {
        let inferred = infer_all_intervals(algo.as_mut(), network, &output.observations);
        let mut score = InferenceScore::new();
        for (t, links) in inferred.iter().enumerate() {
            score.add_interval(links, &output.ground_truth.congested_links(t));
        }
        println!(
            "{:<26}{:>16.3}{:>20.3}",
            algo.name(),
            score.detection_rate(),
            score.false_positive_rate()
        );
    }

    // --- Probability Computation ---------------------------------------------
    println!("{:<26}{:>16}", "Probability Computation", "mean abs error");
    let algorithms: Vec<Box<dyn ProbabilityComputation>> = vec![
        Box::new(Independence::default()),
        Box::new(CorrelationHeuristic::default()),
        Box::new(CorrelationComplete::default()),
    ];
    for algo in algorithms {
        let estimate = algo.compute(network, &output.observations);
        let mut stats = AbsoluteErrorStats::new();
        for link in network.link_ids() {
            stats.add(
                output.ground_truth.link_frequency(link),
                estimate.link_congestion_probability(link),
            );
        }
        println!("{:<26}{:>16.3}", algo.name(), stats.mean());
    }
}

fn main() {
    // A dense BRITE-style instance and a sparse traceroute-derived one of
    // comparable path count.
    let mut brite = BriteConfig::tiny(3);
    brite.num_ases = 14;
    brite.routers_per_as = 6;
    brite.num_paths = 200;
    let dense = BriteGenerator::new(brite)
        .generate()
        .expect("brite generation succeeds");

    let mut sparse_cfg = SparseConfig::tiny(3);
    sparse_cfg.num_ases = 90;
    sparse_cfg.num_traceroutes = 260;
    sparse_cfg.num_vantage_points = 3;
    let sparse = SparseGenerator::new(sparse_cfg)
        .generate()
        .expect("sparse generation succeeds");

    run_on("Dense (Brite-like)", &dense, 101);
    run_on("Sparse (traceroute-derived)", &sparse, 101);

    println!(
        "\nExpected shape (paper §3.2/§5.4): the inference algorithms lose detection rate and/or\n\
         gain false positives on the sparse topology, while Correlation-complete keeps the lowest\n\
         probability-estimation error on both."
    );
}
