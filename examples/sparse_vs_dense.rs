//! Sparse vs dense topologies: why the paper shifts the goal.
//!
//! Reproduces, on small instances, the core observation of §3.2 and §5.4:
//! Boolean Inference works acceptably on dense (BRITE-like) topologies but
//! degrades on sparse traceroute-derived ones, whereas Probability
//! Computation (Correlation-complete) stays accurate on both.
//!
//! All six algorithms run through the estimator registry and one shared
//! pipeline per topology; each outcome carries the scores its capabilities
//! allow (detection/false-positive rates for inference, absolute error for
//! probability estimates).
//!
//! Run with: `cargo run --release --example sparse_vs_dense`

use network_tomography::prelude::*;
use network_tomography::topology::topology_stats;

fn run_on(name: &str, network: &Network, seed: u64) -> Result<(), TomoError> {
    let stats = topology_stats(network);
    println!(
        "\n=== {name}: {} links, {} paths, {:.0}% of links observed by 2+ paths ===",
        stats.num_links,
        stats.num_paths,
        stats.intersected_link_fraction * 100.0
    );

    let experiment = Pipeline::on(network.clone())
        .scenario(ScenarioConfig::random_congestion())
        .intervals(400)
        .seed(seed)
        .measurement(MeasurementMode::PacketProbes {
            packets_per_interval: 300,
        })
        .simulate()?;

    println!(
        "{:<26}{:>16}{:>20}{:>18}",
        "Estimator", "detection", "false positives", "mean abs error"
    );
    for mut estimator in estimators::all() {
        let outcome = experiment.evaluate(estimator.as_mut())?;
        let (detection, fpr) = match &outcome.inference_score {
            Some(score) => (
                format!("{:.3}", score.detection_rate()),
                format!("{:.3}", score.false_positive_rate()),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        let error = match &outcome.link_errors {
            Some(stats) => format!("{:.3}", stats.mean()),
            None => "-".to_string(),
        };
        println!(
            "{:<26}{:>16}{:>20}{:>18}",
            outcome.estimator, detection, fpr, error
        );
    }
    Ok(())
}

fn main() -> Result<(), TomoError> {
    // A dense BRITE-style instance and a sparse traceroute-derived one of
    // comparable path count.
    let mut brite = BriteConfig::tiny(3);
    brite.num_ases = 14;
    brite.routers_per_as = 6;
    brite.num_paths = 200;
    let dense = BriteGenerator::new(brite).generate()?;

    let mut sparse_cfg = SparseConfig::tiny(3);
    sparse_cfg.num_ases = 90;
    sparse_cfg.num_traceroutes = 260;
    sparse_cfg.num_vantage_points = 3;
    let sparse = SparseGenerator::new(sparse_cfg).generate()?;

    run_on("Dense (Brite-like)", &dense, 101)?;
    run_on("Sparse (traceroute-derived)", &sparse, 101)?;

    println!(
        "\nExpected shape (paper §3.2/§5.4): the inference algorithms lose detection rate and/or\n\
         gain false positives on the sparse topology, while Correlation-complete keeps the lowest\n\
         probability-estimation error on both."
    );
    Ok(())
}
