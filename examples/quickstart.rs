//! Quickstart: the paper's toy topology (Fig. 1) end to end.
//!
//! Builds the 4-link / 3-path network, simulates a correlated congestion
//! scenario on it, runs all three Probability Computation algorithms on the
//! path observations, and compares their per-link estimates with the ground
//! truth. Also walks the Boolean-Inference failure example of §3.1.
//!
//! Run with: `cargo run --release --example quickstart`

use network_tomography::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The Fig. 1 toy topology: links e1..e4, paths p1 = {e1,e2},
    //    p2 = {e1,e3}, p3 = {e4,e3}; correlation sets {e1}, {e2,e3}, {e4}.
    // ------------------------------------------------------------------
    let network = network_tomography::graph::toy::fig1_case1();
    println!(
        "Toy network: {} links, {} paths, {} correlation sets",
        network.num_links(),
        network.num_paths(),
        network.correlation_sets().len()
    );

    // The identifiability conditions of §2 can be checked directly.
    let cond1 = network_tomography::graph::check_identifiability(&network);
    let cond2 = network_tomography::graph::check_identifiability_pp(&network, 2);
    println!(
        "Identifiability: {}, Identifiability++: {}",
        cond1.holds, cond2.holds
    );

    // ------------------------------------------------------------------
    // 2. Simulate: half of the links are congestible, correlated placement,
    //    packet-level probing.
    // ------------------------------------------------------------------
    let mut scenario = ScenarioConfig::no_independence();
    scenario.congestible_fraction = 0.5;
    let config = SimulationConfig {
        num_intervals: 800,
        scenario,
        loss: network_tomography::sim::LossModel::default(),
        measurement: MeasurementMode::PacketProbes {
            packets_per_interval: 400,
        },
        seed: 7,
    };
    let output = Simulator::new(config).run(&network);
    println!(
        "\nSimulated {} intervals; congestible links: {:?}",
        output.observations.num_intervals(),
        output.ground_truth.congestible_links()
    );

    // ------------------------------------------------------------------
    // 3. Probability Computation: estimate how frequently each link is
    //    congested, from the path observations alone.
    // ------------------------------------------------------------------
    let algorithms: Vec<Box<dyn ProbabilityComputation>> = vec![
        Box::new(Independence::default()),
        Box::new(CorrelationHeuristic::default()),
        Box::new(CorrelationComplete::default()),
    ];
    println!("\nPer-link congestion probabilities (actual vs estimated):");
    print!("{:<8}{:>8}", "link", "actual");
    for a in &algorithms {
        print!("{:>24}", a.name());
    }
    println!();
    let estimates: Vec<ProbabilityEstimate> = algorithms
        .iter()
        .map(|a| a.compute(&network, &output.observations))
        .collect();
    for link in network.link_ids() {
        print!(
            "{:<8}{:>8.3}",
            link.to_string(),
            output.ground_truth.link_frequency(link)
        );
        for est in &estimates {
            print!("{:>24.3}", est.link_congestion_probability(link));
        }
        println!();
    }

    // ------------------------------------------------------------------
    // 4. Boolean Inference on one interval (§3.1's example of why it is
    //    hard): when all three paths are congested there are 8 possible
    //    explanations, and Sparsity always picks {e1, e3}.
    // ------------------------------------------------------------------
    let sparsity = Sparsity::new();
    let all_paths: Vec<PathId> = network.path_ids().collect();
    let inferred = sparsity.infer_interval(&network, &all_paths);
    println!(
        "\nSparsity's answer when all paths are congested: {:?} (the paper's {{e1, e3}})",
        inferred
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
    );
}
