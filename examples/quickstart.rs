//! Quickstart: the paper's toy topology (Fig. 1) end to end, through the
//! unified pipeline API.
//!
//! Builds the 4-link / 3-path network, simulates a correlated congestion
//! scenario on it, runs all three Probability Computation algorithms on the
//! path observations through the estimator registry, and compares their
//! per-link estimates with the ground truth. Also walks the
//! Boolean-Inference failure example of §3.1.
//!
//! Run with: `cargo run --release --example quickstart`

use network_tomography::prelude::*;

fn main() -> Result<(), TomoError> {
    // ------------------------------------------------------------------
    // 1. The Fig. 1 toy topology: links e1..e4, paths p1 = {e1,e2},
    //    p2 = {e1,e3}, p3 = {e4,e3}; correlation sets {e1}, {e2,e3}, {e4}.
    // ------------------------------------------------------------------
    let network = network_tomography::graph::toy::fig1_case1();
    println!(
        "Toy network: {} links, {} paths, {} correlation sets",
        network.num_links(),
        network.num_paths(),
        network.correlation_sets().len()
    );

    // The identifiability conditions of §2 can be checked directly.
    let cond1 = network_tomography::graph::check_identifiability(&network);
    let cond2 = network_tomography::graph::check_identifiability_pp(&network, 2);
    println!(
        "Identifiability: {}, Identifiability++: {}",
        cond1.holds, cond2.holds
    );

    // ------------------------------------------------------------------
    // 2. One pipeline owns the simulate → observe → estimate → score loop:
    //    half of the links are congestible, correlated placement,
    //    packet-level probing.
    // ------------------------------------------------------------------
    let mut scenario = ScenarioConfig::no_independence();
    scenario.congestible_fraction = 0.5;
    let experiment = Pipeline::on(network.clone())
        .scenario(scenario)
        .intervals(800)
        .seed(7)
        .measurement(MeasurementMode::PacketProbes {
            packets_per_interval: 400,
        })
        .simulate()?;
    let output = experiment.output();
    println!(
        "\nSimulated {} intervals; congestible links: {:?}",
        output.observations.num_intervals(),
        output.ground_truth.congestible_links()
    );

    // ------------------------------------------------------------------
    // 3. Probability Computation: every algorithm is selected from the
    //    registry by name and evaluated on the same experiment.
    // ------------------------------------------------------------------
    let names = [
        "independence",
        "correlation-heuristic",
        "correlation-complete",
    ];
    let mut outcomes = Vec::new();
    for name in names {
        let mut algorithm = estimators::by_name(name)?;
        outcomes.push(experiment.evaluate(algorithm.as_mut())?);
    }
    println!("\nPer-link congestion probabilities (actual vs estimated):");
    print!("{:<8}{:>8}", "link", "actual");
    for outcome in &outcomes {
        print!("{:>24}", outcome.estimator);
    }
    println!();
    for link in network.link_ids() {
        print!(
            "{:<8}{:>8.3}",
            link.to_string(),
            output.ground_truth.link_frequency(link)
        );
        for outcome in &outcomes {
            let estimate = outcome.estimate.as_ref().expect("probability capability");
            print!("{:>24.3}", estimate.link_congestion_probability(link));
        }
        println!();
    }
    println!("\nMean absolute error over the potentially congested links:");
    for outcome in &outcomes {
        let errors = outcome.link_errors.as_ref().expect("scored");
        println!("  {:<24} {:.3}", outcome.estimator, errors.mean());
    }

    // ------------------------------------------------------------------
    // 4. Boolean Inference on one interval (§3.1's example of why it is
    //    hard): when all three paths are congested there are 8 possible
    //    explanations, and Sparsity always picks {e1, e3}.
    // ------------------------------------------------------------------
    let mut sparsity = estimators::by_name("sparsity")?;
    sparsity.fit(&network, &output.observations)?;
    let all_paths: Vec<PathId> = network.path_ids().collect();
    let inferred = sparsity.infer_interval(&network, &all_paths)?;
    println!(
        "\nSparsity's answer when all paths are congested: {:?} (the paper's {{e1, e3}})",
        inferred.iter().map(|l| l.to_string()).collect::<Vec<_>>()
    );
    Ok(())
}
