//! Non-stationary dynamics: why averaging beats per-interval diagnosis.
//!
//! §3.1 of the paper explains that the Bayesian Inference algorithms
//! approximate a link's state in a *particular* interval by its long-run
//! probability, which goes wrong when network conditions change over time
//! (e.g. a link that is normally healthy comes under a flooding attack for a
//! while). Probability Computation does not suffer from this, because its
//! answer — the fraction of time each link was congested — is a statement
//! about the whole monitoring window.
//!
//! This example stages exactly that story on the toy topology: link e2 is
//! quiet for the first 80% of the experiment and severely congested in the
//! last 20% (the "attack"). It then compares (i) Bayesian-Independence's
//! per-interval diagnoses during the attack with (ii) Correlation-complete's
//! frequency estimates over the two halves of the window.
//!
//! Run with: `cargo run --release --example nonstationary_monitoring`

use network_tomography::prelude::*;

fn main() -> Result<(), TomoError> {
    let network = network_tomography::graph::toy::fig1_case1();
    let e1 = network_tomography::graph::toy::E1;
    let e2 = network_tomography::graph::toy::E2;

    // ------------------------------------------------------------------
    // Hand-crafted observations: e1 is congested 30% of the time throughout;
    // e2 is quiet until t = 800 and then congested in every interval
    // (a flash crowd / attack on the edge link).
    // ------------------------------------------------------------------
    let t_total = 1000;
    let attack_start = 800;
    let mut observations = PathObservations::new(network.num_paths(), t_total);
    let mut truth_e2 = vec![false; t_total];
    for (t, truth) in truth_e2.iter_mut().enumerate() {
        let e1_bad = t % 10 < 3;
        let e2_bad = t >= attack_start;
        *truth = e2_bad;
        // p1 = {e1,e2}, p2 = {e1,e3}, p3 = {e4,e3}
        observations.set_congested(PathId(0), t, e1_bad || e2_bad);
        observations.set_congested(PathId(1), t, e1_bad);
        observations.set_congested(PathId(2), t, false);
    }

    // ------------------------------------------------------------------
    // 1. Boolean Inference during the attack. The hand-crafted observations
    //    go straight through the unified Estimator interface: fit once, then
    //    per-interval inference.
    // ------------------------------------------------------------------
    let mut clink = estimators::by_name("bayesian-independence")?;
    clink.fit(&network, &observations)?;
    let mut e2_detected = 0usize;
    for t in attack_start..t_total {
        let inferred = clink.infer_interval(&network, &observations.congested_paths(t))?;
        if inferred.contains(&e2) {
            e2_detected += 1;
        }
    }
    println!(
        "Bayesian-Independence blames e2 in {}/{} attack intervals \
         (its learned P(e2 congested) ≈ {:.2} reflects the whole window, not the attack)",
        e2_detected,
        t_total - attack_start,
        clink
            .estimate()
            .map(|e| e.link_congestion_probability(e2))
            .unwrap_or(f64::NAN)
    );

    // ------------------------------------------------------------------
    // 2. Probability Computation over sub-windows: split the observation
    //    window and report how frequently e2 was congested in each part —
    //    the quantity the paper argues the operator should consume.
    // ------------------------------------------------------------------
    let mut algo = estimators::by_name("correlation-complete")?;
    println!("\nCorrelation-complete, per monitoring window:");
    println!(
        "{:<28}{:>12}{:>12}{:>12}{:>12}",
        "window", "e1 est.", "e1 actual", "e2 est.", "e2 actual"
    );
    for (label, range) in [
        ("before the attack", 0..attack_start),
        ("during the attack", attack_start..t_total),
        ("whole window", 0..t_total),
    ] {
        // Re-slice the observations for the window.
        let len = range.end - range.start;
        let mut window = PathObservations::new(network.num_paths(), len);
        for (i, t) in range.clone().enumerate() {
            for p in network.path_ids() {
                window.set_congested(p, i, observations.is_congested(p, t));
            }
        }
        algo.fit(&network, &window)?;
        let estimate = algo.estimate().expect("probability capability");
        let actual_e1 = range.clone().filter(|t| t % 10 < 3).count() as f64 / len as f64;
        let actual_e2 = range.clone().filter(|&t| truth_e2[t]).count() as f64 / len as f64;
        println!(
            "{:<28}{:>12.3}{:>12.3}{:>12.3}{:>12.3}",
            label,
            estimate.link_congestion_probability(e1),
            actual_e1,
            estimate.link_congestion_probability(e2),
            actual_e2
        );
    }

    println!(
        "\nThe frequency report pinpoints the attack window without having to decide, interval by\n\
         interval, which link to blame — the shift of goal the paper advocates."
    );
    Ok(())
}
