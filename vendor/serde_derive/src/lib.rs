//! Offline shim of `serde_derive`.
//!
//! Generates implementations of the Value-based `serde::Serialize` /
//! `serde::Deserialize` shim traits. Because the environment has no access
//! to crates.io, this derive cannot use `syn`/`quote`; instead it parses the
//! item with a small hand-rolled token-tree scanner and emits the impl as
//! source text.
//!
//! Supported shapes (everything this workspace derives on):
//!
//! * structs with named fields, including `#[serde(with = "module")]` field
//!   overrides (the module must provide `to_value(&T) -> serde::Value` and
//!   `from_value(&serde::Value) -> Result<T, serde::Error>`);
//! * newtype / tuple / unit structs;
//! * enums with unit, newtype, tuple and struct variants (externally tagged,
//!   like real serde's default);
//! * simple generic parameters (`struct Report<T: Serialize> { .. }`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    with: Option<String>,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Generic parameter list as written, without the angle brackets
    /// (e.g. `T : Serialize`), or `None` for non-generic items.
    generics: Option<String>,
    /// Just the parameter names (e.g. `T`).
    generic_names: Vec<String>,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token scanning
// ---------------------------------------------------------------------------

/// Flattens `None`-delimited groups (invisible delimiters inserted around
/// macro_rules metavariable expansions) into their contents.
fn flatten(stream: TokenStream) -> Vec<TokenTree> {
    let mut out = Vec::new();
    for tt in stream {
        match tt {
            TokenTree::Group(ref g) if g.delimiter() == Delimiter::None => {
                out.extend(flatten(g.stream()));
            }
            other => out.push(other),
        }
    }
    out
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tt: &TokenTree, word: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == word)
}

/// Cursor over a flattened token list.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(tokens: Vec<TokenTree>) -> Self {
        Self { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let tt = self.tokens.get(self.pos).cloned();
        if tt.is_some() {
            self.pos += 1;
        }
        tt
    }

    /// Skips one `#[...]` attribute if present, returning its bracket body.
    fn take_attribute(&mut self) -> Option<Vec<TokenTree>> {
        if self.peek().map(|t| is_punct(t, '#')) == Some(true) {
            self.pos += 1;
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    return Some(flatten(g.stream()));
                }
                other => panic!("serde shim derive: malformed attribute near {other:?}"),
            }
        }
        None
    }

    /// Skips all attributes, returning the `with = "..."` override if any
    /// `#[serde(with = "path")]` is among them.
    fn skip_attributes(&mut self) -> Option<String> {
        let mut with = None;
        while let Some(body) = self.take_attribute() {
            if body.first().map(|t| is_ident(t, "serde")) == Some(true) {
                with = parse_serde_attribute(&body).or(with);
            }
        }
        with
    }

    /// Skips `pub`, `pub(...)`.
    fn skip_visibility(&mut self) {
        if self.peek().map(|t| is_ident(t, "pub")) == Some(true) {
            self.pos += 1;
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skips a type, stopping before a top-level `,` (angle-bracket aware).
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(tt) = self.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

/// Extracts `with = "path"` from the body of a `#[serde(...)]` attribute.
fn parse_serde_attribute(body: &[TokenTree]) -> Option<String> {
    let inner = match body.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => flatten(g.stream()),
        _ => return None,
    };
    let mut i = 0;
    while i < inner.len() {
        if is_ident(&inner[i], "with") && inner.get(i + 1).map(|t| is_punct(t, '=')) == Some(true) {
            if let Some(TokenTree::Literal(lit)) = inner.get(i + 2) {
                let text = lit.to_string();
                return Some(text.trim_matches('"').to_string());
            }
        }
        i += 1;
    }
    panic!(
        "serde shim derive: unsupported #[serde(...)] attribute \
         (only `with = \"module\"` is implemented)"
    );
}

// ---------------------------------------------------------------------------
// Item parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(flatten(input));
    c.skip_attributes();
    c.skip_visibility();

    let kind = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected item name, found {other:?}"),
    };

    let (generics, generic_names) = parse_generics(&mut c);

    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_struct_fields(&mut c, &name)),
        "enum" => Body::Enum(parse_variants(&mut c, &name)),
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    };

    Item {
        name,
        generics,
        generic_names,
        body,
    }
}

fn parse_generics(c: &mut Cursor) -> (Option<String>, Vec<String>) {
    if c.peek().map(|t| is_punct(t, '<')) != Some(true) {
        return (None, Vec::new());
    }
    c.pos += 1;
    let mut depth = 1i32;
    let mut text = String::new();
    let mut names = Vec::new();
    let mut at_param_start = true;
    while let Some(tt) = c.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => at_param_start = true,
            TokenTree::Ident(i) if at_param_start && depth == 1 => {
                let word = i.to_string();
                if word != "const" {
                    names.push(word);
                    at_param_start = false;
                }
            }
            _ => {
                if depth == 1 && !matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                    at_param_start = false;
                }
            }
        }
        text.push_str(&tt.to_string());
        text.push(' ');
    }
    (Some(text.trim_end().to_string()), names)
}

fn parse_struct_fields(c: &mut Cursor, name: &str) -> Fields {
    match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(flatten(g.stream())))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(flatten(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("serde shim derive: malformed struct `{name}` near {other:?}"),
    }
}

fn parse_named_fields(tokens: Vec<TokenTree>) -> Vec<Field> {
    let mut c = Cursor::new(tokens);
    let mut fields = Vec::new();
    loop {
        let with = c.skip_attributes();
        c.skip_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        };
        match c.next() {
            Some(tt) if is_punct(&tt, ':') => {}
            other => panic!("serde shim derive: expected `:` after `{name}`, found {other:?}"),
        }
        c.skip_type();
        fields.push(Field { name, with });
        match c.next() {
            Some(tt) if is_punct(&tt, ',') => continue,
            _ => break,
        }
    }
    fields
}

fn count_tuple_fields(tokens: Vec<TokenTree>) -> usize {
    let mut c = Cursor::new(tokens);
    let mut count = 0;
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        c.skip_type();
        count += 1;
        match c.next() {
            Some(tt) if is_punct(&tt, ',') => continue,
            _ => break,
        }
    }
    count
}

fn parse_variants(c: &mut Cursor, name: &str) -> Vec<Variant> {
    let tokens = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => flatten(g.stream()),
        other => panic!("serde shim derive: malformed enum `{name}` near {other:?}"),
    };
    let mut c = Cursor::new(tokens);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        let vname = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, found {other:?}"),
        };
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(flatten(g.stream())));
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(flatten(g.stream())));
                c.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        variants.push(Variant {
            name: vname,
            fields,
        });
        match c.next() {
            Some(tt) if is_punct(&tt, ',') => continue,
            _ => break,
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    let ty = if item.generic_names.is_empty() {
        item.name.clone()
    } else {
        format!("{}<{}>", item.name, item.generic_names.join(", "))
    };
    let mut header = String::from("impl");
    if let Some(g) = &item.generics {
        header.push_str(&format!("<{g}>"));
    }
    header.push_str(&format!(" ::serde::{trait_name} for {ty}"));
    if !item.generic_names.is_empty() {
        let bounds: Vec<String> = item
            .generic_names
            .iter()
            .map(|n| format!("{n}: ::serde::{trait_name}"))
            .collect();
        header.push_str(&format!(" where {}", bounds.join(", ")));
    }
    (header, ty)
}

fn serialize_named_fields(fields: &[Field], accessor: &dyn Fn(&str) -> String) -> String {
    let mut out = String::from("{ let mut fields: Vec<(String, ::serde::Value)> = Vec::new(); ");
    for f in fields {
        let access = accessor(&f.name);
        let expr = match &f.with {
            Some(path) => format!("{path}::to_value(&{access})"),
            None => format!("::serde::Serialize::to_value(&{access})"),
        };
        out.push_str(&format!(
            "fields.push((String::from(\"{}\"), {expr})); ",
            f.name
        ));
    }
    out.push_str("::serde::Value::Object(fields) }");
    out
}

fn deserialize_named_fields(fields: &[Field], source: &str) -> String {
    let mut out = String::from("{ ");
    for f in fields {
        let expr = match &f.with {
            Some(path) => format!(
                "{path}::from_value(match {source}.get(\"{n}\") {{ \
                   Some(x) => x, None => &::serde::Value::Null }})?",
                n = f.name
            ),
            None => format!("::serde::object_field({source}, \"{n}\")?", n = f.name),
        };
        out.push_str(&format!("{n}: {expr}, ", n = f.name));
    }
    out.push('}');
    out
}

fn generate_serialize(item: &Item) -> String {
    let (header, _) = impl_header(item, "Serialize");
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            serialize_named_fields(fields, &|n| format!("self.{n}"))
        }
        Body::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let name = &item.name;
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")), "
                        ));
                    }
                    Fields::Named(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = serialize_named_fields(fields, &|n| format!("(*{n})"));
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![ \
                               (String::from(\"{vn}\"), {inner})]), ",
                            binds = binders.join(", ")
                        ));
                    }
                    Fields::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(vec![ \
                               (String::from(\"{vn}\"), ::serde::Serialize::to_value(x0))]), "
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(vec![ \
                               (String::from(\"{vn}\"), ::serde::Value::Array(vec![{items}]))]), ",
                            binds = binders.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] {header} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let (header, ty) = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let init = deserialize_named_fields(fields, "v");
            format!(
                "if !matches!(v, ::serde::Value::Object(_)) {{ \
                   return Err(::serde::Error::expected(\"object for `{name}`\", v)); \
                 }} Ok({name} {init})"
            )
        }
        Body::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{ \
                   ::serde::Value::Array(items) if items.len() == {n} => \
                     Ok({name}({items})), \
                   other => Err(::serde::Error::expected(\"array for `{name}`\", other)), \
                 }}",
                items = items.join(", ")
            )
        }
        Body::Struct(Fields::Unit) => format!("let _ = v; Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}), "));
                        tagged_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}), "));
                    }
                    Fields::Named(fields) => {
                        let init = deserialize_named_fields(fields, "inner");
                        tagged_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn} {init}), "));
                    }
                    Fields::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)), "
                        ));
                    }
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => match inner {{ \
                               ::serde::Value::Array(items) if items.len() == {n} => \
                                 Ok({name}::{vn}({items})), \
                               other => Err(::serde::Error::expected( \
                                 \"array for variant `{vn}`\", other)), \
                             }}, ",
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{ \
                   ::serde::Value::Str(s) => match s.as_str() {{ \
                     {unit_arms} \
                     other => Err(::serde::Error::msg( \
                       format!(\"unknown variant `{{other}}` of `{name}`\"))), \
                   }}, \
                   ::serde::Value::Object(fields) if fields.len() == 1 => {{ \
                     let (tag, inner) = &fields[0]; \
                     let _ = inner; \
                     match tag.as_str() {{ \
                       {tagged_arms} \
                       other => Err(::serde::Error::msg( \
                         format!(\"unknown variant `{{other}}` of `{name}`\"))), \
                     }} \
                   }} \
                   other => Err(::serde::Error::expected(\"string or object for `{name}`\", other)), \
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived] {header} {{ \
           fn from_value(v: &::serde::Value) -> ::std::result::Result<{ty}, ::serde::Error> {{ \
             {body} \
           }} \
         }}"
    )
}

/// `#[derive(Serialize)]` for the serde shim.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("serde shim derive: generated Serialize impl failed to parse")
}

/// `#[derive(Deserialize)]` for the serde shim.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated Deserialize impl failed to parse")
}
