//! Offline shim of `serde`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal serde replacement. Instead of serde's visitor-based data model,
//! this shim routes everything through a concrete JSON-like [`Value`]:
//!
//! * [`Serialize`] converts a value into a [`Value`] tree;
//! * [`Deserialize`] reconstructs a value from a [`Value`] tree;
//! * `#[derive(Serialize, Deserialize)]` is provided by the companion
//!   `serde_derive` proc-macro crate (enabled via the `derive` feature);
//! * the companion `serde_json` shim renders and parses [`Value`] as JSON.
//!
//! Supported derive input shapes are the ones this workspace uses: structs
//! with named fields (including a `#[serde(with = "module")]` field override,
//! where the module provides `to_value`/`from_value`), newtype and tuple
//! structs, and enums with unit/newtype/tuple/struct variants.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like tree of values — the shim's entire data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An object: ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Int(i) => Some(i),
            Value::Float(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// A short description of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the shim's [`Value`] model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the shim's [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Compatibility aliases mirroring the real serde module layout.
pub mod de {
    pub use super::Error;

    /// In real serde, `DeserializeOwned` distinguishes borrowed from owned
    /// deserialization; the shim's [`super::Deserialize`] is always owned.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// Compatibility alias mirroring the real serde module layout.
pub mod ser {
    pub use super::{Error, Serialize};
}

/// Reads a named field of an object [`Value`], treating a missing field as
/// `null` (so `Option` fields tolerate omission). Used by generated code.
pub fn object_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(field) => T::from_value(field).map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| Error(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize implementations for std types
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| Error::msg(format!("{u} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::msg(format!("{i} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| Error::expected("number", v))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

// Maps serialize as arrays of `[key, value]` pairs: JSON objects only allow
// string keys, and the workspace's maps are keyed by typed ids.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_pairs(v)?.collect::<Result<_, _>>()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_pairs(v)?.collect::<Result<_, _>>()
    }
}

/// Iterates a serialized map (array of `[key, value]` pairs).
fn map_pairs<'a, K: Deserialize, V: Deserialize>(
    v: &'a Value,
) -> Result<impl Iterator<Item = Result<(K, V), Error>> + 'a, Error> {
    match v {
        Value::Array(items) => Ok(items.iter().map(|item| match item {
            Value::Array(kv) if kv.len() == 2 => {
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            }
            other => Err(Error::expected("[key, value] pair", other)),
        })),
        other => Err(Error::expected("array of [key, value] pairs", other)),
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected(concat!("array of length ", $len), other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
    (A: 0, B: 1, C: 2, D: 3, E: 4) with 5;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()), Ok(v));
        let s: BTreeSet<u32> = [3, 1, 2].into_iter().collect();
        assert_eq!(BTreeSet::<u32>::from_value(&s.to_value()), Ok(s));
        let t = (1usize, "x".to_string(), 0.5f64);
        assert_eq!(<(usize, String, f64)>::from_value(&t.to_value()), Ok(t));
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u8>::from_value(&5u8.to_value()), Ok(Some(5)));
    }

    #[test]
    fn errors_name_the_mismatch() {
        let e = u32::from_value(&Value::Str("no".into())).unwrap_err();
        assert!(e.to_string().contains("expected unsigned integer"));
    }

    #[test]
    fn object_field_handles_missing() {
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(object_field::<u64>(&obj, "a"), Ok(1));
        assert_eq!(object_field::<Option<u64>>(&obj, "b"), Ok(None));
        assert!(object_field::<u64>(&obj, "b").is_err());
    }
}
