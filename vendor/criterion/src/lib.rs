//! Offline shim of `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal benchmark harness with the criterion API surface its
//! bench files use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `bench_with_input`, [`BenchmarkId::from_parameter`],
//! [`Bencher::iter`], and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! Instead of criterion's statistical analysis it reports the median
//! wall-clock time per iteration over `sample_size` samples.
//!
//! Two environment variables adapt the harness to CI:
//!
//! * `TOMO_BENCH_SAMPLES=n` overrides every benchmark's sample count
//!   ("smoke mode": `n = 3` keeps a full bench run to seconds);
//! * `TOMO_BENCH_JSON=path` appends one JSON line per benchmark
//!   (`{"name": ..., "median_ns": ..., "samples": ...}`) to `path`, the
//!   format the `ci/compare_bench.py` regression gate consumes.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write;
use std::time::{Duration, Instant};

/// An opaque hint preventing the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id labelled only with a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Times closures under measurement.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    /// Times `f`, recording the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then `samples` timed calls.
        std_black_box(f());
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(f());
            times.push(start.elapsed().as_nanos() as f64);
        }
        times.sort_by(f64::total_cmp);
        self.median_ns = times[times.len() / 2];
    }

    /// Records an externally measured value (shim extension, not part of
    /// the real criterion API). Lets a bench report a quantile computed by
    /// the system under test — e.g. a server-side p95 from its own
    /// latency histograms — through the same printing and
    /// `TOMO_BENCH_JSON` gating as `iter` timings. The closure passed to
    /// the bench function should call exactly one of `iter`/`report_ns`.
    pub fn report_ns(&mut self, ns: f64) {
        self.median_ns = ns;
    }
}

/// Parses a `TOMO_BENCH_SAMPLES`-style override; `None` or junk keeps the
/// configured sample count.
fn sample_override(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
}

/// Renders one benchmark result as the JSON line `TOMO_BENCH_JSON` appends.
fn json_line(name: &str, median_ns: f64, samples: usize) -> String {
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    format!("{{\"name\": \"{escaped}\", \"median_ns\": {median_ns:.1}, \"samples\": {samples}}}")
}

fn run_bench(group: Option<&str>, label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let samples =
        sample_override(std::env::var("TOMO_BENCH_SAMPLES").ok().as_deref()).unwrap_or(samples);
    let mut bencher = Bencher {
        samples,
        median_ns: f64::NAN,
    };
    let start = Instant::now();
    f(&mut bencher);
    let total = start.elapsed();
    let name = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_string(),
    };
    println!(
        "bench {name:<50} {:>14} /iter   ({samples} samples, {:.2?} total)",
        format_ns(bencher.median_ns),
        total
    );
    if let Ok(path) = std::env::var("TOMO_BENCH_JSON") {
        if !path.is_empty() && !bencher.median_ns.is_nan() {
            let line = json_line(&name, bencher.median_ns, samples);
            // Cargo runs bench binaries with the *package* directory as
            // cwd, so a workspace-relative path's parent may not exist yet.
            if let Some(parent) = std::path::Path::new(&path).parent() {
                if !parent.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(parent);
                }
            }
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut file| writeln!(file, "{line}"));
            if let Err(e) = appended {
                eprintln!("criterion shim: cannot append to {path}: {e}");
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "<no iter() call>".to_string()
    } else if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A set of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by a string or [`BenchmarkId`].
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_bench(Some(&self.name), &id.label, self.sample_size, f);
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_bench(Some(&self.name), &id.label, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_bench(None, name, self.default_sample_size, f);
        self
    }

    /// Measures nothing; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_benches_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn sample_override_parses_or_keeps_default() {
        assert_eq!(sample_override(None), None);
        assert_eq!(sample_override(Some("3")), Some(3));
        assert_eq!(sample_override(Some(" 12 ")), Some(12));
        assert_eq!(sample_override(Some("0")), Some(1));
        assert_eq!(sample_override(Some("junk")), None);
    }

    #[test]
    fn json_lines_are_parseable_and_escaped() {
        let line = json_line("group/label", 1234.56, 3);
        assert_eq!(
            line,
            "{\"name\": \"group/label\", \"median_ns\": 1234.6, \"samples\": 3}"
        );
        let tricky = json_line("we\"ird\\name", 1.0, 1);
        assert!(tricky.contains("we\\\"ird\\\\name"));
    }
}
