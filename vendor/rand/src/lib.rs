//! Offline shim of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small, deterministic subset of the `rand` 0.8 API it actually uses:
//! [`rngs::StdRng`] (here a xoshiro256** generator), the [`Rng`] and
//! [`SeedableRng`] traits with `gen_range` / `gen_bool` / `seed_from_u64`,
//! and [`seq::SliceRandom`] with `shuffle` / `choose`.
//!
//! The generator is of good statistical quality and fully deterministic for a
//! given seed, which is all the simulator and topology generators require;
//! its output stream intentionally makes no attempt to match the real
//! `rand` crate bit for bit.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $u as $t;
                }
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = unit_f64(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Uniform draw from `[0, span)` using Lemire's multiply-shift reduction.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        unit_f64(self) < p
    }

    /// Returns a uniformly random value of a supported type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "uniform over all values" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Random generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (the only constructor the
    /// workspace uses; all experiment seeds are `u64`).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random helpers.
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| a.gen_range(0..100usize) == c.gen_range(0..100usize));
        assert!(!same);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2..=5u32);
            assert!((2..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let s = rng.gen_range(-4..=4i64);
            assert!((-4..=4).contains(&s));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
