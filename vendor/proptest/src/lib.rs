//! Offline shim of `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness with the API surface its test
//! suites use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`strategy::Just`],
//! [`collection::vec`] / [`collection::btree_set`], `any::<bool>()`,
//! and the `proptest!` / `prop_assert*` / `prop_assume!` / `prop_oneof!`
//! macros.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test seed (derived from the test name), and failing cases are
//! reported but **not shrunk**.

#![forbid(unsafe_code)]

/// Strategies: how random values of a type are generated.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The result of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among several strategies (the `prop_oneof!` macro).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union of the given strategies. Panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    }
}

/// Strategies for collections.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A collection-size specification: an exact count or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange { lo, hi }
        }
    }

    /// Strategy for `Vec<T>` with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with the given element strategy and size.
    /// If the element space is too small to reach the sampled size, a
    /// best-effort smaller set is returned (like proptest under rejection
    /// pressure).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(50) + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Arbitrary: canonical strategies per type (`any::<T>()`).
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generates one canonical-uniform value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            rng.gen_range(-1e9..1e9)
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Test-runner plumbing used by the generated test harnesses.
pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — try another one.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Creates a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Runs `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test seed: FNV-1a of the test path.
    pub fn seed_for(test_name: &str, case: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_proptest(
                    &($config),
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng| {
                        $(
                            let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);
                        )+
                        let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                            (|| { $body ::std::result::Result::Ok(()) })();
                        __result
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Runs one property over `config.cases` accepted cases. Used by the
/// [`proptest!`] expansion; not part of the public API.
pub fn __run_proptest(
    config: &test_runner::ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut rand::rngs::StdRng) -> Result<(), test_runner::TestCaseError>,
) {
    use rand::SeedableRng;

    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let mut attempt = 0u64;
    while accepted < config.cases {
        let seed = test_runner::seed_for(test_name, attempt);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < 10_000,
                    "{test_name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed on case #{attempt} (seed {seed:#x}): {msg}");
            }
        }
        attempt += 1;
    }
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the generating seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 1usize..10, pair in (0u64..5, 0.0f64..1.0)) {
            let (a, b) = pair;
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn maps_and_collections(
            v in crate::collection::vec(0u32..100, 3..=6),
            s in crate::collection::btree_set(0usize..20, 1..=5),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() >= 3 && v.len() <= 6);
            prop_assert!(!s.is_empty() && s.len() <= 5);
            let _: bool = flag;
        }

        #[test]
        fn flat_map_and_oneof(
            pair in (1usize..4).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(prop_oneof![Just(0.0f64), Just(1.0f64)], n))
            }),
        ) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x == 0.0 || x == 1.0));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_seed() {
        crate::__run_proptest(&ProptestConfig::with_cases(1), "demo", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
