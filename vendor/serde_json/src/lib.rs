//! Offline shim of `serde_json`.
//!
//! Renders and parses the serde shim's [`Value`] tree as JSON. Supports the
//! calls the workspace makes: [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`to_value`] and a literal-object subset of the [`json!`]
//! macro.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization / deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn new(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Builds a [`Value`] from a JSON-ish literal. Only the shapes the workspace
/// uses are supported: object literals whose values are Rust expressions,
/// array literals, and plain expressions.
#[macro_export]
macro_rules! json {
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        let fields: Vec<(String, $crate::Value)> = vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ];
        $crate::Value::Object(fields)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$val) ),* ])
    };
    (null) => { $crate::Value::Null };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/inf; mirror serde_json's lossy `null`.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing `.0` so the value reads back as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_via_text() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::UInt(1), Value::Float(0.5)]),
            ),
            ("b".into(), Value::Str("x\"y".into())),
            ("c".into(), Value::Bool(true)),
            ("d".into(), Value::Null),
            ("e".into(), Value::Int(-3)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_float_shape() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        let back: f64 = from_str("1.0").unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn typed_round_trip() {
        let pairs: Vec<(String, f64)> = vec![("x".into(), 0.5), ("y".into(), 1.5)];
        let text = to_string(&pairs).unwrap();
        let back: Vec<(String, f64)> = from_str(&text).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn json_macro_object() {
        let v = json!({ "title": "t", "data": vec![1u64, 2] });
        assert_eq!(v.get("title"), Some(&Value::Str("t".into())));
        assert!(matches!(v.get("data"), Some(Value::Array(items)) if items.len() == 2));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("01x").is_err());
    }
}
