//! Integration tests for reproducibility (fixed seeds) and serialization of
//! the public data types.

use network_tomography::prelude::*;
use network_tomography::sim::LossModel;

fn run_once(seed: u64) -> (Network, SimulationOutput, ProbabilityEstimate) {
    let mut cfg = SparseConfig::tiny(seed);
    cfg.num_ases = 40;
    cfg.num_traceroutes = 120;
    let network = SparseGenerator::new(cfg).generate().expect("valid network");
    let config = SimulationConfig {
        num_intervals: 200,
        scenario: ScenarioConfig::no_independence(),
        loss: LossModel::default(),
        measurement: MeasurementMode::PacketProbes {
            packets_per_interval: 200,
        },
        seed: seed * 7 + 1,
    };
    let output = Simulator::new(config).run(&network);
    let estimate = CorrelationComplete::default().compute(&network, &output.observations);
    (network, output, estimate)
}

#[test]
fn whole_pipeline_is_deterministic_given_a_seed() {
    let (net_a, out_a, est_a) = run_once(11);
    let (net_b, out_b, est_b) = run_once(11);

    assert_eq!(net_a.num_links(), net_b.num_links());
    assert_eq!(net_a.num_paths(), net_b.num_paths());
    for t in 0..out_a.observations.num_intervals() {
        assert_eq!(
            out_a.observations.congested_paths(t),
            out_b.observations.congested_paths(t)
        );
    }
    for l in net_a.link_ids() {
        assert_eq!(
            est_a.link_congestion_probability(l),
            est_b.link_congestion_probability(l)
        );
    }
}

#[test]
fn different_seeds_give_different_experiments() {
    let (_, out_a, _) = run_once(1);
    let (_, out_b, _) = run_once(2);
    let same = (0..out_a
        .observations
        .num_intervals()
        .min(out_b.observations.num_intervals()))
        .all(|t| out_a.observations.congested_paths(t) == out_b.observations.congested_paths(t));
    assert!(!same);
}

#[test]
fn network_and_observations_serialize_round_trip() {
    let network = network_tomography::graph::toy::fig1_case2();
    let json = serde_json::to_string(&network).expect("network serializes");
    let back: Network = serde_json::from_str(&json).expect("network deserializes");
    assert_eq!(back.num_links(), network.num_links());
    assert_eq!(back.num_paths(), network.num_paths());
    assert_eq!(
        back.correlation_sets().len(),
        network.correlation_sets().len()
    );

    let mut obs = PathObservations::new(3, 5);
    obs.set_congested(PathId(1), 2, true);
    let json = serde_json::to_string(&obs).expect("observations serialize");
    let back: PathObservations = serde_json::from_str(&json).expect("observations deserialize");
    assert!(back.is_congested(PathId(1), 2));
    assert!(back.is_good(PathId(0), 0));
}

#[test]
fn probability_estimate_serializes_round_trip() {
    let (_, _, estimate) = run_once(4);
    let json = serde_json::to_string(&estimate).expect("estimate serializes");
    let back: ProbabilityEstimate = serde_json::from_str(&json).expect("estimate deserializes");
    assert_eq!(back.num_links(), estimate.num_links());
    assert_eq!(back.algorithm, estimate.algorithm);
    assert_eq!(
        back.diagnostics.num_equations,
        estimate.diagnostics.num_equations
    );
}

#[test]
fn scenario_configs_serialize_round_trip() {
    for kind in ScenarioKind::all() {
        let cfg = ScenarioConfig::for_kind(kind);
        let json = serde_json::to_string(&cfg).expect("scenario serializes");
        let back: ScenarioConfig = serde_json::from_str(&json).expect("scenario deserializes");
        assert_eq!(back.kind, kind);
    }
}
