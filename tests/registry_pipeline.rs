//! Integration test for the unified estimation API: every algorithm of the
//! paper, constructed from the registry by name, runs through the same
//! `Pipeline` entry point on the toy topologies and upholds its contracts —
//! probability estimates in [0, 1], and per-interval explanations built only
//! from links of that interval's congested paths.

use std::collections::BTreeSet;

use network_tomography::graph::toy;
use network_tomography::prelude::*;

fn toy_experiments() -> Vec<Experiment> {
    [toy::fig1_case1(), toy::fig1_case2(), toy::fig1_default()]
        .into_iter()
        .enumerate()
        .map(|(i, network)| {
            let mut scenario = ScenarioConfig::no_independence();
            scenario.congestible_fraction = 0.5;
            Pipeline::on(network)
                .scenario(scenario)
                .intervals(200)
                .seed(40 + i as u64)
                .measurement(MeasurementMode::Ideal)
                .simulate()
                .expect("toy experiment simulates")
        })
        .collect()
}

#[test]
fn all_six_registry_estimators_run_on_the_toy_topologies() {
    for experiment in toy_experiments() {
        let network = experiment.network();
        for name in estimators::names() {
            let mut estimator = estimators::by_name(name).expect("canonical name resolves");
            let outcome = experiment
                .evaluate(estimator.as_mut())
                .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            let capabilities = estimator.capabilities();

            // Probability capability: a full estimate with valid
            // probabilities for every link and estimated subset.
            assert_eq!(
                outcome.estimate.is_some(),
                capabilities.probability,
                "{name}"
            );
            if let Some(estimate) = &outcome.estimate {
                assert_eq!(estimate.num_links(), network.num_links(), "{name}");
                for link in network.link_ids() {
                    let p = estimate.link_congestion_probability(link);
                    assert!((0.0..=1.0).contains(&p), "{name}: {link} -> {p}");
                }
                for (_, good) in estimate.estimated_subsets() {
                    assert!((0.0..=1.0).contains(&good), "{name}: subset good {good}");
                }
            }

            // Inference capability: one explanation per interval, built only
            // from links that lie on that interval's congested paths.
            assert_eq!(
                outcome.inferred.is_some(),
                capabilities.interval_inference,
                "{name}"
            );
            if let Some(inferred) = &outcome.inferred {
                let observations = experiment.observations();
                assert_eq!(inferred.len(), observations.num_intervals(), "{name}");
                for (t, links) in inferred.iter().enumerate() {
                    let congested = observations.congested_paths(t);
                    let explainable: BTreeSet<LinkId> = congested
                        .iter()
                        .flat_map(|&p| network.path(p).links.iter().copied())
                        .collect();
                    for l in links {
                        assert!(
                            explainable.contains(l),
                            "{name}: interval {t} blames {l}, which is on no congested path"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn registry_options_flow_through_the_pipeline() {
    let experiment = &toy_experiments()[0];
    let options = EstimatorOptions {
        require_common_path: true,
        max_subset_size: Some(2),
    };
    for name in estimators::names() {
        let mut estimator = estimators::with_options(name, &options).expect("options construct");
        let outcome = experiment.evaluate(estimator.as_mut()).expect("evaluates");
        assert_eq!(outcome.estimator, estimator.name());
    }
}

#[test]
fn pipeline_rejects_unknown_names_and_degenerate_configs() {
    let err = estimators::by_name("does-not-exist")
        .err()
        .expect("unknown name");
    assert!(matches!(err, TomoError::UnknownEstimator { .. }));

    let err = Pipeline::on(toy::fig1_case1())
        .intervals(0)
        .simulate()
        .expect_err("zero intervals rejected");
    assert!(matches!(err, TomoError::InvalidConfig(_)));
}
