//! Property-based and integration tests over the chaos dynamics: the
//! Gilbert–Elliott chain must converge to its stationary mixture, and SRLG
//! cascades must keep group members perfectly correlated — every failure
//! and recovery moves the whole group at once, which is exactly the
//! correlation structure the paper's `CorrelationComplete` estimator is
//! built to absorb.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

use network_tomography::chaos::FaultKind;
use network_tomography::sim::dynamics::{gilbert_elliott_step, initialize_model};
use network_tomography::sim::{
    CongestionModel, Driver, LossModel, MeasurementMode, ProbabilityEvolution, ScenarioConfig,
    SimulationConfig, Simulator,
};
use network_tomography::topology::{BriteConfig, BriteGenerator};

fn single_link_model(probs: &[f64]) -> CongestionModel {
    CongestionModel::new(
        probs
            .iter()
            .enumerate()
            .map(|(i, &p)| Driver {
                probability: p,
                members: vec![network_tomography::graph::LinkId(i)],
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Over a long horizon, each Gilbert–Elliott driver spends a
    /// `p_gb / (p_gb + p_bg)` fraction of its epochs in the bad state —
    /// the stationary distribution of the two-state chain — regardless of
    /// the seed or the transition rates.
    #[test]
    fn gilbert_elliott_converges_to_the_stationary_mixture(
        p_gb in 0.05f64..0.5,
        p_bg in 0.05f64..0.5,
        seed in 1u64..10_000,
    ) {
        let (good_loss, bad_loss) = (0.05, 0.85);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = initialize_model(
            single_link_model(&[0.2, 0.5, 0.8]),
            Some(ProbabilityEvolution::GilbertElliott { p_gb, p_bg, good_loss, bad_loss }),
            &mut rng,
        );
        let drivers = model.drivers.len();
        let (burn_in, epochs) = (200usize, 3000usize);
        let mut bad_epochs = 0usize;
        for epoch in 1..=(burn_in + epochs) {
            let (next, _) = gilbert_elliott_step(
                &model, p_gb, p_bg, good_loss, bad_loss, epoch, epoch, &mut rng,
            );
            model = next;
            if epoch > burn_in {
                for driver in &model.drivers {
                    prop_assert!(
                        (driver.probability - good_loss).abs() < 1e-6
                            || (driver.probability - bad_loss).abs() < 1e-6,
                        "probability {} is off both GE levels",
                        driver.probability
                    );
                    if (driver.probability - bad_loss).abs() < 1e-6 {
                        bad_epochs += 1;
                    }
                }
            }
        }
        let empirical = bad_epochs as f64 / (epochs * drivers) as f64;
        let stationary = p_gb / (p_gb + p_bg);
        prop_assert!(
            (empirical - stationary).abs() < 0.10,
            "bad-state fraction {empirical:.3} vs stationary {stationary:.3} \
             (p_gb={p_gb:.3}, p_bg={p_bg:.3})"
        );
    }
}

/// Shared-risk link groups fail and recover as one unit: every `GroupFail`
/// leaves all of its members at the outage level in the ground-truth
/// marginal timeline, every `GroupRecover` lifts all of them off it, and
/// at no epoch is a group split — perfect correlation among members.
#[test]
fn srlg_cascades_keep_group_members_perfectly_correlated() {
    let network = BriteGenerator::new(BriteConfig {
        num_ases: 8,
        routers_per_as: 4,
        as_peering_degree: 2,
        extra_intra_edges_per_router: 1,
        peering_links_per_adjacency: 1,
        num_paths: 60,
        seed: 5,
    })
    .generate()
    .expect("valid network");
    let scenario = ScenarioConfig::link_cascade();
    let down_loss = 0.95;
    let output = Simulator::new(SimulationConfig {
        num_intervals: 400,
        scenario,
        loss: LossModel::default(),
        measurement: MeasurementMode::Ideal,
        seed: 13,
    })
    .run(&network);

    let cascade_events: Vec<_> = output
        .fault_events
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::GroupFail | FaultKind::GroupRecover))
        .collect();
    assert!(
        !cascade_events.is_empty(),
        "400 intervals of link-cascade should fail at least one group"
    );

    let at_outage = |t: usize, link: usize| -> bool {
        (output.ground_truth.marginals_at(t)[link] - down_loss).abs() < 1e-6
    };
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for event in &cascade_events {
        assert!(!event.links.is_empty(), "cascade events name their group");
        if !groups.contains(&event.links) {
            groups.push(event.links.clone());
        }
        for &link in &event.links {
            match event.kind {
                FaultKind::GroupFail => assert!(
                    at_outage(event.interval, link),
                    "link {link} not at the outage level after GroupFail@{}",
                    event.interval
                ),
                _ => assert!(
                    !at_outage(event.interval, link),
                    "link {link} still at the outage level after GroupRecover@{}",
                    event.interval
                ),
            }
        }
    }

    // No epoch ever splits a group: members are all down or all up.
    for record in output.ground_truth.epoch_marginals() {
        for group in &groups {
            let down = group
                .iter()
                .filter(|&&l| at_outage(record.start, l))
                .count();
            assert!(
                down == 0 || down == group.len(),
                "epoch@{} splits group {group:?}: {down}/{} members down",
                record.start,
                group.len()
            );
        }
    }
}
