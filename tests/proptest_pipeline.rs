//! Property-based tests over the whole pipeline: for randomly generated
//! small topologies and congestion processes, the algorithms must uphold
//! their contracts (valid probabilities, explanations that cover the
//! observations, identifiability flags consistent with the conditions).

use proptest::prelude::*;

use network_tomography::graph::check_identifiability_pp;
use network_tomography::prelude::*;
use network_tomography::sim::LossModel;

/// Strategy: a small random Brite-like network.
fn arb_network() -> impl Strategy<Value = Network> {
    (6usize..=12, 3usize..=5, 40usize..=90, 1u64..10_000).prop_map(
        |(ases, routers, paths, seed)| {
            let cfg = BriteConfig {
                num_ases: ases,
                routers_per_as: routers,
                as_peering_degree: 2,
                extra_intra_edges_per_router: 1,
                peering_links_per_adjacency: 1,
                num_paths: paths,
                seed,
            };
            BriteGenerator::new(cfg).generate().expect("valid network")
        },
    )
}

fn simulate(network: &Network, seed: u64, correlated: bool) -> SimulationOutput {
    let scenario = if correlated {
        ScenarioConfig::no_independence()
    } else {
        ScenarioConfig::random_congestion()
    };
    let config = SimulationConfig {
        num_intervals: 120,
        scenario,
        loss: LossModel::default(),
        measurement: MeasurementMode::Ideal,
        seed,
    };
    Simulator::new(config).run(network)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every Probability Computation algorithm returns probabilities in
    /// [0, 1] for every link, and reports 0 for links that were never on a
    /// congested path.
    #[test]
    fn probability_estimates_are_valid(net in arb_network(), seed in 1u64..1000, correlated in any::<bool>()) {
        let output = simulate(&net, seed, correlated);
        let algorithms: Vec<Box<dyn ProbabilityComputation>> = vec![
            Box::new(Independence::default()),
            Box::new(CorrelationHeuristic::default()),
            Box::new(CorrelationComplete::default()),
        ];
        for algo in algorithms {
            let est = algo.compute(&net, &output.observations);
            for l in net.link_ids() {
                let p = est.link_congestion_probability(l);
                prop_assert!((0.0..=1.0).contains(&p), "{}: {l} -> {p}", algo.name());
            }
            // Links on always-good paths must be reported as (close to) never
            // congested.
            for p in output.observations.always_good_paths() {
                for &l in &net.path(p).links {
                    prop_assert!(
                        est.link_congestion_probability(l) < 1e-9,
                        "{}: link {l} lies on an always-good path",
                        algo.name()
                    );
                }
            }
        }
    }

    /// Sparsity's solution always explains every congested path and never
    /// blames a link that lies on a good path of the same interval.
    #[test]
    fn sparsity_solutions_are_consistent(net in arb_network(), seed in 1u64..1000) {
        let output = simulate(&net, seed, false);
        let algo = Sparsity::new();
        for t in (0..output.observations.num_intervals()).step_by(10) {
            let congested = output.observations.congested_paths(t);
            let inferred = algo.infer_interval(&net, &congested);
            for p in &congested {
                prop_assert!(
                    net.path(*p).links.iter().any(|l| inferred.contains(l)),
                    "congested path {p} unexplained at t={t}"
                );
            }
            let good_links: std::collections::BTreeSet<LinkId> = net
                .path_ids()
                .filter(|p| !congested.contains(p))
                .flat_map(|p| net.path(p).links.clone())
                .collect();
            for l in &inferred {
                prop_assert!(!good_links.contains(l), "blamed exonerated link {l} at t={t}");
            }
        }
    }

    /// When the Identifiability++ condition holds over pairs, the
    /// Correlation-complete diagnostics must report (nearly) every target as
    /// identifiable; when the condition fails, at least one target must be
    /// flagged.
    #[test]
    fn identifiability_diagnostics_track_the_condition(net in arb_network(), seed in 1u64..1000) {
        let output = simulate(&net, seed, true);
        let est = CorrelationComplete::default().compute(&net, &output.observations);
        if est.diagnostics.total_targets == 0 {
            return Ok(());
        }
        let report = check_identifiability_pp(&net, 2);
        if report.holds {
            // The static condition considers all observed links; the
            // algorithm's targets are the potentially congested subsets (a
            // subset of those), so full identifiability is implied.
            prop_assert_eq!(
                est.diagnostics.identifiable_targets,
                est.diagnostics.total_targets
            );
        }
    }
}
