//! Cross-crate integration tests: topology generation → simulation →
//! probability computation / Boolean inference → metrics, exercised through
//! the public facade exactly as a downstream user would.

use network_tomography::graph::toy;
use network_tomography::prelude::*;
use network_tomography::sim::LossModel;

/// Generates a small Brite-like network plus a simulated experiment.
fn small_brite_experiment(seed: u64, scenario: ScenarioConfig) -> (Network, SimulationOutput) {
    let mut cfg = BriteConfig::tiny(seed);
    cfg.num_ases = 12;
    cfg.routers_per_as = 5;
    cfg.num_paths = 150;
    let network = BriteGenerator::new(cfg).generate().expect("valid network");
    let config = SimulationConfig {
        num_intervals: 250,
        scenario,
        loss: LossModel::default(),
        measurement: MeasurementMode::Ideal,
        seed: seed + 1000,
    };
    let output = Simulator::new(config).run(&network);
    (network, output)
}

#[test]
fn probability_computation_pipeline_is_accurate_on_dense_topology() {
    let (network, output) = small_brite_experiment(5, ScenarioConfig::random_congestion());
    let estimate = CorrelationComplete::default().compute(&network, &output.observations);

    // Compare against the ground-truth frequencies on the congestible links.
    let mut stats = AbsoluteErrorStats::new();
    for &l in output.ground_truth.congestible_links() {
        stats.add(
            output.ground_truth.link_frequency(l),
            estimate.link_congestion_probability(l),
        );
    }
    assert!(!stats.is_empty());
    assert!(
        stats.mean() < 0.15,
        "mean abs error too high on a dense topology: {}",
        stats.mean()
    );

    // Links that were never congested must get probability ~0.
    for l in network.link_ids() {
        if output.ground_truth.link_frequency(l) == 0.0 {
            assert!(estimate.link_congestion_probability(l) < 0.25);
        }
    }
}

#[test]
fn correlation_complete_beats_independence_under_correlations() {
    let (network, output) = small_brite_experiment(9, ScenarioConfig::no_independence());

    // Use the pairs-that-share-a-path resource knob (as the experiment
    // harness does): on instances this small, unconstrained pair unknowns
    // add variance that masks the comparison.
    let ours_algo = CorrelationComplete::new(network_tomography::prob::CorrelationCompleteConfig {
        require_common_path: true,
        ..Default::default()
    });
    let ours = ours_algo.compute(&network, &output.observations);
    let baseline = Independence::default().compute(&network, &output.observations);

    let mae = |est: &ProbabilityEstimate| {
        let mut stats = AbsoluteErrorStats::new();
        for &l in output.ground_truth.congestible_links() {
            stats.add(
                output.ground_truth.link_frequency(l),
                est.link_congestion_probability(l),
            );
        }
        stats.mean()
    };
    let ours_err = mae(&ours);
    let base_err = mae(&baseline);
    assert!(
        ours_err <= base_err + 0.05,
        "Correlation-complete ({ours_err:.3}) should not lose to Independence ({base_err:.3}) \
         under correlated congestion"
    );
}

#[test]
fn boolean_inference_pipeline_produces_consistent_explanations() {
    let (network, output) = small_brite_experiment(3, ScenarioConfig::random_congestion());
    let mut algorithms: Vec<Box<dyn BooleanInference>> = vec![
        Box::new(Sparsity::new()),
        Box::new(BayesianIndependence::new()),
        Box::new(BayesianCorrelation::new()),
    ];
    for algo in algorithms.iter_mut() {
        let inferred = infer_all_intervals(algo.as_mut(), &network, &output.observations);
        assert_eq!(inferred.len(), output.observations.num_intervals());
        let mut score = InferenceScore::new();
        for (t, links) in inferred.iter().enumerate() {
            // Under ideal monitoring, every inferred solution must explain
            // every congested path of its interval (cover it by at least one
            // inferred link).
            for p in output.observations.congested_paths(t) {
                assert!(
                    network.path(p).links.iter().any(|l| links.contains(l)),
                    "{}: interval {t}: path {p} not explained",
                    algo.name()
                );
            }
            score.add_interval(links, &output.ground_truth.congested_links(t));
        }
        // On a dense topology under random congestion all algorithms do well
        // (the Fig. 3 "Random Congestion" group).
        assert!(
            score.detection_rate() > 0.7,
            "{} detection rate {}",
            algo.name(),
            score.detection_rate()
        );
        assert!(
            score.false_positive_rate() < 0.35,
            "{} false positive rate {}",
            algo.name(),
            score.false_positive_rate()
        );
    }
}

#[test]
fn toy_topology_full_stack_matches_paper_example() {
    // Fig. 1 Case 1 with correlated {e2,e3}: the full stack (simulate with
    // the congestion model's drivers, probe, estimate) must recover the
    // correlation in the joint probability.
    let network = toy::fig1_case1();
    let mut scenario = ScenarioConfig::no_independence();
    scenario.congestible_fraction = 0.5;
    let config = SimulationConfig {
        num_intervals: 600,
        scenario,
        loss: LossModel::default(),
        measurement: MeasurementMode::PacketProbes {
            packets_per_interval: 500,
        },
        seed: 77,
    };
    let output = Simulator::new(config).run(&network);
    let algo = CorrelationComplete::new(network_tomography::prob::CorrelationCompleteConfig {
        require_common_path: true,
        ..Default::default()
    });
    let estimate = algo.compute(&network, &output.observations);

    for l in network.link_ids() {
        let actual = output.ground_truth.link_frequency(l);
        let est = estimate.link_congestion_probability(l);
        assert!(
            (actual - est).abs() < 0.2,
            "{l}: actual {actual:.3} vs estimated {est:.3}"
        );
    }
}

#[test]
fn identifiability_reports_agree_with_algorithm_diagnostics() {
    // On Case 2 of the toy topology, Identifiability++ fails and the
    // algorithm's diagnostics must reflect that.
    let network = toy::fig1_case2();
    let report = network_tomography::graph::check_identifiability_pp(&network, 2);
    assert!(!report.holds);

    let mut obs = PathObservations::new(network.num_paths(), 50);
    for t in 0..50 {
        for p in network.path_ids() {
            obs.set_congested(p, t, t % 2 == 0);
        }
    }
    let estimate = CorrelationComplete::default().compute(&network, &obs);
    assert!(estimate.diagnostics.identifiable_targets < estimate.diagnostics.total_targets);
}

#[test]
fn experiment_harness_small_scale_smoke() {
    use network_tomography::experiments::{run_figure4d, table2, ExperimentScale};
    let t2 = table2();
    assert_eq!(t2.algorithms.len(), 6);
    let f4d = run_figure4d(ExperimentScale::Small, 2).expect("figure 4d runs");
    assert_eq!(f4d.rows.len(), 2);
}
