//! Absolute-error statistics for Probability Computation (Fig. 4 of the
//! paper).

use serde::{Deserialize, Serialize};

/// Mean of `|actual - estimated|` over a list of (actual, estimated) pairs.
/// Returns 0.0 for an empty list.
pub fn mean_absolute_error(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().map(|(a, e)| (a - e).abs()).sum::<f64>() / pairs.len() as f64
}

/// Summary statistics of a set of absolute errors.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AbsoluteErrorStats {
    errors: Vec<f64>,
}

impl AbsoluteErrorStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one (actual, estimated) observation.
    pub fn add(&mut self, actual: f64, estimated: f64) {
        self.errors.push((actual - estimated).abs());
    }

    /// Adds a pre-computed absolute error.
    pub fn add_error(&mut self, error: f64) {
        self.errors.push(error.abs());
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Returns `true` when no observation was added.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Mean absolute error (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().sum::<f64>() / self.errors.len() as f64
    }

    /// Maximum absolute error (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.errors.iter().fold(0.0_f64, |a, &b| a.max(b))
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the absolute errors, by linear
    /// interpolation between order statistics. 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        let mut sorted = self.errors.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q = q.clamp(0.0, 1.0);
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// The fraction of observations with error at most `threshold`.
    pub fn fraction_within(&self, threshold: f64) -> f64 {
        if self.errors.is_empty() {
            return 1.0;
        }
        self.errors.iter().filter(|&&e| e <= threshold).count() as f64 / self.errors.len() as f64
    }

    /// The raw errors (unsorted).
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// Builds the CDF of the absolute errors (for Fig. 4(c)).
    pub fn cdf(&self) -> crate::cdf::Cdf {
        crate::cdf::Cdf::from_values(self.errors.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_absolute_error_of_pairs() {
        let pairs = vec![(0.5, 0.4), (0.2, 0.5), (1.0, 1.0)];
        assert!((mean_absolute_error(&pairs) - (0.1 + 0.3 + 0.0) / 3.0).abs() < 1e-12);
        assert_eq!(mean_absolute_error(&[]), 0.0);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = AbsoluteErrorStats::new();
        s.add(0.5, 0.4);
        s.add(0.2, 0.6);
        s.add_error(-0.3);
        assert_eq!(s.len(), 3);
        assert!((s.mean() - (0.1 + 0.4 + 0.3) / 3.0).abs() < 1e-12);
        assert!((s.max() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn quantiles_and_fractions() {
        let mut s = AbsoluteErrorStats::new();
        for e in [0.0, 0.1, 0.2, 0.3, 0.4] {
            s.add_error(e);
        }
        assert!((s.quantile(0.0) - 0.0).abs() < 1e-12);
        assert!((s.quantile(1.0) - 0.4).abs() < 1e-12);
        assert!((s.quantile(0.5) - 0.2).abs() < 1e-12);
        assert!((s.fraction_within(0.15) - 0.4).abs() < 1e-12);
        assert!((s.fraction_within(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = AbsoluteErrorStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.fraction_within(0.1), 1.0);
    }
}
