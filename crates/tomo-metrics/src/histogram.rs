//! Log-bucketed latency histograms for the serving path.
//!
//! The hot path records one `u64` (nanoseconds) per event into a
//! fixed-size array of atomic counters — no allocation, no lock, no sample
//! vector that grows with traffic (PAPERS.md's "Outrunning Big KATs"
//! lesson: representation choice is what keeps the hot path cheap). The
//! bucketing is **log-linear** (HDR-style): each power-of-two octave is
//! split into [`SUB_BUCKETS`] linear sub-buckets, so the relative width of
//! any bucket is at most `1/SUB_BUCKETS` = 12.5% — quantiles read from
//! bucket bounds are never more than one bucket width away from the exact
//! order statistic.
//!
//! Two types split the recording and reporting halves:
//!
//! * [`AtomicHistogram`] — the write side: `record` is a relaxed
//!   `fetch_add` on one bucket (plus count/sum/max), safe to share across
//!   worker threads behind an `Arc` with no mutex;
//! * [`HistogramSnapshot`] — the read side: a serializable dense count
//!   vector with [`quantile`](HistogramSnapshot::quantile) extraction and
//!   elementwise [`merge`](HistogramSnapshot::merge), so a fleet router can
//!   combine per-backend histograms and recompute p50/p95/p99 *after*
//!   merging (averaging per-backend quantiles would be wrong).

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per power-of-two octave (must be a power of two).
pub const SUB_BUCKETS: usize = 8;

/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 3;

/// Total buckets: values below [`SUB_BUCKETS`] get exact unit buckets,
/// then each of the remaining octaves (top bit 3..=63) contributes
/// [`SUB_BUCKETS`] sub-buckets.
pub const NUM_BUCKETS: usize = SUB_BUCKETS * 62;

/// The bucket index containing `value`. Values below [`SUB_BUCKETS`] map
/// to exact unit buckets; larger values map to `(octave, sub-bucket)`
/// pairs where the sub-bucket is the top [`SUB_BITS`] bits after the
/// leading one.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let sub = ((value >> (msb - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    SUB_BUCKETS * (msb - SUB_BITS + 1) as usize + sub
}

/// The half-open value range `[lo, hi)` covered by bucket `index`. The
/// top bucket's exclusive bound saturates at `u64::MAX` (that bucket also
/// holds `u64::MAX` itself).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
    if index < SUB_BUCKETS {
        return (index as u64, index as u64 + 1);
    }
    let msb = (index / SUB_BUCKETS) as u32 + SUB_BITS - 1;
    let sub = (index % SUB_BUCKETS) as u128;
    let width = 1u128 << (msb - SUB_BITS);
    let lo = (1u128 << msb) + sub * width;
    let hi = (lo + width).min(u64::MAX as u128);
    (lo as u64, hi as u64)
}

/// The value a bucket reports for the samples it holds: the largest value
/// the bucket can contain. Conservative (quantiles round *up* within one
/// bucket width) and exact for the unit buckets below [`SUB_BUCKETS`].
fn bucket_representative(index: usize) -> u64 {
    let (_, hi) = bucket_bounds(index);
    hi - 1
}

/// The lock-free recording side: a fixed array of relaxed atomic bucket
/// counters plus count/sum/max. Share behind an `Arc`; `record` never
/// blocks and never allocates.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (relaxed atomics; safe from any thread).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counters. Concurrent `record` calls may
    /// or may not be included (each sample is atomic, the scan is not), so
    /// a snapshot taken under load is approximate by one in-flight sample
    /// per recording thread — fine for monitoring, documented here so
    /// nobody builds an exactly-once pipeline on it.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while counts.last() == Some(&0) {
            counts.pop();
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            counts,
        }
    }
}

/// The serializable reporting side: dense bucket counts (trailing zero
/// buckets trimmed) plus count/sum/max. Merging two snapshots and then
/// extracting quantiles gives the quantiles of the combined sample set —
/// the property the fleet router relies on.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket sample counts, bucket 0 first, trailing zeros trimmed.
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample (the non-atomic path, for tests and offline use).
    pub fn record(&mut self, value: u64) {
        let index = bucket_index(value);
        if self.counts.len() <= index {
            self.counts.resize(index + 1, 0);
        }
        self.counts[index] += 1;
        self.count += 1;
        // Wrapping, matching `AtomicHistogram`'s fetch_add: the sum is
        // modular in the (infeasible) event total latency exceeds u64.
        self.sum = self.sum.wrapping_add(value);
        self.max = self.max.max(value);
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.sum as f64 / total as f64
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) by nearest rank: the reported value
    /// is the upper bound of the bucket holding the rank-`⌈q·n⌉` sample,
    /// so it is within one bucket width (≤ 12.5% relative) above the exact
    /// order statistic and **monotone in `q`** by construction. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_representative(index);
            }
        }
        bucket_representative(self.counts.len().saturating_sub(1))
    }

    /// Adds `other`'s samples into `self` (elementwise bucket sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// A derived latency summary: the headline quantiles plus the full
/// histogram they were read from, so downstream mergers can recompute
/// them after combining backends.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Largest sample, nanoseconds.
    pub max_ns: u64,
    /// Mean, nanoseconds.
    pub mean_ns: f64,
    /// The underlying histogram (merge these, then re-derive quantiles).
    pub hist: HistogramSnapshot,
}

impl LatencySummary {
    /// Derives the summary quantiles from a histogram snapshot.
    pub fn from_snapshot(hist: HistogramSnapshot) -> Self {
        Self {
            count: hist.count,
            p50_ns: hist.quantile(0.50),
            p95_ns: hist.quantile(0.95),
            p99_ns: hist.quantile(0.99),
            max_ns: hist.max,
            mean_ns: hist.mean(),
            hist,
        }
    }

    /// Merges `other` into `self` at the histogram level and re-derives
    /// the quantiles — the correct way to combine summaries from several
    /// backends (never average quantiles).
    pub fn merge(&mut self, other: &LatencySummary) {
        let mut hist = std::mem::take(&mut self.hist);
        hist.merge(&other.hist);
        *self = LatencySummary::from_snapshot(hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
        }
    }

    #[test]
    fn bucket_indices_are_monotone_and_bounded() {
        let mut values: Vec<u64> = (0..64)
            .flat_map(|shift| [0u64, 1, 3].map(|offset| (1u64 << shift).saturating_add(offset)))
            .collect();
        values.sort_unstable();
        let mut last = 0;
        for v in values {
            let index = bucket_index(v);
            assert!(index < NUM_BUCKETS, "v={v} index={index}");
            assert!(index >= last, "index not monotone at v={v}");
            last = index;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bounds_partition_the_value_space() {
        // Consecutive buckets tile [0, u64::MAX] with no gap or overlap.
        for index in 0..NUM_BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(index);
            let (next_lo, _) = bucket_bounds(index + 1);
            assert!(lo < hi, "bucket {index} empty: [{lo}, {hi})");
            assert_eq!(hi, next_lo, "gap/overlap after bucket {index}");
        }
        let (_, top_hi) = bucket_bounds(NUM_BUCKETS - 1);
        assert_eq!(top_hi, u64::MAX);
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for index in SUB_BUCKETS..NUM_BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(index);
            let width = hi - lo;
            assert!(
                (width as f64) <= lo as f64 / SUB_BUCKETS as f64 * 2.0,
                "bucket {index} too wide: [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn atomic_and_snapshot_recording_agree() {
        let atomic = AtomicHistogram::new();
        let mut direct = HistogramSnapshot::new();
        for v in [0, 1, 7, 8, 9, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            atomic.record(v);
            direct.record(v);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count, direct.count);
        assert_eq!(snap.sum, direct.sum);
        assert_eq!(snap.max, direct.max);
        assert_eq!(snap.counts, direct.counts);
        assert_eq!(atomic.count(), 10);
    }

    #[test]
    fn quantiles_bracket_the_exact_order_statistic() {
        let mut h = HistogramSnapshot::new();
        let mut samples: Vec<u64> = (0..1000).map(|i| i * i % 50_000).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let approx = h.quantile(q);
            assert!(approx >= exact, "q={q}: {approx} < exact {exact}");
            // Within one bucket: the reported value's bucket contains exact.
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            assert!(approx >= lo && approx < hi.max(lo + 1), "q={q}");
        }
        assert_eq!(h.quantile(1.0), {
            let (_, hi) = bucket_bounds(bucket_index(*samples.last().unwrap()));
            hi - 1
        });
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = HistogramSnapshot::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        let summary = LatencySummary::from_snapshot(h);
        assert_eq!(summary.p95_ns, 0);
        assert_eq!(summary.count, 0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        let mut whole = HistogramSnapshot::new();
        for i in 0..500u64 {
            let v = i * 37 % 10_000;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            whole.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn summaries_merge_at_the_histogram_level() {
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        // a holds small samples, b holds large ones: the merged p95 must
        // come from the combined distribution, not an average of the two.
        for _ in 0..100 {
            a.record(100);
            b.record(1_000_000);
        }
        let mut merged = LatencySummary::from_snapshot(a);
        merged.merge(&LatencySummary::from_snapshot(b));
        assert_eq!(merged.count, 200);
        assert!(merged.p95_ns >= 1_000_000, "p95 {}", merged.p95_ns);
        assert!(merged.p50_ns <= 127, "p50 {}", merged.p50_ns);
        let roundtrip: LatencySummary =
            serde_json::from_str(&serde_json::to_string(&merged).unwrap()).unwrap();
        assert_eq!(roundtrip, merged);
    }

    #[test]
    fn serde_round_trip_preserves_buckets() {
        let mut h = HistogramSnapshot::new();
        for v in [3, 900, 70_000, 5_000_000] {
            h.record(v);
        }
        let back: HistogramSnapshot =
            serde_json::from_str(&serde_json::to_string(&h).unwrap()).unwrap();
        assert_eq!(back, h);
    }
}
