//! Detection-rate and false-positive-rate metrics for Boolean Inference
//! (the metrics of §3.2 of the paper).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use tomo_graph::LinkId;

/// The score of one interval.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IntervalScore {
    /// Fraction of actually-congested links that were inferred as congested.
    /// `None` when no link was actually congested (the interval carries no
    /// detection information).
    pub detection_rate: Option<f64>,
    /// Fraction of inferred-congested links that were actually good. `None`
    /// when the algorithm inferred no congested link.
    pub false_positive_rate: Option<f64>,
    /// Number of actually congested links.
    pub num_congested: usize,
    /// Number of links inferred as congested.
    pub num_inferred: usize,
}

/// Computes the per-interval detection and false-positive rates.
pub fn detection_and_false_positive(inferred: &[LinkId], actual: &[LinkId]) -> IntervalScore {
    let inferred_set: BTreeSet<LinkId> = inferred.iter().copied().collect();
    let actual_set: BTreeSet<LinkId> = actual.iter().copied().collect();
    let true_positives = inferred_set.intersection(&actual_set).count();
    let detection_rate = if actual_set.is_empty() {
        None
    } else {
        Some(true_positives as f64 / actual_set.len() as f64)
    };
    let false_positive_rate = if inferred_set.is_empty() {
        None
    } else {
        Some((inferred_set.len() - true_positives) as f64 / inferred_set.len() as f64)
    };
    IntervalScore {
        detection_rate,
        false_positive_rate,
        num_congested: actual_set.len(),
        num_inferred: inferred_set.len(),
    }
}

/// Aggregate score of an inference algorithm over an experiment: the average
/// of the per-interval rates, as in Fig. 3 of the paper ("each detection rate
/// and false-positive rate we show is an average over 1000 time intervals").
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InferenceScore {
    detection_sum: f64,
    detection_count: usize,
    false_positive_sum: f64,
    false_positive_count: usize,
    intervals: usize,
}

impl InferenceScore {
    /// Creates an empty score accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one interval's score.
    pub fn add(&mut self, score: IntervalScore) {
        self.intervals += 1;
        if let Some(d) = score.detection_rate {
            self.detection_sum += d;
            self.detection_count += 1;
        }
        if let Some(f) = score.false_positive_rate {
            self.false_positive_sum += f;
            self.false_positive_count += 1;
        }
    }

    /// Convenience: scores one interval from the raw link sets and adds it.
    pub fn add_interval(&mut self, inferred: &[LinkId], actual: &[LinkId]) {
        self.add(detection_and_false_positive(inferred, actual));
    }

    /// Average detection rate over the intervals that had at least one
    /// congested link.
    pub fn detection_rate(&self) -> f64 {
        if self.detection_count == 0 {
            return 1.0;
        }
        self.detection_sum / self.detection_count as f64
    }

    /// Average false-positive rate over the intervals in which the algorithm
    /// inferred at least one congested link.
    pub fn false_positive_rate(&self) -> f64 {
        if self.false_positive_count == 0 {
            return 0.0;
        }
        self.false_positive_sum / self.false_positive_count as f64
    }

    /// Number of intervals accumulated.
    pub fn num_intervals(&self) -> usize {
        self.intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_inference() {
        let s = detection_and_false_positive(&[LinkId(1), LinkId(2)], &[LinkId(1), LinkId(2)]);
        assert_eq!(s.detection_rate, Some(1.0));
        assert_eq!(s.false_positive_rate, Some(0.0));
    }

    #[test]
    fn partial_detection_with_false_positive() {
        // Truth {1,2}; inferred {1,3}: detection 0.5, false positives 0.5.
        let s = detection_and_false_positive(&[LinkId(1), LinkId(3)], &[LinkId(1), LinkId(2)]);
        assert_eq!(s.detection_rate, Some(0.5));
        assert_eq!(s.false_positive_rate, Some(0.5));
    }

    #[test]
    fn empty_cases() {
        let s = detection_and_false_positive(&[], &[LinkId(1)]);
        assert_eq!(s.detection_rate, Some(0.0));
        assert_eq!(s.false_positive_rate, None);

        let s = detection_and_false_positive(&[LinkId(1)], &[]);
        assert_eq!(s.detection_rate, None);
        assert_eq!(s.false_positive_rate, Some(1.0));

        let s = detection_and_false_positive(&[], &[]);
        assert_eq!(s.detection_rate, None);
        assert_eq!(s.false_positive_rate, None);
    }

    #[test]
    fn aggregation_averages_over_informative_intervals() {
        let mut agg = InferenceScore::new();
        agg.add_interval(&[LinkId(0)], &[LinkId(0)]); // DR 1, FPR 0
        agg.add_interval(&[LinkId(0), LinkId(1)], &[LinkId(0), LinkId(2)]); // DR 0.5, FPR 0.5
        agg.add_interval(&[], &[]); // uninformative
        assert_eq!(agg.num_intervals(), 3);
        assert!((agg.detection_rate() - 0.75).abs() < 1e-12);
        assert!((agg.false_positive_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn duplicates_in_input_are_ignored() {
        let s = detection_and_false_positive(
            &[LinkId(1), LinkId(1), LinkId(2)],
            &[LinkId(1), LinkId(2), LinkId(2)],
        );
        assert_eq!(s.detection_rate, Some(1.0));
        assert_eq!(s.false_positive_rate, Some(0.0));
        assert_eq!(s.num_congested, 2);
        assert_eq!(s.num_inferred, 2);
    }
}
