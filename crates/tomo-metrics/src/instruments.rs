//! Per-tenant serving instruments: the write-side bundle a registry entry
//! carries so the dispatch path can record latencies and admission events
//! without taking any lock beyond the work it already does.
//!
//! One [`Instruments`] lives inside each tenant entry (behind the entry's
//! `Arc`, *outside* its mutexes): ingest and query latency go into
//! [`AtomicHistogram`]s, admission-control events (shed batches, expired
//! deadlines) into relaxed counters. [`Instruments::snapshot`] freezes the
//! lot into a serializable [`InstrumentsSnapshot`] for the `Metrics`
//! response.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::histogram::{AtomicHistogram, LatencySummary};

/// Lock-free per-tenant instruments (the recording side).
#[derive(Debug, Default)]
pub struct Instruments {
    /// Per-batch session ingest latency (the `session.observe` fold).
    ingest: AtomicHistogram,
    /// Read-path latency (`Query` estimate reads and `Infer` calls).
    query: AtomicHistogram,
    /// Batches dropped by shed-oldest admission.
    shed_batches: AtomicU64,
    /// Intervals inside those dropped batches.
    shed_intervals: AtomicU64,
    /// Deadline-expired work discarded before execution (stale queued
    /// batches dropped at drain + requests expired at dequeue).
    timeouts: AtomicU64,
    /// Topology drift: links that newly entered the active set.
    drift_links_appeared: AtomicU64,
    /// Topology drift: links that aged out of the active set.
    drift_links_disappeared: AtomicU64,
    /// Topology drift: measurement path-set size changes.
    drift_path_set_changes: AtomicU64,
}

impl Instruments {
    /// Fresh all-zero instruments.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one ingest fold taking `ns` nanoseconds.
    pub fn record_ingest_ns(&self, ns: u64) {
        self.ingest.record(ns);
    }

    /// Records one read-path call taking `ns` nanoseconds.
    pub fn record_query_ns(&self, ns: u64) {
        self.query.record(ns);
    }

    /// Records one batch of `intervals` intervals dropped by shed-oldest.
    pub fn record_shed(&self, intervals: u64) {
        self.shed_batches.fetch_add(1, Ordering::Relaxed);
        self.shed_intervals.fetch_add(intervals, Ordering::Relaxed);
    }

    /// Records one piece of deadline-expired work discarded unexecuted.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Batches dropped by shed-oldest so far.
    pub fn shed_batches(&self) -> u64 {
        self.shed_batches.load(Ordering::Relaxed)
    }

    /// Deadline expiries so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Records a batch of topology-drift detections (one call per drained
    /// session, with however many links/changes that drain surfaced).
    pub fn record_drift(&self, appeared: u64, disappeared: u64, path_set_changes: u64) {
        if appeared > 0 {
            self.drift_links_appeared
                .fetch_add(appeared, Ordering::Relaxed);
        }
        if disappeared > 0 {
            self.drift_links_disappeared
                .fetch_add(disappeared, Ordering::Relaxed);
        }
        if path_set_changes > 0 {
            self.drift_path_set_changes
                .fetch_add(path_set_changes, Ordering::Relaxed);
        }
    }

    /// Freezes the instruments into a serializable snapshot with derived
    /// p50/p95/p99 summaries.
    pub fn snapshot(&self) -> InstrumentsSnapshot {
        InstrumentsSnapshot {
            ingest: LatencySummary::from_snapshot(self.ingest.snapshot()),
            query: LatencySummary::from_snapshot(self.query.snapshot()),
            shed_batches: self.shed_batches.load(Ordering::Relaxed),
            shed_intervals: self.shed_intervals.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            drift_links_appeared: self.drift_links_appeared.load(Ordering::Relaxed),
            drift_links_disappeared: self.drift_links_disappeared.load(Ordering::Relaxed),
            drift_path_set_changes: self.drift_path_set_changes.load(Ordering::Relaxed),
        }
    }
}

/// The serializable read side of [`Instruments`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct InstrumentsSnapshot {
    /// Ingest-fold latency summary.
    pub ingest: LatencySummary,
    /// Read-path latency summary.
    pub query: LatencySummary,
    /// Batches dropped by shed-oldest admission.
    pub shed_batches: u64,
    /// Intervals inside those dropped batches.
    pub shed_intervals: u64,
    /// Deadline-expired work discarded before execution.
    pub timeouts: u64,
    /// Topology drift: links that newly entered the active set.
    pub drift_links_appeared: u64,
    /// Topology drift: links that aged out of the active set.
    pub drift_links_disappeared: u64,
    /// Topology drift: measurement path-set size changes.
    pub drift_path_set_changes: u64,
}

impl InstrumentsSnapshot {
    /// Merges `other` into `self`: histograms merge elementwise (quantiles
    /// re-derived), counters add.
    pub fn merge(&mut self, other: &InstrumentsSnapshot) {
        self.ingest.merge(&other.ingest);
        self.query.merge(&other.query);
        self.shed_batches += other.shed_batches;
        self.shed_intervals += other.shed_intervals;
        self.timeouts += other.timeouts;
        self.drift_links_appeared += other.drift_links_appeared;
        self.drift_links_disappeared += other.drift_links_disappeared;
        self.drift_path_set_changes += other.drift_path_set_changes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_snapshot_carries_all_counters() {
        let ins = Instruments::new();
        for ns in [1_000, 2_000, 4_000, 1_000_000] {
            ins.record_ingest_ns(ns);
        }
        ins.record_query_ns(500);
        ins.record_shed(7);
        ins.record_shed(3);
        ins.record_timeout();
        ins.record_drift(2, 1, 0);
        ins.record_drift(0, 0, 1);
        let snap = ins.snapshot();
        assert_eq!(snap.drift_links_appeared, 2);
        assert_eq!(snap.drift_links_disappeared, 1);
        assert_eq!(snap.drift_path_set_changes, 1);
        assert_eq!(snap.ingest.count, 4);
        assert_eq!(snap.query.count, 1);
        assert_eq!(snap.shed_batches, 2);
        assert_eq!(snap.shed_intervals, 10);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(ins.shed_batches(), 2);
        assert_eq!(ins.timeouts(), 1);
        assert!(snap.ingest.p95_ns >= 1_000_000);
        assert!(snap.ingest.p50_ns <= snap.ingest.p95_ns);
    }

    #[test]
    fn merge_adds_counters_and_rederives_quantiles() {
        let a = Instruments::new();
        let b = Instruments::new();
        for _ in 0..50 {
            a.record_ingest_ns(100);
            b.record_ingest_ns(1_000_000);
        }
        a.record_shed(4);
        b.record_timeout();
        a.record_drift(1, 0, 0);
        b.record_drift(2, 3, 4);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.drift_links_appeared, 3);
        assert_eq!(merged.drift_links_disappeared, 3);
        assert_eq!(merged.drift_path_set_changes, 4);
        assert_eq!(merged.ingest.count, 100);
        assert_eq!(merged.shed_batches, 1);
        assert_eq!(merged.shed_intervals, 4);
        assert_eq!(merged.timeouts, 1);
        assert!(merged.ingest.p95_ns >= 1_000_000);
        assert!(merged.ingest.p50_ns <= 127);
    }
}
