//! Empirical cumulative distribution functions (used for Fig. 4(c)).

use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite set of values.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF of the given values.
    pub fn from_values(mut values: Vec<f64>) -> Self {
        values.sort_by(|a, b| a.total_cmp(b));
        Self { sorted: values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` when the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: the fraction of samples ≤ `x`. Returns 0 for an empty CDF.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // Number of samples <= x via binary search for the first sample > x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The smallest sample `x` with `F(x) >= q` (the `q`-quantile). Returns
    /// `None` for an empty CDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[idx - 1])
    }

    /// Samples the CDF at `points` evenly spaced x values between `min` and
    /// `max`, returning `(x, F(x))` pairs — convenient for printing a figure
    /// series.
    pub fn series(&self, min: f64, max: f64, points: usize) -> Vec<(f64, f64)> {
        if points == 0 {
            return Vec::new();
        }
        (0..points)
            .map(|i| {
                let x = if points == 1 {
                    min
                } else {
                    min + (max - min) * i as f64 / (points - 1) as f64
                };
                (x, self.at(x))
            })
            .collect()
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_cdf_queries() {
        let cdf = Cdf::from_values(vec![0.3, 0.1, 0.2, 0.4]);
        assert_eq!(cdf.len(), 4);
        assert!((cdf.at(0.05) - 0.0).abs() < 1e-12);
        assert!((cdf.at(0.1) - 0.25).abs() < 1e-12);
        assert!((cdf.at(0.25) - 0.5).abs() < 1e-12);
        assert!((cdf.at(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let cdf = Cdf::from_values(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.quantile(0.25), Some(1.0));
        assert_eq!(cdf.quantile(0.5), Some(2.0));
        assert_eq!(cdf.quantile(1.0), Some(4.0));
        assert_eq!(Cdf::default().quantile(0.5), None);
    }

    #[test]
    fn series_is_monotone() {
        let cdf = Cdf::from_values(vec![0.05, 0.3, 0.3, 0.9]);
        let series = cdf.series(0.0, 1.0, 11);
        assert_eq!(series.len(), 11);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((series.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::default();
        assert!(cdf.is_empty());
        assert_eq!(cdf.at(0.5), 0.0);
        assert!(cdf.series(0.0, 1.0, 3).iter().all(|&(_, y)| y == 0.0));
    }
}
