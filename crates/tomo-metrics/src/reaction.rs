//! Reaction scoring: how fast an estimator *notices* an injected fault and
//! how fast it *recovers* from it.
//!
//! A chaos run produces three aligned timelines:
//!
//! * the [`FaultEvent`]s the scenario injected (epoch boundaries where the
//!   congestion process changed);
//! * a sequence of [`EstimateSample`]s — the streaming estimator's marginal
//!   estimate, sampled as observations arrive;
//! * the ground-truth marginal timeline (what the true probabilities were at
//!   every interval).
//!
//! [`score_reactions`] lines the three up and computes, per fault:
//!
//! * **detection latency** — intervals from the fault until the estimate is
//!   closer (in L∞ over the scored links) to the *post*-fault truth than to
//!   the *pre*-fault truth. This is "the estimator noticed";
//! * **time to reconverge** — intervals from the fault until the L∞ error
//!   against the current truth re-enters the configured band. This is "the
//!   estimator recovered";
//! * **mid-fault error integral** — the L∞ error summed over the window
//!   between this fault and the next (`Σ err·Δt`), a scalar for "how much
//!   wrongness the fault caused in total".
//!
//! Each metric is `None` when the window ended before the criterion was met
//! — a fault the estimator never detected scores `None`, not a large number,
//! so aggregates cannot launder non-detection into a finite latency.

use serde::{Deserialize, Serialize};
use tomo_chaos::FaultEvent;

/// One sample of a streaming estimator's marginal estimate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EstimateSample {
    /// Number of intervals ingested when the sample was taken (the sample
    /// reflects observations `0..intervals`).
    pub intervals: usize,
    /// Estimated marginal congestion probability per link.
    pub probabilities: Vec<f64>,
}

/// Configuration of the reaction scorer.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ReactionConfig {
    /// L∞ error band: the estimate has *reconverged* once its L∞ distance to
    /// the current truth is at most this.
    pub band: f64,
}

impl Default for ReactionConfig {
    fn default() -> Self {
        Self { band: 0.15 }
    }
}

/// Reaction scores for one injected fault.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultReaction {
    /// The fault being scored.
    pub fault: FaultEvent,
    /// Intervals until the estimate moved decisively toward the post-fault
    /// truth; `None` if it never did within the window.
    pub detection_latency: Option<usize>,
    /// Intervals until the L∞ error re-entered the band; `None` if it never
    /// did within the window.
    pub reconverge_latency: Option<usize>,
    /// `Σ L∞·Δt` over the window between this fault and the next.
    pub mid_fault_error: f64,
}

/// Reaction scores for every fault of a run, with aggregate accessors.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReactionReport {
    /// Per-fault scores, in fault order.
    pub reactions: Vec<FaultReaction>,
}

/// L∞ distance between an estimate and a truth vector, over all links.
fn linf(estimate: &[f64], truth: &[f64]) -> f64 {
    estimate
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

fn percentile(sorted: &[usize], q: f64) -> Option<usize> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    Some(sorted[rank.min(sorted.len() - 1)])
}

impl ReactionReport {
    /// Number of faults that were scored.
    pub fn num_faults(&self) -> usize {
        self.reactions.len()
    }

    /// Number of faults the estimator detected within their window.
    pub fn num_detected(&self) -> usize {
        self.reactions
            .iter()
            .filter(|r| r.detection_latency.is_some())
            .count()
    }

    /// Number of faults the estimator reconverged from within their window.
    pub fn num_reconverged(&self) -> usize {
        self.reactions
            .iter()
            .filter(|r| r.reconverge_latency.is_some())
            .count()
    }

    fn sorted(&self, f: impl Fn(&FaultReaction) -> Option<usize>) -> Vec<usize> {
        let mut v: Vec<usize> = self.reactions.iter().filter_map(f).collect();
        v.sort_unstable();
        v
    }

    /// A percentile of the detection latencies (over detected faults only).
    /// `q` is in `[0, 1]`; `None` when no fault was detected.
    pub fn detection_percentile(&self, q: f64) -> Option<usize> {
        percentile(&self.sorted(|r| r.detection_latency), q)
    }

    /// A percentile of the reconvergence latencies (over reconverged faults
    /// only). `None` when no fault reconverged.
    pub fn reconverge_percentile(&self, q: f64) -> Option<usize> {
        percentile(&self.sorted(|r| r.reconverge_latency), q)
    }

    /// Mean detection latency over detected faults; `None` when none were.
    pub fn mean_detection_latency(&self) -> Option<f64> {
        let v = self.sorted(|r| r.detection_latency);
        if v.is_empty() {
            return None;
        }
        Some(v.iter().sum::<usize>() as f64 / v.len() as f64)
    }

    /// Mean reconvergence latency over reconverged faults; `None` when none.
    pub fn mean_reconverge_latency(&self) -> Option<f64> {
        let v = self.sorted(|r| r.reconverge_latency);
        if v.is_empty() {
            return None;
        }
        Some(v.iter().sum::<usize>() as f64 / v.len() as f64)
    }

    /// Total mid-fault error integral over all faults.
    pub fn total_mid_fault_error(&self) -> f64 {
        self.reactions.iter().map(|r| r.mid_fault_error).sum()
    }
}

/// Looks up the truth marginals in force at interval `t` from an epoch
/// timeline of `(start_interval, marginals)` pairs sorted by start.
fn truth_at<'a>(timeline: &'a [(usize, &'a [f64])], t: usize) -> Option<&'a [f64]> {
    let idx = timeline.partition_point(|&(start, _)| start <= t);
    if idx == 0 {
        None
    } else {
        Some(timeline[idx - 1].1)
    }
}

/// Scores every fault of a run against the sampled estimate trajectory.
///
/// * `faults` — the injected events, sorted by interval;
/// * `samples` — estimate samples sorted by `intervals` (a sample with
///   `intervals = k` reflects observations `0..k`, i.e. it is the state *at*
///   interval `k`);
/// * `truth` — epoch timeline of `(start_interval, marginals)`, sorted;
/// * `config` — the reconvergence band.
///
/// Each fault's window runs from its interval to the next fault's interval
/// (the last fault's to infinity); metrics unmet within the window are
/// `None`. Faults at interval 0 (initial placement) are skipped — there is
/// no pre-fault state to react from.
pub fn score_reactions(
    faults: &[FaultEvent],
    samples: &[EstimateSample],
    truth: &[(usize, &[f64])],
    config: ReactionConfig,
) -> ReactionReport {
    let mut reactions = Vec::new();
    for (i, fault) in faults.iter().enumerate() {
        if fault.interval == 0 {
            continue;
        }
        let window_end = faults
            .iter()
            .skip(i + 1)
            .map(|f| f.interval)
            .find(|&iv| iv > fault.interval)
            .unwrap_or(usize::MAX);
        let pre_truth = match truth_at(truth, fault.interval.saturating_sub(1)) {
            Some(t) => t,
            None => continue,
        };

        let mut detection_latency = None;
        let mut reconverge_latency = None;
        let mut mid_fault_error = 0.0;
        let mut prev_t = fault.interval;

        for sample in samples {
            let t = sample.intervals;
            if t < fault.interval {
                continue;
            }
            if t >= window_end {
                break;
            }
            let now_truth = match truth_at(truth, t) {
                Some(tr) => tr,
                None => continue,
            };
            let err_now = linf(&sample.probabilities, now_truth);
            let err_pre = linf(&sample.probabilities, pre_truth);
            if detection_latency.is_none() && err_now < err_pre {
                detection_latency = Some(t - fault.interval);
            }
            if reconverge_latency.is_none() && err_now <= config.band {
                reconverge_latency = Some(t - fault.interval);
            }
            mid_fault_error += err_now * (t - prev_t) as f64;
            prev_t = t;
        }

        reactions.push(FaultReaction {
            fault: fault.clone(),
            detection_latency,
            reconverge_latency,
            mid_fault_error,
        });
    }
    ReactionReport { reactions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_chaos::FaultKind;

    fn fault(interval: usize) -> FaultEvent {
        FaultEvent::model(FaultKind::GroupFail, interval, interval / 10, vec![0])
    }

    fn sample(intervals: usize, p: f64) -> EstimateSample {
        EstimateSample {
            intervals,
            probabilities: vec![p],
        }
    }

    #[test]
    fn detection_fires_when_estimate_crosses_toward_post_truth() {
        // Truth: 0.1 before interval 50, 0.9 after.
        let pre = [0.1];
        let post = [0.9];
        let truth: Vec<(usize, &[f64])> = vec![(0, &pre), (50, &post)];
        let faults = vec![fault(50)];
        // Estimate creeps from 0.1 to 0.9: crosses the 0.5 midpoint at t=70,
        // enters the 0.15 band (>= 0.75) at t=80.
        let samples = vec![
            sample(40, 0.10),
            sample(60, 0.30),
            sample(70, 0.55),
            sample(80, 0.80),
            sample(90, 0.88),
        ];
        let report = score_reactions(&faults, &samples, &truth, ReactionConfig { band: 0.15 });
        assert_eq!(report.num_faults(), 1);
        let r = &report.reactions[0];
        assert_eq!(r.detection_latency, Some(20));
        assert_eq!(r.reconverge_latency, Some(30));
        assert!(r.mid_fault_error > 0.0);
    }

    #[test]
    fn undetected_faults_score_none_not_large() {
        let pre = [0.1];
        let post = [0.9];
        let truth: Vec<(usize, &[f64])> = vec![(0, &pre), (50, &post)];
        let faults = vec![fault(50)];
        // The estimate never moves.
        let samples = vec![sample(60, 0.1), sample(90, 0.1)];
        let report = score_reactions(&faults, &samples, &truth, ReactionConfig::default());
        let r = &report.reactions[0];
        assert_eq!(r.detection_latency, None);
        assert_eq!(r.reconverge_latency, None);
        assert_eq!(report.num_detected(), 0);
        assert_eq!(report.detection_percentile(0.5), None);
        assert_eq!(report.mean_detection_latency(), None);
    }

    #[test]
    fn windows_are_bounded_by_the_next_fault() {
        let a = [0.1];
        let b = [0.9];
        let c = [0.5];
        let truth: Vec<(usize, &[f64])> = vec![(0, &a), (50, &b), (100, &c)];
        let faults = vec![fault(50), fault(100)];
        // Only reacts after interval 100 — too late for fault #1's window.
        let samples = vec![sample(60, 0.1), sample(110, 0.52), sample(120, 0.5)];
        let report = score_reactions(&faults, &samples, &truth, ReactionConfig::default());
        assert_eq!(report.num_faults(), 2);
        assert_eq!(report.reactions[0].detection_latency, None);
        assert_eq!(report.reactions[1].detection_latency, Some(10));
        assert_eq!(report.reactions[1].reconverge_latency, Some(10));
    }

    #[test]
    fn initial_placement_fault_is_skipped() {
        let a = [0.5];
        let truth: Vec<(usize, &[f64])> = vec![(0, &a)];
        let faults = vec![fault(0)];
        let report = score_reactions(
            &faults,
            &[sample(10, 0.5)],
            &truth,
            ReactionConfig::default(),
        );
        assert_eq!(report.num_faults(), 0);
    }

    #[test]
    fn percentiles_over_multiple_faults() {
        let report = ReactionReport {
            reactions: (0..5)
                .map(|i| FaultReaction {
                    fault: fault(10 * (i + 1)),
                    detection_latency: Some(10 * (i + 1)),
                    reconverge_latency: if i < 2 { Some(20 * (i + 1)) } else { None },
                    mid_fault_error: 1.0,
                })
                .collect(),
        };
        assert_eq!(report.detection_percentile(0.5), Some(30));
        assert_eq!(report.detection_percentile(0.95), Some(50));
        assert_eq!(report.detection_percentile(0.0), Some(10));
        assert_eq!(report.num_reconverged(), 2);
        // p50 over [20, 40]: the half-point rank rounds up to the later one.
        assert_eq!(report.reconverge_percentile(0.5), Some(40));
        assert!((report.total_mid_fault_error() - 5.0).abs() < 1e-12);
        assert_eq!(report.mean_detection_latency(), Some(30.0));
    }
}
