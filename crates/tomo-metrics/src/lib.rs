//! Evaluation metrics used by the paper.
//!
//! * For **Boolean Inference** (Fig. 3): per-interval *detection rate* (the
//!   fraction of congested links correctly identified as congested) and
//!   *false-positive rate* (the fraction of links incorrectly identified as
//!   congested out of all links inferred as congested), averaged over the
//!   intervals of an experiment.
//! * For **Probability Computation** (Fig. 4): the *absolute error* between
//!   the actual congestion probability of a link (or set of links) and the
//!   inferred one — its mean over the potentially congested links, and its
//!   CDF.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod error_stats;
pub mod inference;

pub use cdf::Cdf;
pub use error_stats::{mean_absolute_error, AbsoluteErrorStats};
pub use inference::{detection_and_false_positive, InferenceScore, IntervalScore};
