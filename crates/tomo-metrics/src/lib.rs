//! Evaluation metrics used by the paper.
//!
//! * For **Boolean Inference** (Fig. 3): per-interval *detection rate* (the
//!   fraction of congested links correctly identified as congested) and
//!   *false-positive rate* (the fraction of links incorrectly identified as
//!   congested out of all links inferred as congested), averaged over the
//!   intervals of an experiment.
//! * For **Probability Computation** (Fig. 4): the *absolute error* between
//!   the actual congestion probability of a link (or set of links) and the
//!   inferred one — its mean over the potentially congested links, and its
//!   CDF.
//!
//! Plus the **serving observability** layer the daemon records into on its
//! hot path:
//!
//! * [`histogram`] — lock-free log-bucketed latency histograms
//!   ([`AtomicHistogram`]) with serializable, mergeable snapshots and
//!   p50/p95/p99 extraction ([`HistogramSnapshot`], [`LatencySummary`]);
//! * [`instruments`] — the per-tenant bundle ([`Instruments`]) of latency
//!   histograms and admission counters (sheds, deadline expiries).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod error_stats;
pub mod histogram;
pub mod inference;
pub mod instruments;
pub mod reaction;

pub use cdf::Cdf;
pub use error_stats::{mean_absolute_error, AbsoluteErrorStats};
pub use histogram::{AtomicHistogram, HistogramSnapshot, LatencySummary};
pub use inference::{detection_and_false_positive, InferenceScore, IntervalScore};
pub use instruments::{Instruments, InstrumentsSnapshot};
pub use reaction::{
    score_reactions, EstimateSample, FaultReaction, ReactionConfig, ReactionReport,
};
