//! Property tests for the serving histograms: every recorded sample lands
//! in a bucket whose range contains it, quantile extraction is monotone in
//! `q` and bounded by the bucketing's relative error, and merging is
//! equivalent to recording into one histogram.

use proptest::prelude::*;
use tomo_metrics::histogram::{bucket_bounds, bucket_index, NUM_BUCKETS};
use tomo_metrics::HistogramSnapshot;

/// Strategy: latency-like samples spanning ns to hours, plus edge values.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..16,
        16u64..100_000,
        100_000u64..10_000_000_000,
        Just(0u64),
        Just(u64::MAX),
        any::<u64>(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn samples_land_in_a_containing_bucket(v in sample()) {
        let index = bucket_index(v);
        prop_assert!(index < NUM_BUCKETS);
        let (lo, hi) = bucket_bounds(index);
        prop_assert!(lo <= v, "bucket [{lo}, {hi}) misses {v} from below");
        // The top bucket's bound saturates and also holds u64::MAX itself.
        prop_assert!(v < hi || hi == u64::MAX, "bucket [{lo}, {hi}) misses {v} from above");
    }

    #[test]
    fn quantiles_are_monotone_in_q(values in proptest::collection::vec(sample(), 1..200)) {
        let mut h = HistogramSnapshot::new();
        for &v in &values {
            h.record(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let extracted: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for pair in extracted.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles not monotone: {extracted:?}");
        }
    }

    #[test]
    fn quantiles_bound_the_exact_order_statistic(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let mut h = HistogramSnapshot::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let approx = h.quantile(q);
        // Nearest-rank over bucket upper bounds: never below the exact
        // order statistic, and within the same bucket (≤ 12.5% relative).
        prop_assert!(approx >= exact, "q={q}: approx {approx} < exact {exact}");
        let (lo, hi) = bucket_bounds(bucket_index(exact));
        prop_assert!(approx >= lo && approx <= hi, "q={q}: {approx} outside [{lo}, {hi}]");
    }

    #[test]
    fn merging_matches_recording_into_one(
        left in proptest::collection::vec(sample(), 0..100),
        right in proptest::collection::vec(sample(), 0..100),
    ) {
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        let mut whole = HistogramSnapshot::new();
        for &v in &left {
            a.record(v);
            whole.record(v);
        }
        for &v in &right {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(&a, &whole);
        for q in [0.5, 0.95, 0.99] {
            prop_assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }
}
