//! AS-level logical links.

use serde::{Deserialize, Serialize};

use crate::ids::{AsId, LinkId, NodeId, RouterLinkId};

/// An AS-level logical link (`e_i` in the paper).
///
/// In the monitoring scenario of the paper, a vertex of the AS-level graph is
/// a border router and an edge is either an inter-domain link between border
/// routers of peering ASes or an intra-domain path between two border routers
/// of the same AS. Each AS-level link therefore corresponds to one or more
/// underlying router-level (IP-level) links; AS-level links that share a
/// router-level link become congested together, which is the physical source
/// of link correlations.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Identifier of this link (its index in [`crate::Network::links`]).
    pub id: LinkId,
    /// Tail vertex (traffic flows `from -> to`).
    pub from: NodeId,
    /// Head vertex.
    pub to: NodeId,
    /// The Autonomous System this link belongs to. Links of the same AS form
    /// one correlation set by default (the paper's per-AS grouping, §2).
    pub asn: AsId,
    /// Underlying router-level links traversed by this AS-level link. Used by
    /// the simulator to induce correlations; empty when the router-level view
    /// is unknown.
    pub router_links: Vec<RouterLinkId>,
}

impl Link {
    /// Creates a new link without router-level information.
    pub fn new(id: LinkId, from: NodeId, to: NodeId, asn: AsId) -> Self {
        Self {
            id,
            from,
            to,
            asn,
            router_links: Vec::new(),
        }
    }

    /// Creates a new link with the underlying router-level links it crosses.
    pub fn with_router_links(
        id: LinkId,
        from: NodeId,
        to: NodeId,
        asn: AsId,
        router_links: Vec<RouterLinkId>,
    ) -> Self {
        Self {
            id,
            from,
            to,
            asn,
            router_links,
        }
    }

    /// Returns `true` if the two links share at least one underlying
    /// router-level link (and therefore may be correlated in the simulator).
    pub fn shares_router_link(&self, other: &Link) -> bool {
        self.router_links
            .iter()
            .any(|r| other.router_links.contains(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let l = Link::new(LinkId(0), NodeId(1), NodeId(2), AsId(3));
        assert_eq!(l.id, LinkId(0));
        assert_eq!(l.asn, AsId(3));
        assert!(l.router_links.is_empty());
    }

    #[test]
    fn shared_router_links_detected() {
        let a = Link::with_router_links(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            AsId(0),
            vec![RouterLinkId(5), RouterLinkId(6)],
        );
        let b = Link::with_router_links(
            LinkId(1),
            NodeId(1),
            NodeId(2),
            AsId(0),
            vec![RouterLinkId(6)],
        );
        let c = Link::with_router_links(
            LinkId(2),
            NodeId(2),
            NodeId(3),
            AsId(1),
            vec![RouterLinkId(7)],
        );
        assert!(a.shares_router_link(&b));
        assert!(!a.shares_router_link(&c));
        assert!(!c.shares_router_link(&b));
    }
}
