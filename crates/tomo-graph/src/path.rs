//! End-to-end measurement paths.

use serde::{Deserialize, Serialize};

use crate::ids::{LinkId, NodeId, PathId};

/// An end-to-end measurement path (`p_i` in the paper): an ordered, loop-free
/// sequence of links from a source end-host to a destination end-host.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    /// Identifier of this path (its index in [`crate::Network::paths`]).
    pub id: PathId,
    /// Source end-host.
    pub src: NodeId,
    /// Destination end-host.
    pub dst: NodeId,
    /// The links traversed, in order. The paper's model requires that a link
    /// appears at most once on a path (no loops); [`crate::NetworkBuilder`]
    /// enforces this.
    pub links: Vec<LinkId>,
}

impl Path {
    /// Creates a new path.
    pub fn new(id: PathId, src: NodeId, dst: NodeId, links: Vec<LinkId>) -> Self {
        Self {
            id,
            src,
            dst,
            links,
        }
    }

    /// Number of links traversed (`d` in the paper's path-congestion
    /// threshold `1 - (1-f)^d`).
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if the path traverses no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Returns `true` if the path traverses the given link.
    pub fn traverses(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// Returns `true` if the path traverses at least one of the given links.
    pub fn traverses_any(&self, links: &[LinkId]) -> bool {
        links.iter().any(|l| self.traverses(*l))
    }

    /// Returns `true` if no link appears more than once (the paper's
    /// loop-free requirement).
    pub fn is_loop_free(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.links.len());
        self.links.iter().all(|l| seen.insert(*l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traversal_queries() {
        let p = Path::new(PathId(0), NodeId(0), NodeId(9), vec![LinkId(1), LinkId(4)]);
        assert_eq!(p.len(), 2);
        assert!(p.traverses(LinkId(4)));
        assert!(!p.traverses(LinkId(2)));
        assert!(p.traverses_any(&[LinkId(2), LinkId(1)]));
        assert!(!p.traverses_any(&[LinkId(2), LinkId(3)]));
    }

    #[test]
    fn loop_detection() {
        let ok = Path::new(PathId(0), NodeId(0), NodeId(1), vec![LinkId(0), LinkId(1)]);
        let bad = Path::new(PathId(1), NodeId(0), NodeId(1), vec![LinkId(0), LinkId(0)]);
        assert!(ok.is_loop_free());
        assert!(!bad.is_loop_free());
    }

    #[test]
    fn empty_path() {
        let p = Path::new(PathId(0), NodeId(0), NodeId(0), vec![]);
        assert!(p.is_empty());
        assert!(p.is_loop_free());
    }
}
