//! Strongly-typed identifiers for the entities of the network model.
//!
//! Using newtypes rather than bare `usize` indices prevents an entire class
//! of "passed a path index where a link index was expected" bugs across the
//! simulator, the inference algorithms and the experiment harness.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
        )]
        pub struct $name(pub usize);

        impl $name {
            /// Returns the underlying index.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                Self(v)
            }
        }

        impl From<$name> for usize {
            fn from(v: $name) -> usize {
                v.0
            }
        }
    };
}

define_id!(
    /// Identifier of an (AS-level) logical link, `e_i` in the paper.
    LinkId,
    "e"
);
define_id!(
    /// Identifier of an end-to-end measurement path, `p_i` in the paper.
    PathId,
    "p"
);
define_id!(
    /// Identifier of a network element (end-host or border router).
    NodeId,
    "n"
);
define_id!(
    /// Identifier of an Autonomous System.
    AsId,
    "AS"
);
define_id!(
    /// Identifier of an underlying router-level (IP-level) link. AS-level
    /// links that share a router-level link become congested together; this
    /// is how the simulator induces link correlations (§3.2 of the paper).
    RouterLinkId,
    "r"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(LinkId(3).to_string(), "e3");
        assert_eq!(PathId(0).to_string(), "p0");
        assert_eq!(AsId(7).to_string(), "AS7");
        assert_eq!(NodeId(2).to_string(), "n2");
        assert_eq!(RouterLinkId(9).to_string(), "r9");
    }

    #[test]
    fn conversions_round_trip() {
        let l: LinkId = 5usize.into();
        assert_eq!(l.index(), 5);
        let back: usize = l.into();
        assert_eq!(back, 5);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<LinkId> = [LinkId(2), LinkId(0), LinkId(1)].into_iter().collect();
        let v: Vec<usize> = set.into_iter().map(LinkId::index).collect();
        assert_eq!(v, vec![0, 1, 2]);
    }
}
