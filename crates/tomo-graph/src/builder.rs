//! Validated construction of [`Network`] values.

use std::collections::{HashMap, HashSet};

use crate::correlation::{correlation_sets_by_as, CorrelationSet};
use crate::error::GraphError;
use crate::ids::{AsId, LinkId, NodeId, PathId, RouterLinkId};
use crate::link::Link;
use crate::network::Network;
use crate::path::Path;

/// Builder for [`Network`] values.
///
/// The builder enforces the model invariants of §2 of the paper:
/// * every path references existing links and is loop-free and non-empty;
/// * every link belongs to exactly one correlation set (per-AS by default,
///   or explicitly supplied via [`NetworkBuilder::correlation_sets`]).
#[derive(Clone, Debug, Default)]
pub struct NetworkBuilder {
    links: Vec<Link>,
    paths: Vec<(NodeId, NodeId, Vec<LinkId>)>,
    explicit_sets: Option<Vec<Vec<LinkId>>>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a link and returns its id.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, asn: AsId) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(Link::new(id, from, to, asn));
        id
    }

    /// Adds a link annotated with the underlying router-level links it
    /// traverses, and returns its id.
    pub fn add_link_with_routers(
        &mut self,
        from: NodeId,
        to: NodeId,
        asn: AsId,
        router_links: Vec<RouterLinkId>,
    ) -> LinkId {
        let id = LinkId(self.links.len());
        self.links
            .push(Link::with_router_links(id, from, to, asn, router_links));
        id
    }

    /// Adds a measurement path and returns its id. Validation happens in
    /// [`NetworkBuilder::build`].
    pub fn add_path(&mut self, src: NodeId, dst: NodeId, links: Vec<LinkId>) -> PathId {
        let id = PathId(self.paths.len());
        self.paths.push((src, dst, links));
        id
    }

    /// Overrides the default per-AS correlation sets with an explicit
    /// partition of the links. Each inner vector is one correlation set.
    pub fn correlation_sets(&mut self, sets: Vec<Vec<LinkId>>) -> &mut Self {
        self.explicit_sets = Some(sets);
        self
    }

    /// Number of links added so far.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of paths added so far.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// Validates the accumulated model and builds the [`Network`].
    pub fn build(self) -> Result<Network, GraphError> {
        if self.links.is_empty() || self.paths.is_empty() {
            return Err(GraphError::EmptyNetwork);
        }
        let num_links = self.links.len();

        // Validate paths.
        let mut paths = Vec::with_capacity(self.paths.len());
        for (i, (src, dst, links)) in self.paths.into_iter().enumerate() {
            let id = PathId(i);
            if links.is_empty() {
                return Err(GraphError::EmptyPath { path: id });
            }
            let mut seen = HashSet::with_capacity(links.len());
            for &l in &links {
                if l.index() >= num_links {
                    return Err(GraphError::UnknownLink { path: id, link: l });
                }
                if !seen.insert(l) {
                    return Err(GraphError::PathHasLoop { path: id, link: l });
                }
            }
            paths.push(Path::new(id, src, dst, links));
        }

        // Build correlation sets.
        let correlation_sets = match self.explicit_sets {
            None => {
                let link_as: Vec<AsId> = self.links.iter().map(|l| l.asn).collect();
                correlation_sets_by_as(&link_as)
            }
            Some(sets) => {
                let mut assignment: HashMap<LinkId, usize> = HashMap::new();
                let mut built = Vec::with_capacity(sets.len());
                for (id, members) in sets.into_iter().enumerate() {
                    for &l in &members {
                        if l.index() >= num_links {
                            return Err(GraphError::CorrelationSetUnknownLink { link: l });
                        }
                        if assignment.insert(l, id).is_some() {
                            return Err(GraphError::LinkInMultipleCorrelationSets { link: l });
                        }
                    }
                    built.push(CorrelationSet::new(id, members));
                }
                for l in 0..num_links {
                    if !assignment.contains_key(&LinkId(l)) {
                        return Err(GraphError::LinkWithoutCorrelationSet { link: LinkId(l) });
                    }
                }
                built
            }
        };

        Ok(Network::from_parts(self.links, paths, correlation_sets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_link_builder() -> (NetworkBuilder, LinkId, LinkId) {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_link(NodeId(0), NodeId(1), AsId(0));
        let e1 = b.add_link(NodeId(1), NodeId(2), AsId(1));
        (b, e0, e1)
    }

    #[test]
    fn builds_valid_network() {
        let (mut b, e0, e1) = two_link_builder();
        b.add_path(NodeId(0), NodeId(2), vec![e0, e1]);
        let net = b.build().expect("valid network");
        assert_eq!(net.num_links(), 2);
        assert_eq!(net.num_paths(), 1);
        assert_eq!(net.correlation_sets().len(), 2);
    }

    #[test]
    fn rejects_empty_network() {
        assert_eq!(
            NetworkBuilder::new().build().unwrap_err(),
            GraphError::EmptyNetwork
        );
        let (b, _, _) = two_link_builder();
        assert_eq!(b.build().unwrap_err(), GraphError::EmptyNetwork);
    }

    #[test]
    fn rejects_unknown_link_in_path() {
        let (mut b, e0, _) = two_link_builder();
        b.add_path(NodeId(0), NodeId(2), vec![e0, LinkId(99)]);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::UnknownLink {
                path: PathId(0),
                link: LinkId(99)
            }
        );
    }

    #[test]
    fn rejects_looping_path() {
        let (mut b, e0, _) = two_link_builder();
        b.add_path(NodeId(0), NodeId(2), vec![e0, e0]);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::PathHasLoop {
                path: PathId(0),
                link: e0
            }
        );
    }

    #[test]
    fn rejects_empty_path() {
        let (mut b, _, _) = two_link_builder();
        b.add_path(NodeId(0), NodeId(2), vec![]);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::EmptyPath { path: PathId(0) }
        );
    }

    #[test]
    fn explicit_correlation_sets_are_validated() {
        // Unknown link.
        let (mut b, e0, e1) = two_link_builder();
        b.add_path(NodeId(0), NodeId(2), vec![e0, e1]);
        b.correlation_sets(vec![vec![e0, LinkId(42)], vec![e1]]);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::CorrelationSetUnknownLink { link: LinkId(42) }
        );

        // Duplicate assignment.
        let (mut b, e0, e1) = two_link_builder();
        b.add_path(NodeId(0), NodeId(2), vec![e0, e1]);
        b.correlation_sets(vec![vec![e0, e1], vec![e1]]);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::LinkInMultipleCorrelationSets { link: e1 }
        );

        // Missing link.
        let (mut b, e0, e1) = two_link_builder();
        b.add_path(NodeId(0), NodeId(2), vec![e0, e1]);
        b.correlation_sets(vec![vec![e0]]);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::LinkWithoutCorrelationSet { link: e1 }
        );
    }

    #[test]
    fn default_sets_group_by_as() {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_link(NodeId(0), NodeId(1), AsId(5));
        let e1 = b.add_link(NodeId(1), NodeId(2), AsId(5));
        let e2 = b.add_link(NodeId(2), NodeId(3), AsId(9));
        b.add_path(NodeId(0), NodeId(3), vec![e0, e1, e2]);
        let net = b.build().unwrap();
        assert_eq!(net.correlation_sets().len(), 2);
        assert_eq!(net.correlation_set_of(e0), net.correlation_set_of(e1));
        assert_ne!(net.correlation_set_of(e0), net.correlation_set_of(e2));
    }
}
