//! Network model for Boolean network tomography.
//!
//! This crate implements the network model of §2 of "Shifting Network
//! Tomography Toward A Practical Goal" (CoNEXT 2011):
//!
//! * the network is a directed graph whose edges are *logical links*
//!   ([`Link`]), each owned by an Autonomous System;
//! * a *path* ([`Path`]) is a loop-free sequence of links between end-hosts;
//! * links are grouped into *correlation sets* ([`CorrelationSet`], one per
//!   AS by default — Assumption 5 of the paper): links in the same set may be
//!   correlated, links in different sets are independent;
//! * a *correlation subset* ([`CorrelationSubset`]) is a non-empty subset of
//!   a correlation set; these are the unknowns of the Congestion Probability
//!   Computation problem;
//! * the *path coverage* function `Paths(E)` and *link coverage* function
//!   `Links(P)` (§5.2) are provided by [`Network`];
//! * the *Identifiability* (Condition 1) and *Identifiability++*
//!   (Condition 2) checks live in [`conditions`].
//!
//! The toy topology of Fig. 1 of the paper (4 links, 3 paths, two correlation
//! cases) is provided by [`toy`] and reused as a fixture throughout the
//! workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod conditions;
pub mod correlation;
pub mod error;
pub mod ids;
pub mod link;
pub mod network;
pub mod path;
pub mod toy;

pub use builder::NetworkBuilder;
pub use conditions::{check_identifiability, check_identifiability_pp, IdentifiabilityReport};
pub use correlation::{CorrelationSet, CorrelationSubset};
pub use error::GraphError;
pub use ids::{AsId, LinkId, NodeId, PathId, RouterLinkId};
pub use link::Link;
pub use network::Network;
pub use path::Path;
