//! Error types for network construction and validation.

use std::fmt;

use crate::ids::{LinkId, PathId};

/// Errors raised while building or validating a [`crate::Network`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A path references a link that does not exist.
    UnknownLink {
        /// The offending path.
        path: PathId,
        /// The link that is not part of the network.
        link: LinkId,
    },
    /// A path traverses the same link more than once (the model forbids
    /// loops).
    PathHasLoop {
        /// The offending path.
        path: PathId,
        /// The repeated link.
        link: LinkId,
    },
    /// A path traverses no links.
    EmptyPath {
        /// The offending path.
        path: PathId,
    },
    /// A correlation-set assignment references a link that does not exist.
    CorrelationSetUnknownLink {
        /// The link that is not part of the network.
        link: LinkId,
    },
    /// A link is assigned to more than one correlation set.
    LinkInMultipleCorrelationSets {
        /// The offending link.
        link: LinkId,
    },
    /// A link is not covered by any correlation set (every link must belong
    /// to exactly one).
    LinkWithoutCorrelationSet {
        /// The offending link.
        link: LinkId,
    },
    /// The network has no links or no paths.
    EmptyNetwork,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownLink { path, link } => {
                write!(f, "path {path} references unknown link {link}")
            }
            GraphError::PathHasLoop { path, link } => {
                write!(f, "path {path} traverses link {link} more than once")
            }
            GraphError::EmptyPath { path } => write!(f, "path {path} traverses no links"),
            GraphError::CorrelationSetUnknownLink { link } => {
                write!(f, "correlation set references unknown link {link}")
            }
            GraphError::LinkInMultipleCorrelationSets { link } => {
                write!(
                    f,
                    "link {link} is assigned to more than one correlation set"
                )
            }
            GraphError::LinkWithoutCorrelationSet { link } => {
                write!(f, "link {link} is not assigned to any correlation set")
            }
            GraphError::EmptyNetwork => write!(f, "the network has no links or no paths"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ids() {
        let e = GraphError::UnknownLink {
            path: PathId(2),
            link: LinkId(7),
        };
        let msg = e.to_string();
        assert!(msg.contains("p2"));
        assert!(msg.contains("e7"));

        assert!(GraphError::EmptyNetwork.to_string().contains("no links"));
    }
}
