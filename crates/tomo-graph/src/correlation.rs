//! Correlation sets and correlation subsets (Assumption 5 of the paper).
//!
//! Links are grouped into *correlation sets*: links from the same set may be
//! correlated, links from different sets are always independent. In the
//! monitoring scenario of the paper one correlation set is defined per
//! Autonomous System, because the source ISP has no way of knowing which of a
//! peer's links are actually correlated.
//!
//! A *correlation subset* is a non-empty subset of a correlation set; the
//! unknowns of the Congestion Probability Computation problem are the
//! probabilities `P(∩_{e∈E} X_e = 0)` for correlation subsets `E`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

use crate::ids::LinkId;

/// A correlation set: a maximal group of links that may be mutually
/// correlated (by default, all links belonging to one AS).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrelationSet {
    /// Index of this set within [`crate::Network::correlation_sets`].
    pub id: usize,
    /// The member links, sorted and de-duplicated.
    pub links: Vec<LinkId>,
}

impl CorrelationSet {
    /// Creates a correlation set, sorting and de-duplicating the members.
    pub fn new(id: usize, mut links: Vec<LinkId>) -> Self {
        links.sort_unstable();
        links.dedup();
        Self { id, links }
    }

    /// Number of member links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Returns `true` if the given link belongs to this set.
    pub fn contains(&self, link: LinkId) -> bool {
        self.links.binary_search(&link).is_ok()
    }

    /// Enumerates every non-empty subset of this correlation set with at most
    /// `max_size` links, in order of increasing cardinality.
    ///
    /// The number of subsets grows as `C(n,1) + ... + C(n,max_size)`; callers
    /// (notably the Correlation-complete algorithm) bound `max_size` to keep
    /// the unknown count tractable, exactly as §4 of the paper prescribes
    /// ("we can configure our algorithm to compute only the congestion
    /// probability of each set of one, two, or three links").
    pub fn subsets_up_to(&self, max_size: usize) -> Vec<CorrelationSubset> {
        let n = self.links.len();
        let cap = max_size.min(n);
        let mut out = Vec::new();
        for size in 1..=cap {
            // Standard lexicographic k-combination enumeration over indices.
            let mut indices: Vec<usize> = (0..size).collect();
            'combos: loop {
                let links: BTreeSet<LinkId> = indices.iter().map(|&i| self.links[i]).collect();
                out.push(CorrelationSubset {
                    set_id: self.id,
                    links,
                });
                // Advance to the next combination; stop when exhausted.
                let mut i = size;
                loop {
                    if i == 0 {
                        break 'combos;
                    }
                    i -= 1;
                    if indices[i] < i + n - size {
                        indices[i] += 1;
                        for j in (i + 1)..size {
                            indices[j] = indices[j - 1] + 1;
                        }
                        break;
                    }
                }
            }
        }
        out
    }
}

/// A non-empty subset of a correlation set.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CorrelationSubset {
    /// The correlation set this subset belongs to.
    pub set_id: usize,
    /// The member links.
    pub links: BTreeSet<LinkId>,
}

impl CorrelationSubset {
    /// Creates a subset from an iterator of links.
    pub fn new(set_id: usize, links: impl IntoIterator<Item = LinkId>) -> Self {
        Self {
            set_id,
            links: links.into_iter().collect(),
        }
    }

    /// Creates the singleton subset `{link}`.
    pub fn singleton(set_id: usize, link: LinkId) -> Self {
        Self::new(set_id, [link])
    }

    /// Number of links in the subset.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if the subset is empty (only possible for a complement;
    /// the subsets enumerated as unknowns are always non-empty).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Returns `true` if the subset contains the given link.
    pub fn contains(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// The complement `Ē = C \ E` of this subset within its correlation set
    /// (§5.2 of the paper). May be empty when the subset is the whole set.
    pub fn complement(&self, set: &CorrelationSet) -> CorrelationSubset {
        debug_assert_eq!(set.id, self.set_id, "complement within a different set");
        CorrelationSubset {
            set_id: self.set_id,
            links: set
                .links
                .iter()
                .copied()
                .filter(|l| !self.links.contains(l))
                .collect(),
        }
    }

    /// Links as a sorted `Vec`.
    pub fn links_vec(&self) -> Vec<LinkId> {
        self.links.iter().copied().collect()
    }
}

impl fmt::Display for CorrelationSubset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

/// Groups links into per-AS correlation sets (the paper's default grouping).
/// `link_as[i]` is the AS of link `i`; the returned sets are indexed densely
/// in order of first appearance of each AS.
pub fn correlation_sets_by_as(link_as: &[crate::ids::AsId]) -> Vec<CorrelationSet> {
    let mut order: Vec<crate::ids::AsId> = Vec::new();
    let mut members: std::collections::HashMap<crate::ids::AsId, Vec<LinkId>> =
        std::collections::HashMap::new();
    for (i, &asn) in link_as.iter().enumerate() {
        if !members.contains_key(&asn) {
            order.push(asn);
        }
        members.entry(asn).or_default().push(LinkId(i));
    }
    order
        .into_iter()
        .enumerate()
        .map(|(id, asn)| CorrelationSet::new(id, members.remove(&asn).unwrap_or_default()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AsId;

    #[test]
    fn set_membership() {
        let set = CorrelationSet::new(0, vec![LinkId(3), LinkId(1), LinkId(3)]);
        assert_eq!(set.len(), 2);
        assert!(set.contains(LinkId(1)));
        assert!(!set.contains(LinkId(2)));
    }

    #[test]
    fn subsets_of_pair() {
        let set = CorrelationSet::new(0, vec![LinkId(2), LinkId(3)]);
        let subs = set.subsets_up_to(2);
        let as_strings: Vec<String> = subs.iter().map(|s| s.to_string()).collect();
        assert_eq!(as_strings, vec!["{e2}", "{e3}", "{e2,e3}"]);
    }

    #[test]
    fn subsets_of_triple_capped_at_two() {
        let set = CorrelationSet::new(0, vec![LinkId(0), LinkId(1), LinkId(2)]);
        let subs = set.subsets_up_to(2);
        // 3 singletons + 3 pairs.
        assert_eq!(subs.len(), 6);
        assert!(subs.iter().all(|s| s.len() <= 2));
        // All distinct.
        let unique: std::collections::HashSet<_> = subs.iter().cloned().collect();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn subsets_full_enumeration_counts() {
        let set = CorrelationSet::new(0, (0..4).map(LinkId).collect());
        let subs = set.subsets_up_to(4);
        assert_eq!(subs.len(), 15); // 2^4 - 1
        let singles = subs.iter().filter(|s| s.len() == 1).count();
        let pairs = subs.iter().filter(|s| s.len() == 2).count();
        let triples = subs.iter().filter(|s| s.len() == 3).count();
        let quads = subs.iter().filter(|s| s.len() == 4).count();
        assert_eq!((singles, pairs, triples, quads), (4, 6, 4, 1));
    }

    #[test]
    fn complement_follows_paper_examples() {
        // Fig. 1, Case 1: C = {e2, e3}; complement of {e2} is {e3}, and the
        // complement of the whole set is empty.
        let set = CorrelationSet::new(1, vec![LinkId(1), LinkId(2)]);
        let e2 = CorrelationSubset::singleton(1, LinkId(1));
        let comp = e2.complement(&set);
        assert_eq!(comp.links_vec(), vec![LinkId(2)]);
        let whole = CorrelationSubset::new(1, [LinkId(1), LinkId(2)]);
        assert!(whole.complement(&set).is_empty());
    }

    #[test]
    fn complement_is_involutive() {
        let set = CorrelationSet::new(0, (0..5).map(LinkId).collect());
        let sub = CorrelationSubset::new(0, [LinkId(1), LinkId(4)]);
        let comp = sub.complement(&set);
        assert_eq!(comp.complement(&set), sub);
    }

    #[test]
    fn per_as_grouping() {
        let link_as = vec![AsId(10), AsId(20), AsId(10), AsId(30)];
        let sets = correlation_sets_by_as(&link_as);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].links, vec![LinkId(0), LinkId(2)]);
        assert_eq!(sets[1].links, vec![LinkId(1)]);
        assert_eq!(sets[2].links, vec![LinkId(3)]);
        // Dense, ordered ids.
        assert_eq!(sets.iter().map(|s| s.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
