//! Identifiability conditions of the paper.
//!
//! * **Condition 1 (Identifiability)**: no two links are traversed by exactly
//!   the same set of paths. Required by the Boolean-Inference algorithms.
//! * **Condition 2 (Identifiability++)**: no two correlation subsets are
//!   traversed by exactly the same set of paths. Required for Congestion
//!   Probability Computation to be well-posed under the Correlation-Sets
//!   assumption; it holds for the dense Brite topologies of the paper's
//!   evaluation but fails for the sparse traceroute-derived ones.
//!
//! Both are *conditions* (not assumptions) in the paper's terminology: they
//! can be checked given `E*` and `P*`, which is exactly what this module does.

use std::collections::{BTreeSet, HashMap};

use crate::correlation::CorrelationSubset;
use crate::ids::{LinkId, PathId};
use crate::network::Network;

/// The outcome of an identifiability check.
#[derive(Clone, Debug)]
pub struct IdentifiabilityReport {
    /// Whether the condition holds (no violations were found).
    pub holds: bool,
    /// Pairs of conflicting entities, described by their path signature. Each
    /// entry lists the (at least two) entities sharing one path signature.
    pub conflict_groups: Vec<ConflictGroup>,
    /// Number of entities examined.
    pub entities_checked: usize,
}

/// A group of entities (links or correlation subsets) that are traversed by
/// exactly the same set of paths and are therefore mutually indistinguishable
/// from end-to-end observations.
#[derive(Clone, Debug)]
pub struct ConflictGroup {
    /// The shared path signature.
    pub paths: BTreeSet<PathId>,
    /// Human-readable descriptions of the conflicting entities
    /// (e.g. `"e3"` or `"{e2,e3}"`).
    pub members: Vec<String>,
}

impl IdentifiabilityReport {
    /// Total number of entities involved in at least one conflict.
    pub fn conflicting_entities(&self) -> usize {
        self.conflict_groups.iter().map(|g| g.members.len()).sum()
    }
}

/// Checks **Condition 1 (Identifiability)**: any two links are not traversed
/// by the same paths.
///
/// Links traversed by *no* path are ignored: they are unobservable rather
/// than unidentifiable, and are reported separately by
/// [`Network::unobserved_links`].
pub fn check_identifiability(network: &Network) -> IdentifiabilityReport {
    let mut by_signature: HashMap<Vec<PathId>, Vec<LinkId>> = HashMap::new();
    let mut checked = 0usize;
    for link in network.link_ids() {
        let sig = network.paths_through_link(link).to_vec();
        if sig.is_empty() {
            continue;
        }
        checked += 1;
        by_signature.entry(sig).or_default().push(link);
    }
    let conflict_groups: Vec<ConflictGroup> = by_signature
        .into_iter()
        .filter(|(_, links)| links.len() > 1)
        .map(|(sig, links)| ConflictGroup {
            paths: sig.into_iter().collect(),
            members: links.iter().map(|l| l.to_string()).collect(),
        })
        .collect();
    IdentifiabilityReport {
        holds: conflict_groups.is_empty(),
        conflict_groups,
        entities_checked: checked,
    }
}

/// Checks **Condition 2 (Identifiability++)**: any two correlation subsets
/// are not traversed by the same paths.
///
/// Subsets are enumerated up to `max_subset_size` links (the same cap used by
/// the Correlation-complete algorithm). Subsets that no path traverses are
/// skipped. Two subsets conflict when `Paths(E_a) == Paths(E_b)`; the paper's
/// Case 2 example (`{e1,e4}` vs `{e2,e3}`) is exactly such a pair.
pub fn check_identifiability_pp(
    network: &Network,
    max_subset_size: usize,
) -> IdentifiabilityReport {
    let subsets = network.correlation_subsets(max_subset_size);
    let mut by_signature: HashMap<Vec<PathId>, Vec<CorrelationSubset>> = HashMap::new();
    let mut checked = 0usize;
    for subset in subsets {
        let sig: Vec<PathId> = network.paths_covering_subset(&subset).into_iter().collect();
        if sig.is_empty() {
            continue;
        }
        checked += 1;
        by_signature.entry(sig).or_default().push(subset);
    }
    let conflict_groups: Vec<ConflictGroup> = by_signature
        .into_iter()
        .filter(|(_, subs)| subs.len() > 1)
        .map(|(sig, subs)| ConflictGroup {
            paths: sig.into_iter().collect(),
            members: subs.iter().map(|s| s.to_string()).collect(),
        })
        .collect();
    IdentifiabilityReport {
        holds: conflict_groups.is_empty(),
        conflict_groups,
        entities_checked: checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::ids::{AsId, NodeId};
    use crate::toy::{fig1_case1, fig1_case2};

    #[test]
    fn fig1_satisfies_condition1() {
        let report = check_identifiability(&fig1_case1());
        assert!(report.holds);
        assert_eq!(report.entities_checked, 4);
    }

    #[test]
    fn condition1_fails_for_serial_links() {
        // Two links always traversed together by the only path.
        let mut b = NetworkBuilder::new();
        let e0 = b.add_link(NodeId(0), NodeId(1), AsId(0));
        let e1 = b.add_link(NodeId(1), NodeId(2), AsId(1));
        b.add_path(NodeId(0), NodeId(2), vec![e0, e1]);
        let net = b.build().unwrap();
        let report = check_identifiability(&net);
        assert!(!report.holds);
        assert_eq!(report.conflict_groups.len(), 1);
        assert_eq!(report.conflict_groups[0].members.len(), 2);
    }

    #[test]
    fn fig1_case1_satisfies_identifiability_pp() {
        let report = check_identifiability_pp(&fig1_case1(), 4);
        assert!(report.holds, "conflicts: {:?}", report.conflict_groups);
    }

    #[test]
    fn fig1_case2_violates_identifiability_pp() {
        use crate::toy::{E1, E2, E3, E4};
        let report = check_identifiability_pp(&fig1_case2(), 4);
        assert!(!report.holds);
        // The paper's example: {e1,e4} and {e2,e3} share {p1,p2,p3}.
        let group = report
            .conflict_groups
            .iter()
            .find(|g| g.members.len() >= 2 && g.paths.len() == 3)
            .expect("the {e1,e4}/{e2,e3} conflict must be reported");
        let pair_a = CorrelationSubset::new(0, [E1, E4]).to_string();
        let pair_b = CorrelationSubset::new(1, [E2, E3]).to_string();
        assert!(
            group.members.contains(&pair_a),
            "members: {:?}",
            group.members
        );
        assert!(
            group.members.contains(&pair_b),
            "members: {:?}",
            group.members
        );
    }

    #[test]
    fn subset_size_cap_limits_the_check() {
        // With only singleton subsets, Case 2 has no conflicts (each single
        // link has a distinct path signature).
        let report = check_identifiability_pp(&fig1_case2(), 1);
        assert!(report.holds);
    }
}
