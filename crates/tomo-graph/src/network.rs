//! The [`Network`] type: links, paths, correlation sets, and the coverage
//! functions `Paths(E)` / `Links(P)` of §5.2 of the paper.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use crate::correlation::{CorrelationSet, CorrelationSubset};
use crate::ids::{LinkId, PathId};
use crate::link::Link;
use crate::path::Path;

/// A monitored network: the set of all links `E*`, the set of all measurement
/// paths `P*`, and the correlation-set partition `C*` of the links.
///
/// Construct with [`crate::NetworkBuilder`], which validates the model
/// invariants (paths are loop-free and reference existing links, every link
/// belongs to exactly one correlation set).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Network {
    links: Vec<Link>,
    paths: Vec<Path>,
    correlation_sets: Vec<CorrelationSet>,
    /// `link_paths[l]` = sorted list of paths traversing link `l`.
    link_paths: Vec<Vec<PathId>>,
    /// `link_set[l]` = index of the correlation set containing link `l`.
    link_set: Vec<usize>,
}

impl Network {
    /// Creates a network from validated parts. Callers should prefer
    /// [`crate::NetworkBuilder`]; this constructor assumes the invariants
    /// already hold and only builds the indices.
    pub(crate) fn from_parts(
        links: Vec<Link>,
        paths: Vec<Path>,
        correlation_sets: Vec<CorrelationSet>,
    ) -> Self {
        let mut link_paths: Vec<Vec<PathId>> = vec![Vec::new(); links.len()];
        for path in &paths {
            for &l in &path.links {
                link_paths[l.index()].push(path.id);
            }
        }
        for lp in &mut link_paths {
            lp.sort_unstable();
            lp.dedup();
        }
        let mut link_set = vec![usize::MAX; links.len()];
        for set in &correlation_sets {
            for &l in &set.links {
                link_set[l.index()] = set.id;
            }
        }
        Self {
            links,
            paths,
            correlation_sets,
            link_paths,
            link_set,
        }
    }

    /// Number of links, `|E*|`.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of paths, `|P*|`.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All paths.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// The correlation sets `C*`.
    pub fn correlation_sets(&self) -> &[CorrelationSet] {
        &self.correlation_sets
    }

    /// The link with the given id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The path with the given id.
    pub fn path(&self, id: PathId) -> &Path {
        &self.paths[id.index()]
    }

    /// Iterator over all link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(LinkId)
    }

    /// Iterator over all path ids.
    pub fn path_ids(&self) -> impl Iterator<Item = PathId> + '_ {
        (0..self.paths.len()).map(PathId)
    }

    /// The index of the correlation set containing `link`.
    pub fn correlation_set_of(&self, link: LinkId) -> usize {
        self.link_set[link.index()]
    }

    /// The correlation set containing `link`.
    pub fn correlation_set(&self, link: LinkId) -> &CorrelationSet {
        &self.correlation_sets[self.correlation_set_of(link)]
    }

    /// Paths traversing the given link (sorted).
    pub fn paths_through_link(&self, link: LinkId) -> &[PathId] {
        &self.link_paths[link.index()]
    }

    /// The path-coverage function `Paths(E)` (§5.2): the set of paths that
    /// traverse **at least one** of the links in `E`.
    pub fn paths_covering<'a>(
        &self,
        links: impl IntoIterator<Item = &'a LinkId>,
    ) -> BTreeSet<PathId> {
        let mut out = BTreeSet::new();
        for &l in links {
            out.extend(self.paths_through_link(l).iter().copied());
        }
        out
    }

    /// `Paths(E)` for a correlation subset.
    pub fn paths_covering_subset(&self, subset: &CorrelationSubset) -> BTreeSet<PathId> {
        self.paths_covering(subset.links.iter())
    }

    /// The link-coverage function `Links(P)` (§5.2): the set of links
    /// traversed by **at least one** of the paths in `P`.
    pub fn links_covered<'a>(
        &self,
        paths: impl IntoIterator<Item = &'a PathId>,
    ) -> BTreeSet<LinkId> {
        let mut out = BTreeSet::new();
        for &p in paths {
            out.extend(self.path(p).links.iter().copied());
        }
        out
    }

    /// The routing matrix: one row per path, one column per link, entry 1.0
    /// when the path traverses the link. This is the "system of equations"
    /// view used by classical Boolean tomography.
    pub fn routing_matrix(&self) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; self.num_links()]; self.num_paths()];
        for path in &self.paths {
            for &l in &path.links {
                m[path.id.index()][l.index()] = 1.0;
            }
        }
        m
    }

    /// Average number of links per path (a density indicator used by the
    /// experiment reports).
    pub fn mean_path_length(&self) -> f64 {
        if self.paths.is_empty() {
            return 0.0;
        }
        self.paths.iter().map(|p| p.len() as f64).sum::<f64>() / self.paths.len() as f64
    }

    /// Average number of paths crossing a link (another density indicator;
    /// sparse traceroute-derived topologies have a much lower value than
    /// dense synthetic ones, which is the root cause of the inference
    /// failures shown in §3.2 of the paper).
    pub fn mean_paths_per_link(&self) -> f64 {
        if self.links.is_empty() {
            return 0.0;
        }
        self.link_paths.iter().map(|p| p.len() as f64).sum::<f64>() / self.links.len() as f64
    }

    /// Links that are not traversed by any path (they can never be observed).
    pub fn unobserved_links(&self) -> Vec<LinkId> {
        self.link_ids()
            .filter(|l| self.paths_through_link(*l).is_empty())
            .collect()
    }

    /// Enumerates the correlation subsets of every correlation set, capped at
    /// `max_subset_size` links per subset, restricted to links that are
    /// traversed by at least one path (unobservable links can never be
    /// "potentially congested" in the sense of §5.2).
    pub fn correlation_subsets(&self, max_subset_size: usize) -> Vec<CorrelationSubset> {
        let mut out = Vec::new();
        for set in &self.correlation_sets {
            let observed: Vec<LinkId> = set
                .links
                .iter()
                .copied()
                .filter(|l| !self.paths_through_link(*l).is_empty())
                .collect();
            let observed_set = CorrelationSet::new(set.id, observed);
            out.extend(observed_set.subsets_up_to(max_subset_size));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{fig1_case1, fig1_case2};

    #[test]
    fn fig1_coverage_functions_match_paper() {
        let net = fig1_case1();
        // Paths({e1, e2}) = {p1, p2} ; Paths({e1, e3}) = {p1, p2, p3}
        let p12 = net.paths_covering(&[LinkId(0), LinkId(1)]);
        assert_eq!(
            p12.into_iter().collect::<Vec<_>>(),
            vec![PathId(0), PathId(1)]
        );
        let p123 = net.paths_covering(&[LinkId(0), LinkId(2)]);
        assert_eq!(
            p123.into_iter().collect::<Vec<_>>(),
            vec![PathId(0), PathId(1), PathId(2)]
        );
        // Links({p1}) = {e1, e2} ; Links({p1, p2}) = {e1, e2, e3}
        let l1 = net.links_covered(&[PathId(0)]);
        assert_eq!(
            l1.into_iter().collect::<Vec<_>>(),
            vec![LinkId(0), LinkId(1)]
        );
        let l12 = net.links_covered(&[PathId(0), PathId(1)]);
        assert_eq!(
            l12.into_iter().collect::<Vec<_>>(),
            vec![LinkId(0), LinkId(1), LinkId(2)]
        );
    }

    #[test]
    fn fig1_correlation_sets() {
        let net = fig1_case1();
        assert_eq!(net.correlation_sets().len(), 3);
        assert_eq!(
            net.correlation_set_of(LinkId(1)),
            net.correlation_set_of(LinkId(2))
        );
        assert_ne!(
            net.correlation_set_of(LinkId(0)),
            net.correlation_set_of(LinkId(3))
        );

        let net2 = fig1_case2();
        assert_eq!(net2.correlation_sets().len(), 2);
        assert_eq!(
            net2.correlation_set_of(LinkId(0)),
            net2.correlation_set_of(LinkId(3))
        );
    }

    #[test]
    fn routing_matrix_shape_and_entries() {
        let net = fig1_case1();
        let m = net.routing_matrix();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].len(), 4);
        // p1 = {e1, e2}
        assert_eq!(m[0], vec![1.0, 1.0, 0.0, 0.0]);
        // p3 = {e4, e3}
        assert_eq!(m[2], vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn density_statistics() {
        let net = fig1_case1();
        assert!((net.mean_path_length() - 2.0).abs() < 1e-12);
        // e1 carries 2 paths, e2 1, e3 2, e4 1 -> mean 1.5
        assert!((net.mean_paths_per_link() - 1.5).abs() < 1e-12);
        assert!(net.unobserved_links().is_empty());
    }

    #[test]
    fn correlation_subsets_enumeration_case1() {
        use crate::toy::{E1, E2, E3, E4};
        let net = fig1_case1();
        let subs = net.correlation_subsets(4);
        // {e1}, {e2}, {e3}, {e4}, {e2,e3} — exactly the paper's list.
        assert_eq!(subs.len(), 5);
        let link_sets: BTreeSet<Vec<LinkId>> = subs.iter().map(|s| s.links_vec()).collect();
        assert!(link_sets.contains(&vec![E2, E3]));
        assert!(!link_sets.contains(&vec![E1, E4]));
        // Every subset is non-empty and confined to a single correlation set.
        for s in &subs {
            assert!(!s.is_empty());
            let set = &net.correlation_sets()[s.set_id];
            assert!(s.links.iter().all(|l| set.contains(*l)));
        }
    }

    #[test]
    fn correlation_subsets_enumeration_case2() {
        use crate::toy::{E1, E4};
        let net = fig1_case2();
        let subs = net.correlation_subsets(4);
        // {e1}, {e2}, {e3}, {e4}, {e2,e3}, {e1,e4}
        assert_eq!(subs.len(), 6);
        let link_sets: BTreeSet<Vec<LinkId>> = subs.iter().map(|s| s.links_vec()).collect();
        assert!(link_sets.contains(&vec![E1, E4]));
    }
}
