//! The toy topology of Fig. 1 of the paper, used as a worked example and as a
//! test fixture across the workspace.
//!
//! Links `E* = {e1, e2, e3, e4}` (zero-indexed here as `e0..e3`), paths
//! `P* = {p1, p2, p3}` with
//!
//! * `p1 = {e1, e2}`
//! * `p2 = {e1, e3}`
//! * `p3 = {e4, e3}`
//!
//! Two correlation cases are considered throughout the paper:
//!
//! * **Case 1**: `C* = {{e1}, {e2, e3}, {e4}}` — Identifiability++ holds.
//! * **Case 2**: `C* = {{e1, e4}, {e2, e3}}` — Identifiability++ fails,
//!   because the subsets `{e1, e4}` and `{e2, e3}` are traversed by exactly
//!   the same paths `{p1, p2, p3}`.

use crate::builder::NetworkBuilder;
use crate::ids::{AsId, LinkId, NodeId};
use crate::network::Network;

/// Paper link `e1` (zero-indexed id 0).
pub const E1: LinkId = LinkId(0);
/// Paper link `e2` (zero-indexed id 1).
pub const E2: LinkId = LinkId(1);
/// Paper link `e3` (zero-indexed id 2).
pub const E3: LinkId = LinkId(2);
/// Paper link `e4` (zero-indexed id 3).
pub const E4: LinkId = LinkId(3);

fn fig1_builder() -> NetworkBuilder {
    let mut b = NetworkBuilder::new();
    // Vertices: 0,1 are the upstream end-hosts, 2,3 intermediate routers,
    // 4,5 the destination end-hosts. The precise vertex layout does not
    // matter for any algorithm — only the link/path incidence does.
    let e1 = b.add_link(NodeId(0), NodeId(2), AsId(0));
    let e2 = b.add_link(NodeId(2), NodeId(4), AsId(1));
    let e3 = b.add_link(NodeId(2), NodeId(5), AsId(1));
    let e4 = b.add_link(NodeId(1), NodeId(2), AsId(2));
    debug_assert_eq!((e1, e2, e3, e4), (E1, E2, E3, E4));
    b.add_path(NodeId(0), NodeId(4), vec![E1, E2]); // p1
    b.add_path(NodeId(0), NodeId(5), vec![E1, E3]); // p2
    b.add_path(NodeId(1), NodeId(5), vec![E4, E3]); // p3
    b
}

/// The Fig. 1 topology with the **Case 1** correlation sets
/// `{{e1}, {e2, e3}, {e4}}`.
pub fn fig1_case1() -> Network {
    let mut b = fig1_builder();
    b.correlation_sets(vec![vec![E1], vec![E2, E3], vec![E4]]);
    b.build().expect("Fig. 1 Case 1 fixture is valid")
}

/// The Fig. 1 topology with the **Case 2** correlation sets
/// `{{e1, e4}, {e2, e3}}`.
pub fn fig1_case2() -> Network {
    let mut b = fig1_builder();
    b.correlation_sets(vec![vec![E1, E4], vec![E2, E3]]);
    b.build().expect("Fig. 1 Case 2 fixture is valid")
}

/// The Fig. 1 topology with the default per-AS correlation sets (equivalent
/// to Case 1, since `e2`/`e3` share an AS in this encoding).
pub fn fig1_default() -> Network {
    fig1_builder().build().expect("Fig. 1 fixture is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PathId;

    #[test]
    fn paths_match_figure() {
        let net = fig1_case1();
        assert_eq!(net.path(PathId(0)).links, vec![E1, E2]);
        assert_eq!(net.path(PathId(1)).links, vec![E1, E3]);
        assert_eq!(net.path(PathId(2)).links, vec![E4, E3]);
    }

    #[test]
    fn paths_through_links_match_figure() {
        let net = fig1_case1();
        assert_eq!(net.paths_through_link(E1), &[PathId(0), PathId(1)]);
        assert_eq!(net.paths_through_link(E2), &[PathId(0)]);
        assert_eq!(net.paths_through_link(E3), &[PathId(1), PathId(2)]);
        assert_eq!(net.paths_through_link(E4), &[PathId(2)]);
    }

    #[test]
    fn case_variants_differ_only_in_correlation_sets() {
        let c1 = fig1_case1();
        let c2 = fig1_case2();
        assert_eq!(c1.num_links(), c2.num_links());
        assert_eq!(c1.num_paths(), c2.num_paths());
        assert_eq!(c1.correlation_sets().len(), 3);
        assert_eq!(c2.correlation_sets().len(), 2);
    }

    #[test]
    fn default_grouping_matches_case1_structure() {
        let net = fig1_default();
        assert_eq!(net.correlation_sets().len(), 3);
        assert_eq!(net.correlation_set_of(E2), net.correlation_set_of(E3));
    }
}
