//! Property-based tests for the network model.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tomo_graph::{AsId, CorrelationSubset, LinkId, Network, NetworkBuilder, NodeId, PathId};

/// Builds a random valid network: `n_links` links spread over `n_as` ASes and
/// `n_paths` random loop-free paths over those links.
fn arb_network(
    max_links: usize,
    max_as: usize,
    max_paths: usize,
) -> impl Strategy<Value = Network> {
    (2..=max_links, 1..=max_as, 1..=max_paths)
        .prop_flat_map(|(n_links, n_as, n_paths)| {
            let link_as = proptest::collection::vec(0..n_as, n_links);
            let paths = proptest::collection::vec(
                proptest::collection::btree_set(0..n_links, 1..=n_links.min(5)),
                n_paths,
            );
            (Just(n_links), link_as, paths)
        })
        .prop_map(|(n_links, link_as, paths)| {
            let mut b = NetworkBuilder::new();
            for (i, asn) in link_as.iter().enumerate() {
                b.add_link(NodeId(i), NodeId(i + 1), AsId(*asn));
            }
            let _ = n_links;
            for (pi, links) in paths.iter().enumerate() {
                let link_ids: Vec<LinkId> = links.iter().map(|&l| LinkId(l)).collect();
                b.add_path(NodeId(pi), NodeId(pi + 1000), link_ids);
            }
            b.build().expect("generated networks are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coverage duality: p ∈ Paths({e}) ⇔ e ∈ Links({p}).
    #[test]
    fn coverage_functions_are_dual(net in arb_network(8, 3, 6)) {
        for l in net.link_ids() {
            for p in net.path_ids() {
                let p_in_paths_l = net.paths_covering(&[l]).contains(&p);
                let l_in_links_p = net.links_covered(&[p]).contains(&l);
                prop_assert_eq!(p_in_paths_l, l_in_links_p);
            }
        }
    }

    /// Paths(E) is monotone in E and Links(P) is monotone in P.
    #[test]
    fn coverage_is_monotone(net in arb_network(8, 3, 6)) {
        let all_links: Vec<LinkId> = net.link_ids().collect();
        if all_links.len() >= 2 {
            let small = net.paths_covering(&all_links[..1]);
            let big = net.paths_covering(&all_links[..]);
            prop_assert!(small.is_subset(&big));
        }
        let all_paths: Vec<PathId> = net.path_ids().collect();
        if all_paths.len() >= 2 {
            let small = net.links_covered(&all_paths[..1]);
            let big = net.links_covered(&all_paths[..]);
            prop_assert!(small.is_subset(&big));
        }
    }

    /// Every link belongs to exactly one correlation set, and that set
    /// contains it.
    #[test]
    fn correlation_sets_partition_links(net in arb_network(10, 4, 4)) {
        let mut seen: BTreeSet<LinkId> = BTreeSet::new();
        for set in net.correlation_sets() {
            for &l in &set.links {
                prop_assert!(seen.insert(l), "link {l} in two correlation sets");
                prop_assert_eq!(net.correlation_set_of(l), set.id);
            }
        }
        prop_assert_eq!(seen.len(), net.num_links());
    }

    /// Complementation within a correlation set is an involution and the
    /// subset plus its complement reconstitute the whole set.
    #[test]
    fn subset_complement_involution(net in arb_network(10, 3, 4)) {
        for set in net.correlation_sets() {
            if set.len() < 2 {
                continue;
            }
            let sub = CorrelationSubset::new(set.id, [set.links[0]]);
            let comp = sub.complement(set);
            prop_assert_eq!(comp.complement(set), sub.clone());
            let mut union: BTreeSet<LinkId> = sub.links.clone();
            union.extend(comp.links.iter().copied());
            prop_assert_eq!(union.len(), set.len());
        }
    }

    /// The routing matrix has exactly one row per path whose row sum equals
    /// the path length.
    #[test]
    fn routing_matrix_row_sums(net in arb_network(8, 3, 6)) {
        let m = net.routing_matrix();
        prop_assert_eq!(m.len(), net.num_paths());
        for p in net.path_ids() {
            let row_sum: f64 = m[p.index()].iter().sum();
            prop_assert_eq!(row_sum as usize, net.path(p).len());
        }
    }

    /// `correlation_subsets(k)` never yields subsets larger than `k`, never
    /// yields duplicates, and every subset is observed by at least one path.
    #[test]
    fn correlation_subset_enumeration_invariants(net in arb_network(8, 3, 5), k in 1usize..=3) {
        let subs = net.correlation_subsets(k);
        let unique: BTreeSet<_> = subs.iter().cloned().collect();
        prop_assert_eq!(unique.len(), subs.len());
        for s in &subs {
            prop_assert!(!s.is_empty() && s.len() <= k);
            prop_assert!(!net.paths_covering_subset(s).is_empty());
        }
    }
}
