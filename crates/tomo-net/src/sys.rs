//! The thin FFI shim under the event loop: raw `poll(2)` plus the
//! `RLIMIT_NOFILE` pair, declared directly against libc symbols so the crate
//! stays dependency-free (the build environment has no crates.io access, so
//! the `libc` crate is not an option).
//!
//! This module is the only place in the workspace that contains `unsafe`
//! code; everything it exposes is a safe wrapper.

use std::io;
use std::os::fd::RawFd;

/// Readable data (or a connection to accept) is available.
pub const POLLIN: i16 = 0x001;
/// Writing now would not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The fd was not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the `poll(2)` fd set, layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// A poll entry watching `fd` for `events` (`POLLIN` / `POLLOUT` ORed).
    pub fn new(fd: RawFd, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// The returned event mask (valid after [`poll`] reported readiness).
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Whether the fd is readable (or has pending errors to collect via a
    /// read: `POLLERR`/`POLLHUP`/`POLLNVAL` are folded in so callers observe
    /// broken sockets through their normal read path).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Whether the fd is writable.
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }
}

// The libc symbols themselves. `nfds_t` is `unsigned long` on every platform
// this workspace targets (linux-gnu / linux-musl); `timeout` is milliseconds,
// -1 blocks indefinitely.
extern "C" {
    fn poll(
        fds: *mut PollFd,
        nfds: core::ffi::c_ulong,
        timeout: core::ffi::c_int,
    ) -> core::ffi::c_int;
    fn getrlimit(resource: core::ffi::c_int, rlim: *mut RLimit) -> core::ffi::c_int;
    fn setrlimit(resource: core::ffi::c_int, rlim: *const RLimit) -> core::ffi::c_int;
}

/// Blocks until at least one fd in `fds` is ready or `timeout_ms` elapses
/// (-1 = no timeout). Returns the number of ready entries; 0 on timeout.
/// `EINTR` is retried internally so callers never observe it.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-compatible structs, and `len()` is its true
        // length; the kernel writes only the `revents` fields.
        let rc = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as core::ffi::c_ulong,
                timeout_ms,
            )
        };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// `struct rlimit`: soft (cur) and hard (max) limits.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

/// `RLIMIT_NOFILE` on Linux.
const RLIMIT_NOFILE: core::ffi::c_int = 7;

/// Raises the soft open-file limit toward `want` (capped at the hard limit)
/// and returns the resulting soft limit. C10K harnesses call this so a
/// default `ulimit -n 1024` does not truncate a 1k-connection run.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut limit = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `limit` is a valid `#[repr(C)]` rlimit the kernel fills in.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut limit) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if limit.rlim_cur >= want {
        return Ok(limit.rlim_cur);
    }
    let raised = RLimit {
        rlim_cur: want.min(limit.rlim_max),
        rlim_max: limit.rlim_max,
    };
    // SAFETY: `raised` is a valid rlimit with cur <= max.
    if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(raised.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poll_times_out_on_a_silent_socket() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, 10).unwrap();
        assert_eq!(ready, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn poll_reports_readable_after_a_write() {
        let (a, mut b) = UnixStream::pair().unwrap();
        b.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].writable());
    }

    #[test]
    fn poll_reports_hup_as_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        // The peer is gone: the fold-in makes the caller read the EOF.
        assert!(fds[0].readable());
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        let current = raise_nofile_limit(0).unwrap();
        assert!(current > 0);
        // Asking for what we already have (or less) never lowers it.
        let after = raise_nofile_limit(current).unwrap();
        assert!(after >= current);
    }
}
