//! The readiness-polled event loop: one I/O thread owns every socket.
//!
//! [`EventLoop::run`] multiplexes a nonblocking listener plus all accepted
//! connections through raw [`poll(2)`](crate::sys::poll_fds). Inbound bytes
//! are staged in a per-connection read ring and framed into `\n`-terminated
//! lines; each complete line is handed to the [`Service`] **on the I/O
//! thread**, so the service must never block — it hands CPU work to a
//! worker pool and replies later through the cloneable [`Sender`], which
//! queues response lines onto an outbox and wakes the loop via a
//! self-pipe. Responses are staged in a per-connection write ring and
//! drained whenever the socket reports writable.
//!
//! Invariants the loop maintains:
//!
//! * thread count is constant: no thread is ever spawned per connection;
//! * a connection with a queued response is polled for `POLLOUT` until its
//!   write ring drains, then the interest is dropped (no busy wake-ups);
//! * a line longer than [`NetConfig::max_line_bytes`] or a write ring
//!   exceeding [`NetConfig::max_write_buffer`] closes the offending
//!   connection (bounded memory per connection, misbehavers cannot balloon
//!   the daemon);
//! * when the accept limit [`NetConfig::max_conns`] is reached, new
//!   connections get the service's [`Service::overload_line`] written
//!   best-effort before the close — an explicit reject, not a silent drop;
//! * after [`Sender::shutdown`], the loop stops accepting and reading,
//!   drains every pending write ring (bounded by
//!   [`NetConfig::drain_grace_ms`]), closes everything and returns.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::ring::ByteRing;
use crate::sys::{poll_fds, PollFd, POLLIN, POLLOUT};

/// Initial capacity of each connection's read/write ring.
const INITIAL_RING: usize = 1024;

/// Identifies one live connection. Slot indices are reused after a close,
/// so the id carries a generation: a stale id (from a request whose
/// connection died while the worker computed the response) no longer
/// resolves, and the late response is dropped instead of reaching an
/// unrelated client.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConnId {
    slot: u32,
    gen: u32,
}

impl std::fmt::Display for ConnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}.{}", self.slot, self.gen)
    }
}

/// Event-loop tuning knobs.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Maximum live connections; further accepts are rejected with the
    /// service's overload line. `None` = unlimited.
    pub max_conns: Option<usize>,
    /// A connection whose unframed partial line exceeds this is closed.
    pub max_line_bytes: usize,
    /// A connection whose pending response bytes exceed this (a reader
    /// slower than its request rate) is closed.
    pub max_write_buffer: usize,
    /// Poll timeout; bounds the latency of noticing an externally raised
    /// shutdown flag.
    pub poll_timeout_ms: i32,
    /// After shutdown, how long to keep draining pending response bytes
    /// before closing connections that will not accept them.
    pub drain_grace_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_conns: None,
            max_line_bytes: 8 * 1024 * 1024,
            max_write_buffer: 16 * 1024 * 1024,
            poll_timeout_ms: 200,
            drain_grace_ms: 1000,
        }
    }
}

/// Loop-level I/O counters, maintained with relaxed atomics on the I/O
/// thread and readable from any thread. Obtain the shared handle with
/// [`EventLoop::counters`] **before** [`EventLoop::run`] consumes the loop;
/// the counters outlive the loop, so a metrics endpoint can keep reporting
/// final totals while the daemon drains.
#[derive(Debug, Default)]
pub struct NetCounters {
    accepted: AtomicU64,
    rejected_overload: AtomicU64,
    lines_in: AtomicU64,
    lines_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

/// A point-in-time copy of [`NetCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetCountersSnapshot {
    /// Connections accepted into the loop.
    pub accepted: u64,
    /// Connections rejected at the accept limit (`max_conns`).
    pub rejected_overload: u64,
    /// Complete request lines framed into the service.
    pub lines_in: u64,
    /// Response lines queued for writing.
    pub lines_out: u64,
    /// Bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
}

impl NetCounters {
    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads all counters (relaxed; each counter individually exact).
    pub fn snapshot(&self) -> NetCountersSnapshot {
        NetCountersSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            lines_in: self.lines_in.load(Ordering::Relaxed),
            lines_out: self.lines_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// What the event loop serves. Callbacks run on the I/O thread and must not
/// block; hand work off and respond asynchronously via the [`Sender`].
pub trait Service: Send + Sync {
    /// A connection was accepted.
    fn on_open(&self, conn: ConnId, peer: SocketAddr) {
        let _ = (conn, peer);
    }

    /// A complete request line arrived (terminator stripped).
    fn on_line(&self, conn: ConnId, line: String);

    /// The connection closed (EOF, error, overflow, or shutdown drain).
    /// Not called for connections rejected at the accept limit.
    fn on_close(&self, conn: ConnId) {
        let _ = conn;
    }

    /// The line written (with a newline appended) to connections rejected
    /// at the accept limit, before the close. `None` closes silently.
    fn overload_line(&self) -> Option<String> {
        None
    }
}

/// A queued instruction from worker threads to the I/O thread.
enum Command {
    /// Queue `line` (plus newline) for writing.
    Send { conn: ConnId, line: String },
    /// Queue `line`, then close once the write ring drains.
    SendThenClose { conn: ConnId, line: String },
    /// Close immediately (pending writes are abandoned).
    Close { conn: ConnId },
}

/// Shared state between [`Sender`]s and the loop.
struct Outbox {
    commands: Mutex<VecDeque<Command>>,
    shutdown: Arc<AtomicBool>,
    /// Write end of the self-pipe; any byte wakes the poller.
    wake_tx: UnixStream,
}

impl Outbox {
    fn push(&self, command: Command) {
        self.commands
            .lock()
            .expect("outbox lock")
            .push_back(command);
        self.wake();
    }

    fn wake(&self) {
        // A full pipe already guarantees a pending wake-up; errors after
        // loop exit just mean nobody is listening anymore.
        let _ = (&self.wake_tx).write(&[1u8]);
    }
}

/// Cloneable handle for queueing response lines onto the event loop.
#[derive(Clone)]
pub struct Sender {
    outbox: Arc<Outbox>,
}

impl Sender {
    /// Queues `line` for `conn`. Lines sent for a connection that has
    /// since closed are dropped.
    pub fn send(&self, conn: ConnId, line: String) {
        self.outbox.push(Command::Send { conn, line });
    }

    /// Queues `line`, closing the connection once it is written.
    pub fn send_then_close(&self, conn: ConnId, line: String) {
        self.outbox.push(Command::SendThenClose { conn, line });
    }

    /// Closes the connection, abandoning pending writes.
    pub fn close(&self, conn: ConnId) {
        self.outbox.push(Command::Close { conn });
    }

    /// Asks the loop to stop: no more accepts or reads, pending writes are
    /// drained (bounded), then [`EventLoop::run`] returns.
    pub fn shutdown(&self) {
        self.outbox.shutdown.store(true, Ordering::Relaxed);
        self.outbox.wake();
    }
}

/// One registered connection.
struct Conn {
    stream: TcpStream,
    gen: u32,
    read: ByteRing,
    /// Resume hint for newline scans of the read ring.
    scan_from: usize,
    write: ByteRing,
    /// Close once the write ring drains.
    closing: bool,
}

/// The slot map of live connections.
struct Slab {
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    next_gen: u32,
}

impl Slab {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_gen: 1,
        }
    }

    fn insert(&mut self, stream: TcpStream) -> ConnId {
        let gen = self.next_gen;
        self.next_gen = self.next_gen.wrapping_add(1).max(1);
        let conn = Conn {
            stream,
            gen,
            read: ByteRing::with_capacity(INITIAL_RING),
            scan_from: 0,
            write: ByteRing::with_capacity(INITIAL_RING),
            closing: false,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(conn);
                slot
            }
            None => {
                self.slots.push(Some(conn));
                self.slots.len() - 1
            }
        };
        self.live += 1;
        ConnId {
            slot: slot as u32,
            gen,
        }
    }

    fn get(&mut self, id: ConnId) -> Option<&mut Conn> {
        self.slots
            .get_mut(id.slot as usize)?
            .as_mut()
            .filter(|c| c.gen == id.gen)
    }

    fn remove(&mut self, id: ConnId) -> Option<Conn> {
        let slot = id.slot as usize;
        if self.slots.get(slot)?.as_ref()?.gen != id.gen {
            return None;
        }
        let conn = self.slots[slot].take();
        self.free.push(slot);
        self.live -= 1;
        conn
    }

    /// Ids of all live connections.
    fn ids(&self) -> Vec<ConnId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(slot, c)| {
                c.as_ref().map(|c| ConnId {
                    slot: slot as u32,
                    gen: c.gen,
                })
            })
            .collect()
    }
}

/// The multiplexer: a bound listener plus the machinery [`run`] needs.
///
/// [`run`]: EventLoop::run
pub struct EventLoop {
    listener: TcpListener,
    config: NetConfig,
    outbox: Arc<Outbox>,
    wake_rx: UnixStream,
    shutdown: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
}

impl EventLoop {
    /// Binds `addr` (port 0 picks an ephemeral port).
    pub fn bind(addr: &str, config: NetConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        Ok(Self {
            listener,
            config,
            outbox: Arc::new(Outbox {
                commands: Mutex::new(VecDeque::new()),
                shutdown: Arc::clone(&shutdown),
                wake_tx,
            }),
            wake_rx,
            shutdown,
            counters: Arc::new(NetCounters::default()),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for queueing responses and requesting shutdown.
    pub fn sender(&self) -> Sender {
        Sender {
            outbox: Arc::clone(&self.outbox),
        }
    }

    /// The shutdown flag; raising it externally stops the loop within one
    /// poll timeout (use [`Sender::shutdown`] to stop it immediately).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The loop's shared I/O counters. Clone the `Arc` before calling
    /// [`EventLoop::run`] (which consumes the loop).
    pub fn counters(&self) -> Arc<NetCounters> {
        Arc::clone(&self.counters)
    }

    /// Runs the loop until shutdown. See the module docs for semantics.
    pub fn run<S: Service>(self, service: &S) -> io::Result<()> {
        let mut slab = Slab::new();
        let mut draining_since: Option<Instant> = None;
        // Reused across iterations; fds[i] watches targets[i].
        let mut fds: Vec<PollFd> = Vec::new();
        let mut targets: Vec<Target> = Vec::new();

        loop {
            // 1. Apply queued worker commands, then eagerly flush the
            // connections they touched (saves a poll round trip per
            // response on an unsaturated socket).
            let commands: Vec<Command> = {
                let mut queue = self.outbox.commands.lock().expect("outbox lock");
                queue.drain(..).collect()
            };
            let mut touched = Vec::new();
            for command in commands {
                match command {
                    Command::Send { conn, line } => {
                        if self.queue_line(&mut slab, conn, &line, false) {
                            touched.push(conn);
                        } else {
                            self.close_conn(&mut slab, conn, service);
                        }
                    }
                    Command::SendThenClose { conn, line } => {
                        if self.queue_line(&mut slab, conn, &line, true) {
                            touched.push(conn);
                        } else {
                            self.close_conn(&mut slab, conn, service);
                        }
                    }
                    Command::Close { conn } => self.close_conn(&mut slab, conn, service),
                }
            }
            for conn in touched {
                self.flush_conn(&mut slab, conn, service);
            }

            // 2. Shutdown: enter the drain phase, and leave it once every
            // pending response byte is out (or the grace expires).
            if self.shutdown.load(Ordering::Relaxed) && draining_since.is_none() {
                draining_since = Some(Instant::now());
            }
            if let Some(since) = draining_since {
                let outbox_empty = self.outbox.commands.lock().expect("outbox lock").is_empty();
                let flushed =
                    outbox_empty && slab.slots.iter().flatten().all(|c| c.write.is_empty());
                if flushed || since.elapsed().as_millis() as u64 >= self.config.drain_grace_ms {
                    for id in slab.ids() {
                        self.close_conn(&mut slab, id, service);
                    }
                    return Ok(());
                }
            }
            let draining = draining_since.is_some();

            // 3. Build the poll set: self-pipe, listener (while accepting),
            // then every connection with a current interest.
            fds.clear();
            targets.clear();
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            targets.push(Target::Wake);
            if !draining {
                fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
                targets.push(Target::Listener);
            }
            for (slot, conn) in slab.slots.iter().enumerate() {
                let Some(conn) = conn else { continue };
                let mut events = 0i16;
                if !draining {
                    events |= POLLIN;
                }
                if !conn.write.is_empty() {
                    events |= POLLOUT;
                }
                if events != 0 {
                    fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                    targets.push(Target::Conn(ConnId {
                        slot: slot as u32,
                        gen: conn.gen,
                    }));
                }
            }

            let timeout = if draining {
                50
            } else {
                self.config.poll_timeout_ms
            };
            poll_fds(&mut fds, timeout)?;

            // 4. Dispatch readiness. Commands queued while we process are
            // picked up at the top of the next iteration.
            for i in 0..fds.len() {
                let fd = fds[i];
                match targets[i] {
                    Target::Wake if fd.readable() => self.drain_wake_pipe(),
                    Target::Listener if fd.readable() => self.accept_ready(&mut slab, service),
                    Target::Conn(id) => {
                        if fd.writable() {
                            self.flush_conn(&mut slab, id, service);
                        }
                        if fd.readable() && !self.read_conn(&mut slab, id, service) {
                            self.close_conn(&mut slab, id, service);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Empties the self-pipe so level-triggered polling goes quiet again.
    fn drain_wake_pipe(&self) {
        let mut sink = [0u8; 256];
        while let Ok(n) = (&self.wake_rx).read(&mut sink) {
            if n < sink.len() {
                break;
            }
        }
    }

    /// Accepts until the listener would block, enforcing the accept limit.
    fn accept_ready<S: Service>(&self, slab: &mut Slab, service: &S) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let at_limit = self
                        .config
                        .max_conns
                        .is_some_and(|limit| slab.live >= limit);
                    if at_limit {
                        NetCounters::add(&self.counters.rejected_overload, 1);
                        self.reject_overload(stream, service);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = slab.insert(stream);
                    NetCounters::add(&self.counters.accepted, 1);
                    service.on_open(id, peer);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    // Transient accept failures (ECONNABORTED, EMFILE…):
                    // yield briefly instead of spinning on the error.
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    return;
                }
            }
        }
    }

    /// Best-effort overload reject: write the service's reject line, close.
    fn reject_overload<S: Service>(&self, stream: TcpStream, service: &S) {
        if let Some(line) = service.overload_line() {
            let _ = stream.set_nonblocking(true);
            let _ = (&stream).write_all(format!("{line}\n").as_bytes());
        }
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }

    /// Appends a line to a connection's write ring. Returns false when the
    /// connection must be closed instead (write-buffer overflow).
    fn queue_line(&self, slab: &mut Slab, id: ConnId, line: &str, close_after: bool) -> bool {
        let Some(conn) = slab.get(id) else {
            // Stale id: the connection closed while the response was
            // computed. Nothing to do.
            return true;
        };
        if conn.write.len() + line.len() + 1 > self.config.max_write_buffer {
            return false;
        }
        conn.write.extend_from_slice(line.as_bytes());
        conn.write.extend_from_slice(b"\n");
        NetCounters::add(&self.counters.lines_out, 1);
        if close_after {
            conn.closing = true;
        }
        true
    }

    /// Drains a connection's write ring toward the socket; closes on error
    /// or once a `closing` connection finishes flushing.
    fn flush_conn<S: Service>(&self, slab: &mut Slab, id: ConnId, service: &S) {
        let should_close = match slab.get(id) {
            Some(conn) => {
                let Conn {
                    stream,
                    write,
                    closing,
                    ..
                } = conn;
                match write.write_to(stream) {
                    Ok(n) => {
                        NetCounters::add(&self.counters.bytes_out, n as u64);
                        write.is_empty() && *closing
                    }
                    Err(_) => true,
                }
            }
            None => return,
        };
        if should_close {
            self.close_conn(slab, id, service);
        }
    }

    /// Reads until the socket would block, framing complete lines into the
    /// service. Returns false when the connection should close (EOF, error,
    /// or an unframed line beyond the limit). Re-borrows the slab around
    /// every `on_line` call so a service may close connections from within
    /// the callback.
    fn read_conn<S: Service>(&self, slab: &mut Slab, id: ConnId, service: &S) -> bool {
        loop {
            let read = match slab.get(id) {
                Some(conn) => {
                    if conn.closing {
                        // A goodbye is in flight; drop further requests.
                        return true;
                    }
                    let Conn { stream, read, .. } = conn;
                    read.read_from(stream)
                }
                None => return true,
            };
            match read {
                Ok(0) => return false,
                Ok(n) => {
                    NetCounters::add(&self.counters.bytes_in, n as u64);
                    loop {
                        let line = match slab.get(id) {
                            Some(conn) => {
                                if conn.closing {
                                    return true;
                                }
                                let Conn {
                                    read, scan_from, ..
                                } = conn;
                                match read.take_line(scan_from) {
                                    Some(line) => line,
                                    None => {
                                        if read.len() > self.config.max_line_bytes {
                                            return false;
                                        }
                                        break;
                                    }
                                }
                            }
                            None => return true,
                        };
                        let text = String::from_utf8_lossy(&line).into_owned();
                        NetCounters::add(&self.counters.lines_in, 1);
                        service.on_line(id, text);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Removes and closes a connection, notifying the service.
    fn close_conn<S: Service>(&self, slab: &mut Slab, id: ConnId, service: &S) {
        if let Some(conn) = slab.remove(id) {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            service.on_close(id);
        }
    }
}

/// What each poll entry watches.
#[derive(Clone, Copy)]
enum Target {
    Wake,
    Listener,
    Conn(ConnId),
}
