//! tomo-net: a dependency-free, readiness-polled nonblocking TCP
//! multiplexer for line-framed (JSON-lines) protocols.
//!
//! The crate exists so the tomography daemon can hold ten thousand mostly
//! idle monitoring sessions without ten thousand threads: a **single I/O
//! thread** owns every socket (listener included) and multiplexes them
//! through raw [`poll(2)`](sys::poll_fds), declared as a thin FFI shim in
//! [`sys`] because the offline build environment has no `libc`/`mio`/`tokio`
//! crates. Everything above the two `extern "C"` syscalls is safe Rust on
//! `std::net`.
//!
//! The pieces:
//!
//! * [`sys`] — `poll(2)` + `RLIMIT_NOFILE` FFI (the only `unsafe` in the
//!   workspace);
//! * [`ByteRing`] — growable circular byte buffers staging reads and writes
//!   per connection, with resumable newline framing;
//! * [`EventLoop`] / [`Service`] / [`Sender`] — the loop itself: accepts,
//!   reads, frames lines into `Service::on_line` (which must hand CPU work
//!   to a worker pool and not block), and drains response lines queued via
//!   the cloneable `Sender` from any thread.
//!
//! The intended topology, as used by `tomo-serve`:
//!
//! ```text
//!  clients ──TCP──► EventLoop (1 thread: poll/accept/read/frame/write)
//!                      │ on_line(conn, line)          ▲ Sender::send
//!                      ▼                              │
//!                  WorkerPool (N threads: parse/dispatch/estimate)
//! ```

pub mod event_loop;
pub mod ring;
pub mod sys;

pub use event_loop::{
    ConnId, EventLoop, NetConfig, NetCounters, NetCountersSnapshot, Sender, Service,
};
pub use ring::ByteRing;
pub use sys::raise_nofile_limit;
