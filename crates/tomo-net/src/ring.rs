//! Growable byte ring buffers for per-connection read/write staging.
//!
//! A [`ByteRing`] is a circular byte queue: the read path appends socket
//! bytes at the tail and consumes framed lines from the head; the write path
//! appends queued response lines at the tail and drains toward the socket
//! from the head. Both ends are O(1) amortized, nothing is shifted on
//! consume, and the storage only grows (doubling) when the pending byte
//! count actually requires it — a mostly-idle connection stays at its small
//! initial allocation forever.

use std::io::{self, Read, Write};

/// How many bytes a single `read_from` pulls per call.
const READ_CHUNK: usize = 64 * 1024;

/// A growable circular byte buffer.
#[derive(Debug)]
pub struct ByteRing {
    buf: Vec<u8>,
    /// Index of the first pending byte.
    start: usize,
    /// Number of pending bytes.
    len: usize,
}

impl ByteRing {
    /// An empty ring with the given initial capacity (rounded up to 64).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: vec![0; capacity.max(64)],
            start: 0,
            len: 0,
        }
    }

    /// Number of pending bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bytes are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current storage capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// The pending bytes as (head, tail) slices, head first.
    pub fn as_slices(&self) -> (&[u8], &[u8]) {
        let head_len = self.len.min(self.buf.len() - self.start);
        let head = &self.buf[self.start..self.start + head_len];
        let tail = &self.buf[..self.len - head_len];
        (head, tail)
    }

    /// The byte at pending offset `i` (0 = oldest).
    fn at(&self, i: usize) -> u8 {
        self.buf[(self.start + i) % self.buf.len()]
    }

    /// Ensures space for `additional` more bytes, unwrapping the ring into
    /// the front of the (possibly larger) storage.
    fn reserve(&mut self, additional: usize) {
        let needed = self.len + additional;
        if needed <= self.buf.len() {
            return;
        }
        let new_cap = needed.next_power_of_two().max(self.buf.len() * 2);
        let mut new_buf = vec![0; new_cap];
        let (head, tail) = self.as_slices();
        new_buf[..head.len()].copy_from_slice(head);
        new_buf[head.len()..head.len() + tail.len()].copy_from_slice(tail);
        self.buf = new_buf;
        self.start = 0;
    }

    /// Appends `bytes` at the tail.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.reserve(bytes.len());
        let cap = self.buf.len();
        let mut write_at = (self.start + self.len) % cap;
        let first = bytes.len().min(cap - write_at);
        self.buf[write_at..write_at + first].copy_from_slice(&bytes[..first]);
        write_at = (write_at + first) % cap;
        let rest = &bytes[first..];
        self.buf[write_at..write_at + rest.len()].copy_from_slice(rest);
        self.len += bytes.len();
    }

    /// Drops the `n` oldest pending bytes.
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len);
        self.start = (self.start + n) % self.buf.len();
        self.len -= n;
        if self.len == 0 {
            self.start = 0;
        }
    }

    /// Finds the first `b` at pending offset >= `from`, returning its
    /// pending offset.
    pub fn find_byte(&self, b: u8, from: usize) -> Option<usize> {
        (from..self.len).find(|&i| self.at(i) == b)
    }

    /// Removes and returns the oldest `\n`-terminated line (line bytes
    /// without the terminator). `scan_from` is a resume hint: offsets below
    /// it are known newline-free, making repeated scans of a growing
    /// partial line linear overall. On `None`, the hint is advanced to the
    /// current length.
    pub fn take_line(&mut self, scan_from: &mut usize) -> Option<Vec<u8>> {
        match self.find_byte(b'\n', *scan_from) {
            Some(pos) => {
                let mut line = vec![0u8; pos];
                let (head, tail) = self.as_slices();
                let from_head = pos.min(head.len());
                line[..from_head].copy_from_slice(&head[..from_head]);
                line[from_head..].copy_from_slice(&tail[..pos - from_head]);
                self.consume(pos + 1);
                *scan_from = 0;
                Some(line)
            }
            None => {
                *scan_from = self.len;
                None
            }
        }
    }

    /// Reads once from `r` (up to one chunk) into the ring. Returns the
    /// byte count (0 = EOF); `WouldBlock` surfaces as the io error.
    pub fn read_from(&mut self, r: &mut impl Read) -> io::Result<usize> {
        let mut chunk = [0u8; READ_CHUNK];
        let n = r.read(&mut chunk)?;
        self.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Writes pending bytes to `w` until drained or `WouldBlock` (which is
    /// swallowed — pending bytes stay queued). Returns bytes written.
    pub fn write_to(&mut self, w: &mut impl Write) -> io::Result<usize> {
        let mut total = 0;
        while !self.is_empty() {
            let n = {
                let (head, _) = self.as_slices();
                match w.write(head) {
                    Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            self.consume(n);
            total += n;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_consume_wraps_around() {
        let mut ring = ByteRing::with_capacity(64);
        // Fill-and-drain repeatedly so start walks around the buffer.
        for round in 0..50 {
            let payload = vec![round as u8; 37];
            ring.extend_from_slice(&payload);
            let (head, tail) = ring.as_slices();
            let got: Vec<u8> = head.iter().chain(tail).copied().collect();
            assert_eq!(got, payload, "round {round}");
            ring.consume(37);
            assert!(ring.is_empty());
        }
        // Never needed to grow: 37 < 64.
        assert_eq!(ring.capacity(), 64);
    }

    #[test]
    fn growth_preserves_order_across_the_wrap_point() {
        let mut ring = ByteRing::with_capacity(64);
        ring.extend_from_slice(&[1; 40]);
        ring.consume(30);
        // Tail now wraps; force growth and verify byte order.
        let big: Vec<u8> = (0..200).map(|i| i as u8).collect();
        ring.extend_from_slice(&big);
        let (head, tail) = ring.as_slices();
        let got: Vec<u8> = head.iter().chain(tail).copied().collect();
        assert_eq!(&got[..10], &[1; 10]);
        assert_eq!(&got[10..], &big[..]);
    }

    #[test]
    fn take_line_frames_partial_input() {
        let mut ring = ByteRing::with_capacity(64);
        let mut scan = 0;
        ring.extend_from_slice(b"hel");
        assert_eq!(ring.take_line(&mut scan), None);
        assert_eq!(scan, 3);
        ring.extend_from_slice(b"lo\nwor");
        assert_eq!(ring.take_line(&mut scan).unwrap(), b"hello");
        assert_eq!(scan, 0);
        assert_eq!(ring.take_line(&mut scan), None);
        ring.extend_from_slice(b"ld\n\n");
        assert_eq!(ring.take_line(&mut scan).unwrap(), b"world");
        assert_eq!(ring.take_line(&mut scan).unwrap(), b"");
        assert_eq!(ring.take_line(&mut scan), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn write_to_drains_into_a_sink() {
        let mut ring = ByteRing::with_capacity(64);
        ring.extend_from_slice(&[9u8; 300]);
        let mut sink = Vec::new();
        let written = ring.write_to(&mut sink).unwrap();
        assert_eq!(written, 300);
        assert_eq!(sink, vec![9u8; 300]);
        assert!(ring.is_empty());
    }
}
