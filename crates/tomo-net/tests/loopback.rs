//! Loopback integration tests for the tomo-net event loop: framing across
//! partial reads, interleaved slow writers, registration churn at the
//! 1k-socket scale, overload rejection, and shutdown draining.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use tomo_net::{ConnId, EventLoop, NetConfig, Sender, Service};

/// Echo service: replies `echo:<line>` to every line, counting opens/closes.
struct Echo {
    sender: Mutex<Option<Sender>>,
    opens: AtomicUsize,
    closes: AtomicUsize,
    last_open: Mutex<Option<ConnId>>,
    max_conns_line: Option<String>,
}

impl Echo {
    fn new(max_conns_line: Option<String>) -> Self {
        Self {
            sender: Mutex::new(None),
            opens: AtomicUsize::new(0),
            closes: AtomicUsize::new(0),
            last_open: Mutex::new(None),
            max_conns_line,
        }
    }

    fn sender(&self) -> Sender {
        self.sender.lock().unwrap().clone().expect("sender set")
    }
}

impl Service for Echo {
    fn on_open(&self, conn: ConnId, _peer: SocketAddr) {
        self.opens.fetch_add(1, Ordering::SeqCst);
        *self.last_open.lock().unwrap() = Some(conn);
    }

    fn on_line(&self, conn: ConnId, line: String) {
        self.sender().send(conn, format!("echo:{line}"));
    }

    fn on_close(&self, _conn: ConnId) {
        self.closes.fetch_add(1, Ordering::SeqCst);
    }

    fn overload_line(&self) -> Option<String> {
        self.max_conns_line.clone()
    }
}

/// Boots an echo server on an ephemeral port; returns (addr, service,
/// sender, join handle).
fn spawn_echo(
    config: NetConfig,
    overload: Option<String>,
) -> (SocketAddr, Arc<Echo>, Sender, thread::JoinHandle<()>) {
    let event_loop = EventLoop::bind("127.0.0.1:0", config).expect("bind");
    let addr = event_loop.local_addr().expect("local addr");
    let sender = event_loop.sender();
    let service = Arc::new(Echo::new(overload));
    *service.sender.lock().unwrap() = Some(sender.clone());
    let service_for_loop = Arc::clone(&service);
    let handle = thread::spawn(move || {
        event_loop.run(&*service_for_loop).expect("event loop");
    });
    (addr, service, sender, handle)
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn frames_lines_split_across_many_partial_writes() {
    let (addr, _service, sender, handle) = spawn_echo(NetConfig::default(), None);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();

    // Dribble one request byte-by-byte, then a burst of three more in a
    // single write; framing must be identical either way.
    for b in b"hello world" {
        stream.write_all(&[*b]).unwrap();
        stream.flush().unwrap();
        thread::sleep(Duration::from_millis(1));
    }
    stream.write_all(b"\nalpha\nbeta\ngamma\n").unwrap();

    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut got = Vec::new();
    for _ in 0..4 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        got.push(line.trim_end().to_string());
    }
    assert_eq!(
        got,
        vec!["echo:hello world", "echo:alpha", "echo:beta", "echo:gamma"]
    );

    sender.shutdown();
    handle.join().unwrap();
}

#[test]
fn interleaves_slow_writers_without_blocking_fast_ones() {
    let (addr, _service, sender, handle) = spawn_echo(NetConfig::default(), None);

    // The slow writer dribbles a long line; the fast writer pipelines many
    // full requests meanwhile and must see all its responses promptly.
    let mut slow = TcpStream::connect(addr).unwrap();
    let mut fast = TcpStream::connect(addr).unwrap();
    fast.set_nodelay(true).unwrap();

    let payload = "s".repeat(64);
    let slow_handle = thread::spawn(move || {
        for chunk in payload.as_bytes().chunks(4) {
            slow.write_all(chunk).unwrap();
            slow.flush().unwrap();
            thread::sleep(Duration::from_millis(10));
        }
        slow.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(slow);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    });

    let mut fast_reader = BufReader::new(fast.try_clone().unwrap());
    let start = Instant::now();
    for i in 0..200 {
        fast.write_all(format!("fast-{i}\n").as_bytes()).unwrap();
        let mut line = String::new();
        fast_reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), format!("echo:fast-{i}"));
    }
    // 200 round trips must not be serialized behind the ~160ms dribble.
    // Generous bound: the point is "not blocked", not a latency SLO.
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "fast client starved: {:?}",
        start.elapsed()
    );

    assert_eq!(
        slow_handle.join().unwrap(),
        format!("echo:{}", "s".repeat(64))
    );
    sender.shutdown();
    handle.join().unwrap();
}

#[test]
fn survives_1k_socket_registration_churn() {
    tomo_net::raise_nofile_limit(4096).ok();
    let (addr, service, sender, handle) = spawn_echo(NetConfig::default(), None);

    // Wave 1: 500 concurrent sockets, one round trip each, then all close.
    let mut wave = Vec::new();
    for i in 0..500 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(format!("w1-{i}\n").as_bytes()).unwrap();
        wave.push(s);
    }
    for (i, s) in wave.iter_mut().enumerate() {
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), format!("echo:w1-{i}"));
    }
    drop(wave);
    wait_for(
        || service.closes.load(Ordering::SeqCst) >= 500,
        "wave-1 closes",
    );

    // Wave 2: 500 short-lived connects reusing the freed slots; the
    // generation tags must keep ids distinct even as slots recycle.
    for i in 0..500 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(format!("w2-{i}\n").as_bytes()).unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), format!("echo:w2-{i}"));
    }
    assert_eq!(service.opens.load(Ordering::SeqCst), 1000);
    wait_for(
        || service.closes.load(Ordering::SeqCst) >= 1000,
        "wave-2 closes",
    );

    sender.shutdown();
    handle.join().unwrap();
}

#[test]
fn rejects_accepts_beyond_max_conns_with_the_overload_line() {
    let config = NetConfig {
        max_conns: Some(2),
        ..NetConfig::default()
    };
    let (addr, service, sender, handle) = spawn_echo(config, Some("overloaded".to_string()));

    let mut a = TcpStream::connect(addr).unwrap();
    let mut b = TcpStream::connect(addr).unwrap();
    for (i, s) in [&mut a, &mut b].into_iter().enumerate() {
        s.write_all(format!("keep-{i}\n").as_bytes()).unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), format!("echo:keep-{i}"));
    }

    // Third connection: must get the overload line, then EOF.
    let rejected = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(rejected);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "overloaded");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty());

    // Rejected connections never reach on_open/on_close.
    assert_eq!(service.opens.load(Ordering::SeqCst), 2);

    // Freeing a slot re-opens the door.
    drop(a);
    wait_for(
        || service.closes.load(Ordering::SeqCst) >= 1,
        "slot to free",
    );
    let mut c = TcpStream::connect(addr).unwrap();
    c.write_all(b"late\n").unwrap();
    let mut reader = BufReader::new(c);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "echo:late");

    drop(b);
    sender.shutdown();
    handle.join().unwrap();
}

#[test]
fn shutdown_drains_queued_responses_before_closing() {
    let (addr, _service, sender, handle) = spawn_echo(NetConfig::default(), None);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"last-words\n").unwrap();
    // Give the loop a beat to frame the request, then shut down; the queued
    // response must still arrive before the close.
    thread::sleep(Duration::from_millis(50));
    sender.shutdown();
    handle.join().unwrap();
    let mut reader = BufReader::new(stream);
    let mut all = String::new();
    reader.read_to_string(&mut all).unwrap();
    assert!(
        all.contains("echo:last-words"),
        "response lost in shutdown: {all:?}"
    );
}

#[test]
fn stale_conn_ids_are_ignored_after_slot_reuse() {
    let (addr, service, sender, handle) = spawn_echo(NetConfig::default(), None);

    // Open, capture the id, close: the slot is now free for reuse.
    let first = TcpStream::connect(addr).unwrap();
    wait_for(|| service.opens.load(Ordering::SeqCst) >= 1, "first open");
    let stale = service.last_open.lock().unwrap().expect("captured id");
    drop(first);
    wait_for(|| service.closes.load(Ordering::SeqCst) >= 1, "first close");

    // The next connection reuses the freed slot under a new generation. A
    // response addressed to the stale id (a worker finishing after the
    // client vanished) must NOT leak into the new connection's stream.
    let mut s = TcpStream::connect(addr).unwrap();
    wait_for(|| service.opens.load(Ordering::SeqCst) >= 2, "second open");
    let fresh = service.last_open.lock().unwrap().expect("captured id");
    assert_ne!(stale, fresh, "generation must differ on slot reuse");
    sender.send(stale, "ghost-response".to_string());

    s.write_all(b"alive\n").unwrap();
    let mut reader = BufReader::new(s.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "echo:alive", "stale send leaked through");

    sender.shutdown();
    handle.join().unwrap();
}
