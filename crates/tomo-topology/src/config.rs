//! Configuration of the topology generators.

use serde::{Deserialize, Serialize};

/// Configuration of the BRITE-style two-level generator
/// ([`crate::BriteGenerator`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BriteConfig {
    /// Number of Autonomous Systems in the AS-level graph.
    pub num_ases: usize,
    /// Number of routers per AS in the router-level graph.
    pub routers_per_as: usize,
    /// Barabási–Albert attachment parameter: each new AS peers with this
    /// many existing ASes.
    pub as_peering_degree: usize,
    /// Extra intra-AS router edges added on top of the spanning tree, per
    /// router (controls router-level redundancy and therefore how often two
    /// AS-level links share a router-level link).
    pub extra_intra_edges_per_router: usize,
    /// Number of router-level peering links instantiated per AS adjacency.
    pub peering_links_per_adjacency: usize,
    /// Number of measurement paths to generate.
    pub num_paths: usize,
    /// RNG seed; the generator is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for BriteConfig {
    fn default() -> Self {
        // Sized to produce roughly 1000 AS-level links and 1500 paths, like
        // the representative Brite topology of §3.2.
        Self {
            num_ases: 60,
            routers_per_as: 12,
            as_peering_degree: 2,
            extra_intra_edges_per_router: 1,
            peering_links_per_adjacency: 2,
            num_paths: 1500,
            seed: 1,
        }
    }
}

impl BriteConfig {
    /// A much smaller instance for unit tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        Self {
            num_ases: 8,
            routers_per_as: 4,
            as_peering_degree: 2,
            extra_intra_edges_per_router: 1,
            peering_links_per_adjacency: 1,
            num_paths: 60,
            seed,
        }
    }

    /// A large sweep-scale instance: ≥5000 measured AS-level links, several
    /// thousand paths. Generation takes seconds in release mode; meant for
    /// `--release` sweeps and benches, not the unit-test suite.
    pub fn large(seed: u64) -> Self {
        // Aim ~10 % above 5k so the generated count clears the bar with
        // margin across seeds.
        Self::with_target_links(5_500, seed)
    }

    /// Derives a configuration aiming at approximately `target_links`
    /// measured AS-level links (the unit the estimators see).
    ///
    /// The measured link count scales with the number of ASes — every AS
    /// adjacency contributes inter-domain links and every traversed AS
    /// contributes intra-domain segments — provided enough paths are routed
    /// to keep touching fresh ASes. The constants below were calibrated
    /// empirically at this geometry (≈14.6 measured links per AS at 1.5
    /// paths per target link) and hold within ±35 % from a few hundred to
    /// several thousand links.
    pub fn with_target_links(target_links: usize, seed: u64) -> Self {
        let target_links = target_links.max(50);
        let num_ases = (target_links / 14).max(8);
        // Scale the path budget with the target so coverage keeps up, with
        // the default's 1.5 paths-per-link ratio.
        let num_paths = (target_links * 3) / 2;
        Self {
            num_ases,
            routers_per_as: 12,
            as_peering_degree: 2,
            extra_intra_edges_per_router: 1,
            peering_links_per_adjacency: 2,
            num_paths,
            seed,
        }
    }
}

/// Configuration of the traceroute-derived sparse-topology synthesizer
/// ([`crate::SparseGenerator`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SparseConfig {
    /// Number of Autonomous Systems in the underlying Internet model. Much
    /// larger than the Brite case so that measured paths rarely meet.
    pub num_ases: usize,
    /// Number of routers per AS.
    pub routers_per_as: usize,
    /// Barabási–Albert attachment parameter of the underlying AS graph.
    pub as_peering_degree: usize,
    /// Extra intra-AS router edges per router.
    pub extra_intra_edges_per_router: usize,
    /// Number of router-level peering links per AS adjacency.
    pub peering_links_per_adjacency: usize,
    /// Number of vantage points (end-hosts inside the source ISP) that run
    /// traceroutes. The paper's operator used "a few".
    pub num_vantage_points: usize,
    /// Number of traceroutes attempted. Some are discarded (see
    /// `discard_probability`), so this is an upper bound on the number of
    /// measured paths.
    pub num_traceroutes: usize,
    /// Probability that a traceroute is incomplete and discarded, mimicking
    /// unresponsive routers and load balancing artifacts.
    pub discard_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SparseConfig {
    fn default() -> Self {
        // Sized to produce roughly 2000 AS-level links and ~1500 surviving
        // paths, like the representative Sparse topology of §3.2.
        Self {
            num_ases: 450,
            routers_per_as: 6,
            as_peering_degree: 1,
            extra_intra_edges_per_router: 1,
            peering_links_per_adjacency: 1,
            num_vantage_points: 3,
            num_traceroutes: 1900,
            discard_probability: 0.2,
            seed: 1,
        }
    }
}

impl SparseConfig {
    /// A much smaller instance for unit tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        Self {
            num_ases: 30,
            routers_per_as: 3,
            as_peering_degree: 1,
            extra_intra_edges_per_router: 0,
            peering_links_per_adjacency: 1,
            num_vantage_points: 2,
            num_traceroutes: 80,
            discard_probability: 0.2,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_sized() {
        let b = BriteConfig::default();
        assert_eq!(b.num_paths, 1500);
        let s = SparseConfig::default();
        assert!(s.num_ases > b.num_ases);
        assert!(s.discard_probability > 0.0 && s.discard_probability < 1.0);
    }

    #[test]
    fn configs_serialize_round_trip() {
        let b = BriteConfig::tiny(7);
        let json = serde_json::to_string(&b).unwrap();
        let back: BriteConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, 7);
        assert_eq!(back.num_ases, b.num_ases);
    }
}
