//! Traceroute-derived sparse-topology synthesizer.
//!
//! The "Sparse topologies" of §3.2 are real topologies assembled by the
//! source ISP's operator: a few end-hosts inside the source network ran
//! traceroutes toward a large number of external destinations; incomplete
//! traceroutes were discarded; IP routers were mapped to ASes to obtain an
//! AS-level graph of ≈2000 links and 1500 paths where *few paths intersect
//! one another*.
//!
//! We cannot obtain the proprietary traces, so this module mimics the
//! collection process over a synthetic Internet: the AS universe is much
//! larger than in the Brite case (destinations land in mostly-distinct ASes,
//! so paths only share links near the source), only a handful of vantage
//! points are used, and a configurable fraction of traceroutes is discarded
//! as incomplete. The resulting measured network reproduces the property the
//! paper's argument hinges on: a low-rank tomography system in which
//! Identifiability++ fails for many correlation subsets.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use tomo_graph::{GraphError, Network};

use crate::config::SparseConfig;
use crate::routing::{build_router_graph, pick_destinations, MeasuredNetworkBuilder, RouterGraph};

/// Generator for traceroute-derived sparse topologies.
#[derive(Clone, Debug)]
pub struct SparseGenerator {
    config: SparseConfig,
}

impl SparseGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: SparseConfig) -> Self {
        Self { config }
    }

    /// Creates a generator with the paper-sized default configuration.
    pub fn paper_sized(seed: u64) -> Self {
        Self::new(SparseConfig {
            seed,
            ..SparseConfig::default()
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SparseConfig {
        &self.config
    }

    /// Generates the underlying router-level graph.
    pub fn router_graph(&self) -> (RouterGraph, StdRng) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let g = build_router_graph(
            &mut rng,
            self.config.num_ases,
            self.config.routers_per_as,
            self.config.as_peering_degree,
            self.config.extra_intra_edges_per_router,
            self.config.peering_links_per_adjacency,
        );
        (g, rng)
    }

    /// Generates the measured AS-level [`Network`] by simulating the
    /// operator's traceroute campaign.
    pub fn generate(&self) -> Result<Network, GraphError> {
        let (graph, mut rng) = self.router_graph();
        let source_as = 0usize;
        let mut mb = MeasuredNetworkBuilder::new();

        // The operator ran traceroutes from a few end-hosts inside her
        // network: restrict to a handful of vantage routers.
        let mut vantage = graph.as_members[source_as].clone();
        vantage.shuffle(&mut rng);
        vantage.truncate(self.config.num_vantage_points.max(1));

        let destinations =
            pick_destinations(&mut rng, &graph, source_as, self.config.num_traceroutes);

        for (i, &dst) in destinations.iter().enumerate() {
            // Incomplete traceroutes (unresponsive routers, load balancing)
            // are discarded, exactly as the operator did.
            if rng.gen_bool(self.config.discard_probability) {
                continue;
            }
            let src = vantage[i % vantage.len()];
            let Some(route) = graph.shortest_path(src, dst) else {
                continue;
            };
            let _ = mb.add_route(&graph, &route);
        }

        mb.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brite::BriteGenerator;
    use crate::config::BriteConfig;
    use crate::topology_stats;

    #[test]
    fn tiny_sparse_generates_valid_network() {
        let net = SparseGenerator::new(SparseConfig::tiny(11))
            .generate()
            .expect("generation succeeds");
        let stats = topology_stats(&net);
        assert!(stats.num_links > 10);
        assert!(stats.num_paths > 10);
        assert!(stats.num_correlation_sets > 1);
    }

    #[test]
    fn sparse_is_sparser_than_brite() {
        // The defining property: in a sparse traceroute-derived topology few
        // paths intersect one another, so the fraction of links observed by
        // more than one path is markedly lower than in a dense Brite
        // topology of comparable path count.
        let sparse = SparseGenerator::new(SparseConfig::tiny(5))
            .generate()
            .unwrap();
        let brite = BriteGenerator::new(BriteConfig::tiny(5))
            .generate()
            .unwrap();
        let s = topology_stats(&sparse);
        let b = topology_stats(&brite);
        assert!(
            s.intersected_link_fraction < b.intersected_link_fraction,
            "sparse {s:?} should be sparser than brite {b:?}"
        );
    }

    #[test]
    fn discarding_reduces_path_count() {
        let mut keep_all = SparseConfig::tiny(3);
        keep_all.discard_probability = 0.0;
        let mut drop_most = SparseConfig::tiny(3);
        drop_most.discard_probability = 0.8;
        let full = SparseGenerator::new(keep_all).generate().unwrap();
        let pruned = SparseGenerator::new(drop_most).generate().unwrap();
        assert!(pruned.num_paths() < full.num_paths());
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = SparseGenerator::new(SparseConfig::tiny(9))
            .generate()
            .unwrap();
        let b = SparseGenerator::new(SparseConfig::tiny(9))
            .generate()
            .unwrap();
        assert_eq!(a.num_links(), b.num_links());
        assert_eq!(a.num_paths(), b.num_paths());
    }
}
