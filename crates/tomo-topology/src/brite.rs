//! BRITE-style dense topology generator.
//!
//! Reproduces the role of the "Brite topologies" in §3.2 of the paper: a
//! synthetic two-level topology (AS-level + router-level) with ≈1000 AS-level
//! links and 1500 measurement paths, dense enough that paths criss-cross and
//! the tomography system has high rank.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tomo_graph::{GraphError, Network};

use crate::config::BriteConfig;
use crate::routing::{build_router_graph, pick_destinations, MeasuredNetworkBuilder, RouterGraph};

/// Generator for BRITE-style dense topologies.
#[derive(Clone, Debug)]
pub struct BriteGenerator {
    config: BriteConfig,
}

impl BriteGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: BriteConfig) -> Self {
        Self { config }
    }

    /// Creates a generator with the paper-sized default configuration.
    pub fn paper_sized(seed: u64) -> Self {
        Self::new(BriteConfig {
            seed,
            ..BriteConfig::default()
        })
    }

    /// Creates a generator for a large random network aiming at
    /// approximately `target_links` measured links (see
    /// [`BriteConfig::with_target_links`]). `BriteGenerator::sized(5_000,
    /// seed)` and beyond are the sweep-scale instances; generation at that
    /// size is a release-mode affair.
    pub fn sized(target_links: usize, seed: u64) -> Self {
        Self::new(BriteConfig::with_target_links(target_links, seed))
    }

    /// The configuration in use.
    pub fn config(&self) -> &BriteConfig {
        &self.config
    }

    /// Generates the underlying router-level graph (exposed for tests and
    /// for the simulator's correlation analysis).
    pub fn router_graph(&self) -> (RouterGraph, StdRng) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let g = build_router_graph(
            &mut rng,
            self.config.num_ases,
            self.config.routers_per_as,
            self.config.as_peering_degree,
            self.config.extra_intra_edges_per_router,
            self.config.peering_links_per_adjacency,
        );
        (g, rng)
    }

    /// Generates the measured AS-level [`Network`].
    ///
    /// Measurement paths originate from end-hosts spread over *all* routers
    /// of the source AS (AS 0, the "source ISP") and terminate at routers
    /// picked uniformly over the other ASes; multiple vantage points and
    /// criss-crossing shortest paths give the density the Brite topologies
    /// exhibit in the paper.
    pub fn generate(&self) -> Result<Network, GraphError> {
        let (graph, mut rng) = self.router_graph();
        let source_as = 0usize;
        let mut mb = MeasuredNetworkBuilder::new();

        let sources = graph.as_members[source_as].clone();
        // Oversample destinations: some routes may collapse or loop. The
        // pool is cycled (destinations may be re-used from other vantage
        // points) so the requested path count is reached even when the
        // router universe is smaller than twice the path count.
        let destination_pool = pick_destinations(
            &mut rng,
            &graph,
            source_as,
            (self.config.num_paths * 2).max(16),
        );

        let mut added = 0usize;
        let mut di = 0usize;
        let max_attempts = self.config.num_paths * 8;
        while added < self.config.num_paths && di < max_attempts {
            let dst = destination_pool[di % destination_pool.len()];
            di += 1;
            let src = *sources.choose(&mut rng).expect("source AS has routers");
            let Some(route) = graph.shortest_path(src, dst) else {
                continue;
            };
            if mb.add_route(&graph, &route).is_some() {
                added += 1;
            }
            // Re-use destinations from several vantage points to create path
            // intersections (density): with probability 1/2 route a second
            // path to the same destination from a different source.
            if added < self.config.num_paths && di.is_multiple_of(2) {
                let src2 = *sources.choose(&mut rng).expect("source AS has routers");
                if src2 != src {
                    if let Some(route2) = graph.shortest_path(src2, dst) {
                        if mb.add_route(&graph, &route2).is_some() {
                            added += 1;
                        }
                    }
                }
            }
        }

        mb.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology_stats;

    #[test]
    fn tiny_brite_generates_valid_network() {
        let gen = BriteGenerator::new(BriteConfig::tiny(42));
        let net = gen.generate().expect("generation succeeds");
        let stats = topology_stats(&net);
        assert!(stats.num_links > 10, "stats: {stats:?}");
        assert!(stats.num_paths > 20, "stats: {stats:?}");
        assert!(stats.num_correlation_sets > 1);
        // Dense-ish: paths intersect (each link carries > 1 path on average).
        assert!(stats.mean_paths_per_link > 1.0, "stats: {stats:?}");
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = BriteGenerator::new(BriteConfig::tiny(7))
            .generate()
            .unwrap();
        let b = BriteGenerator::new(BriteConfig::tiny(7))
            .generate()
            .unwrap();
        assert_eq!(a.num_links(), b.num_links());
        assert_eq!(a.num_paths(), b.num_paths());
        for (la, lb) in a.links().iter().zip(b.links()) {
            assert_eq!(la, lb);
        }
        for (pa, pb) in a.paths().iter().zip(b.paths()) {
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = BriteGenerator::new(BriteConfig::tiny(1))
            .generate()
            .unwrap();
        let b = BriteGenerator::new(BriteConfig::tiny(2))
            .generate()
            .unwrap();
        // Not a hard guarantee in principle, but with these sizes the
        // probability of a collision is negligible; treat as a regression
        // canary for accidentally ignoring the seed.
        let same =
            a.num_links() == b.num_links() && a.paths().iter().zip(b.paths()).all(|(x, y)| x == y);
        assert!(!same);
    }

    #[test]
    fn sized_generator_hits_small_targets() {
        let net = BriteGenerator::sized(400, 11).generate().unwrap();
        let links = net.num_links();
        assert!(
            (260..=540).contains(&links),
            "target 400, got {links} links"
        );
        assert!(net.num_paths() > 100);
    }

    /// Sweep-scale calibration: `with_target_links(5000)` really produces a
    /// ≥5k-link measured network. Takes tens of seconds in debug mode, so it
    /// is ignored by default; CI and developers run it in release via
    /// `cargo test -p tomo-topology --release -- --ignored large_random`.
    #[test]
    #[ignore = "multi-second generation; run in release with -- --ignored"]
    fn large_random_network_reaches_5k_links() {
        let net = BriteGenerator::new(BriteConfig::large(1))
            .generate()
            .unwrap();
        let stats = topology_stats(&net);
        assert!(stats.num_links >= 5_000, "stats: {stats:?}");
        assert!(stats.num_paths >= 5_000, "stats: {stats:?}");
        assert!(stats.mean_paths_per_link > 1.0, "stats: {stats:?}");
    }

    #[test]
    fn every_link_has_router_annotations_and_as() {
        let net = BriteGenerator::new(BriteConfig::tiny(3))
            .generate()
            .unwrap();
        for link in net.links() {
            assert!(!link.router_links.is_empty());
        }
        // Correlation sets follow the per-AS grouping.
        for set in net.correlation_sets() {
            let asns: std::collections::BTreeSet<_> =
                set.links.iter().map(|&l| net.link(l).asn).collect();
            assert_eq!(asns.len(), 1);
        }
    }
}
