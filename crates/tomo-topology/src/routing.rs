//! Router-level graph machinery shared by the topology generators:
//! construction of the two-level (AS / router) model, shortest-path routing,
//! and segmentation of router-level routes into AS-level measured links.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use tomo_graph::{AsId, LinkId, Network, NetworkBuilder, NodeId, RouterLinkId};

/// A router in the underlying router-level graph.
#[derive(Clone, Debug)]
pub struct Router {
    /// Index of the router (its [`NodeId`] in the generated network).
    pub id: usize,
    /// The AS this router belongs to.
    pub asn: usize,
}

/// The underlying two-level model: routers grouped into ASes, with
/// router-level edges (intra-AS and inter-AS).
#[derive(Clone, Debug, Default)]
pub struct RouterGraph {
    /// All routers.
    pub routers: Vec<Router>,
    /// Undirected router-level edges as pairs of router indices. The index of
    /// an edge in this vector is its [`RouterLinkId`].
    pub edges: Vec<(usize, usize)>,
    /// Adjacency list: `adj[r]` = list of `(neighbor, edge_index)`.
    pub adj: Vec<Vec<(usize, usize)>>,
    /// `as_members[a]` = router indices belonging to AS `a`.
    pub as_members: Vec<Vec<usize>>,
    /// AS-level adjacencies (pairs of AS indices) created during generation.
    pub as_adjacencies: Vec<(usize, usize)>,
}

impl RouterGraph {
    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Adds a router to the given AS and returns its index.
    pub fn add_router(&mut self, asn: usize) -> usize {
        let id = self.routers.len();
        self.routers.push(Router { id, asn });
        self.adj.push(Vec::new());
        while self.as_members.len() <= asn {
            self.as_members.push(Vec::new());
        }
        self.as_members[asn].push(id);
        id
    }

    /// Adds an undirected router-level edge and returns its index. Parallel
    /// edges and self-loops are silently ignored (returns the existing edge
    /// index, or `None`-like sentinel by returning the new index anyway is
    /// avoided: we simply skip duplicates).
    pub fn add_edge(&mut self, a: usize, b: usize) -> Option<usize> {
        if a == b {
            return None;
        }
        if self.adj[a].iter().any(|&(n, _)| n == b) {
            return None;
        }
        let idx = self.edges.len();
        self.edges.push((a.min(b), a.max(b)));
        self.adj[a].push((b, idx));
        self.adj[b].push((a, idx));
        Some(idx)
    }

    /// Breadth-first shortest path between two routers; returns the sequence
    /// of router indices (inclusive of both endpoints), or `None` if the
    /// routers are disconnected. Ties are broken deterministically by
    /// neighbor order.
    pub fn shortest_path(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        if src == dst {
            return Some(vec![src]);
        }
        let n = self.num_routers();
        let mut prev: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[src] = true;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            if u == dst {
                break;
            }
            for &(v, _) in &self.adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    prev[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        if !visited[dst] {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while let Some(p) = prev[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], src);
        Some(path)
    }

    /// Looks up the edge index between two adjacent routers.
    pub fn edge_between(&self, a: usize, b: usize) -> Option<usize> {
        self.adj[a].iter().find(|&&(n, _)| n == b).map(|&(_, e)| e)
    }
}

/// Builds the underlying two-level router graph:
///
/// 1. AS-level Barabási–Albert graph over `num_ases` ASes (each new AS peers
///    with `as_peering_degree` existing ASes chosen preferentially by
///    degree);
/// 2. per AS, `routers_per_as` routers connected by a random spanning tree
///    plus `extra_intra_edges_per_router` random extra edges;
/// 3. per AS adjacency, `peering_links_per_adjacency` router-level peering
///    edges between randomly chosen border routers.
#[allow(clippy::too_many_arguments)]
pub fn build_router_graph(
    rng: &mut StdRng,
    num_ases: usize,
    routers_per_as: usize,
    as_peering_degree: usize,
    extra_intra_edges_per_router: usize,
    peering_links_per_adjacency: usize,
) -> RouterGraph {
    assert!(num_ases >= 2, "need at least two ASes");
    assert!(routers_per_as >= 1, "need at least one router per AS");

    let mut g = RouterGraph::default();

    // --- Routers and intra-AS connectivity ---------------------------------
    for asn in 0..num_ases {
        let first = g.num_routers();
        for _ in 0..routers_per_as {
            g.add_router(asn);
        }
        let members: Vec<usize> = (first..first + routers_per_as).collect();
        // Random spanning tree: connect each router (after the first) to a
        // random earlier router of the same AS.
        for (i, &r) in members.iter().enumerate().skip(1) {
            let target = members[rng.gen_range(0..i)];
            g.add_edge(r, target);
        }
        // Extra redundancy edges.
        if members.len() >= 3 {
            for &r in &members {
                for _ in 0..extra_intra_edges_per_router {
                    let target = *members.choose(rng).expect("non-empty");
                    g.add_edge(r, target);
                }
            }
        }
    }

    // --- AS-level Barabási–Albert peering ----------------------------------
    // degree_pool holds one entry per incident peering for preferential
    // attachment.
    let mut degree_pool: Vec<usize> = Vec::new();
    let mut as_adj: Vec<Vec<usize>> = vec![Vec::new(); num_ases];
    for new_as in 1..num_ases {
        let m = as_peering_degree.min(new_as);
        let mut chosen: Vec<usize> = Vec::new();
        let mut guard = 0;
        while chosen.len() < m && guard < 1000 {
            guard += 1;
            let candidate = if degree_pool.is_empty() || rng.gen_bool(0.3) {
                rng.gen_range(0..new_as)
            } else {
                degree_pool[rng.gen_range(0..degree_pool.len())]
            };
            if candidate != new_as && !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        for peer in chosen {
            as_adj[new_as].push(peer);
            as_adj[peer].push(new_as);
            degree_pool.push(new_as);
            degree_pool.push(peer);
            g.as_adjacencies.push((peer.min(new_as), peer.max(new_as)));
        }
    }

    // --- Router-level peering links ----------------------------------------
    let adjacencies = g.as_adjacencies.clone();
    for (a, b) in adjacencies {
        for _ in 0..peering_links_per_adjacency.max(1) {
            let ra = *g.as_members[a].choose(rng).expect("AS has routers");
            let rb = *g.as_members[b].choose(rng).expect("AS has routers");
            g.add_edge(ra, rb);
        }
    }

    g
}

/// Incrementally builds the *measured* AS-level network out of router-level
/// routes: every maximal intra-AS segment of a route becomes (or reuses) an
/// intra-domain AS-level link, every AS-crossing router edge becomes (or
/// reuses) an inter-domain AS-level link.
#[derive(Default)]
pub struct MeasuredNetworkBuilder {
    builder: NetworkBuilder,
    /// Maps a canonical (router_a, router_b) endpoint pair to the AS-level
    /// link already created for it.
    link_index: HashMap<(usize, usize), LinkId>,
    paths_added: usize,
}

impl MeasuredNetworkBuilder {
    /// Creates an empty measured-network builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern_link(
        &mut self,
        graph: &RouterGraph,
        a: usize,
        b: usize,
        asn: usize,
        router_edges: Vec<usize>,
    ) -> LinkId {
        let key = (a.min(b), a.max(b));
        if let Some(&id) = self.link_index.get(&key) {
            return id;
        }
        let id = self.builder.add_link_with_routers(
            NodeId(a),
            NodeId(b),
            AsId(asn),
            router_edges.into_iter().map(RouterLinkId).collect(),
        );
        let _ = graph;
        self.link_index.insert(key, id);
        id
    }

    /// Converts a router-level route into a sequence of AS-level links,
    /// interning links as needed, and records it as a measurement path.
    /// Returns `None` (recording nothing) if the route collapses to zero
    /// AS-level links or revisits an AS-level link (a loop at the measured
    /// level).
    pub fn add_route(&mut self, graph: &RouterGraph, route: &[usize]) -> Option<Vec<LinkId>> {
        if route.len() < 2 {
            return None;
        }
        let mut links: Vec<LinkId> = Vec::new();
        let mut segment_start = 0usize;
        for i in 0..route.len() - 1 {
            let u = route[i];
            let v = route[i + 1];
            let as_u = graph.routers[u].asn;
            let as_v = graph.routers[v].asn;
            if as_u == as_v {
                continue;
            }
            // Close the intra-AS segment [segment_start ..= i] if it spans
            // more than one router.
            if route[segment_start] != u {
                let seg: Vec<usize> = (segment_start..i)
                    .map(|k| {
                        graph
                            .edge_between(route[k], route[k + 1])
                            .expect("route follows edges")
                    })
                    .collect();
                let id = self.intern_link(graph, route[segment_start], u, as_u, seg);
                links.push(id);
            }
            // The inter-AS crossing itself. We attribute the inter-domain
            // link to the downstream AS (the peer being entered), matching
            // the paper's view that the source ISP monitors its peers'
            // inter-domain links.
            let crossing = graph.edge_between(u, v).expect("route follows edges");
            let id = self.intern_link(graph, u, v, as_v, vec![crossing]);
            links.push(id);
            segment_start = i + 1;
        }
        // Final intra-AS segment down to the destination router.
        let last = route.len() - 1;
        if segment_start < last {
            let as_last = graph.routers[route[last]].asn;
            let seg: Vec<usize> = (segment_start..last)
                .map(|k| {
                    graph
                        .edge_between(route[k], route[k + 1])
                        .expect("route follows edges")
                })
                .collect();
            let id = self.intern_link(graph, route[segment_start], route[last], as_last, seg);
            links.push(id);
        }

        if links.is_empty() {
            return None;
        }
        // Reject measured-level loops (a link repeated within one path).
        let mut seen = std::collections::HashSet::new();
        if !links.iter().all(|l| seen.insert(*l)) {
            return None;
        }
        self.builder.add_path(
            NodeId(route[0]),
            NodeId(*route.last().expect("non-empty")),
            links.clone(),
        );
        self.paths_added += 1;
        Some(links)
    }

    /// Number of AS-level links interned so far.
    pub fn num_links(&self) -> usize {
        self.builder.num_links()
    }

    /// Number of measurement paths recorded so far.
    pub fn num_paths(&self) -> usize {
        self.paths_added
    }

    /// Finalizes the measured network (per-AS correlation sets).
    pub fn build(self) -> Result<Network, tomo_graph::GraphError> {
        self.builder.build()
    }
}

/// Picks `count` distinct destination routers outside the source AS,
/// uniformly at random.
pub fn pick_destinations(
    rng: &mut StdRng,
    graph: &RouterGraph,
    source_as: usize,
    count: usize,
) -> Vec<usize> {
    let candidates: Vec<usize> = graph
        .routers
        .iter()
        .filter(|r| r.asn != source_as)
        .map(|r| r.id)
        .collect();
    let mut picked = candidates;
    picked.shuffle(rng);
    picked.truncate(count);
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_graph(seed: u64) -> RouterGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        build_router_graph(&mut rng, 6, 4, 2, 1, 1)
    }

    #[test]
    fn router_graph_has_expected_size() {
        let g = small_graph(3);
        assert_eq!(g.num_routers(), 24);
        assert_eq!(g.as_members.len(), 6);
        assert!(g.as_members.iter().all(|m| m.len() == 4));
        assert!(!g.as_adjacencies.is_empty());
    }

    #[test]
    fn shortest_path_connects_peered_ases() {
        let g = small_graph(4);
        // The BA construction attaches every AS to at least one earlier AS,
        // so the whole graph is connected: any two routers have a path.
        let src = g.as_members[0][0];
        let dst = g.as_members[5][0];
        let path = g.shortest_path(src, dst).expect("graph is connected");
        assert_eq!(path[0], src);
        assert_eq!(*path.last().unwrap(), dst);
        // Consecutive routers are adjacent.
        for w in path.windows(2) {
            assert!(g.edge_between(w[0], w[1]).is_some());
        }
    }

    #[test]
    fn shortest_path_trivial_and_disconnected_cases() {
        let mut g = RouterGraph::default();
        let a = g.add_router(0);
        let b = g.add_router(1);
        assert_eq!(g.shortest_path(a, a), Some(vec![a]));
        assert_eq!(g.shortest_path(a, b), None);
    }

    #[test]
    fn add_edge_rejects_loops_and_duplicates() {
        let mut g = RouterGraph::default();
        let a = g.add_router(0);
        let b = g.add_router(0);
        assert!(g.add_edge(a, a).is_none());
        assert!(g.add_edge(a, b).is_some());
        assert!(g.add_edge(b, a).is_none());
        assert_eq!(g.edges.len(), 1);
    }

    #[test]
    fn measured_builder_segments_routes_by_as() {
        let g = small_graph(5);
        let mut mb = MeasuredNetworkBuilder::new();
        let src = g.as_members[0][0];
        let dst = g.as_members[4][1];
        let route = g.shortest_path(src, dst).expect("connected");
        let links = mb.add_route(&g, &route).expect("route yields links");
        assert!(!links.is_empty());
        // Adding the same route twice must reuse the interned links.
        let before = mb.num_links();
        let _ = mb.add_route(&g, &route);
        assert_eq!(mb.num_links(), before);
        assert_eq!(mb.num_paths(), 2);
        let net = mb.build().expect("valid network");
        assert_eq!(net.num_paths(), 2);
        // Router-level annotations must be present on every link.
        assert!(net.links().iter().all(|l| !l.router_links.is_empty()));
    }

    #[test]
    fn pick_destinations_excludes_source_as() {
        let g = small_graph(6);
        let mut rng = StdRng::seed_from_u64(9);
        let dests = pick_destinations(&mut rng, &g, 0, 10);
        assert_eq!(dests.len(), 10);
        assert!(dests.iter().all(|&d| g.routers[d].asn != 0));
    }
}
