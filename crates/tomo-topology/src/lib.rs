//! Topology substrate for the network-tomography reproduction.
//!
//! The paper evaluates its algorithms on two families of topologies (§3.2):
//!
//! * **Brite topologies** — synthetic two-level (AS-level + router-level)
//!   topologies produced by the BRITE generator, with ≈1000 AS-level links
//!   and 1500 measurement paths. These are relatively *dense*: paths
//!   criss-cross, the tomography system has high rank, and
//!   Identifiability++ holds.
//! * **Sparse topologies** — real topologies collected by the source ISP's
//!   operator by running traceroutes from a few vantage points toward many
//!   Internet destinations and discarding incomplete traceroutes, yielding
//!   ≈2000 AS-level links and 1500 paths where *few paths intersect*.
//!
//! Neither artifact is available (BRITE is an external C++/Java tool, the
//! Sparse topologies are proprietary), so this crate rebuilds both:
//!
//! * [`brite::BriteGenerator`] — a BRITE-style top-down generator: a
//!   Barabási–Albert AS-level graph, Waxman-ish router-level graphs per AS,
//!   inter-AS peering links, and shortest-path routed measurement paths from
//!   one source AS.
//! * [`sparse::SparseGenerator`] — mimics the operator's collection process:
//!   few vantage points, many destinations spread over a much larger AS
//!   universe, a configurable fraction of traceroutes discarded as
//!   incomplete, producing a topology where most links carry very few paths.
//!
//! Both generators output a [`tomo_graph::Network`] whose AS-level links are
//! annotated with the underlying router-level links they traverse — the
//! information the simulator uses to induce link correlations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brite;
pub mod config;
pub mod routing;
pub mod sparse;

pub use brite::BriteGenerator;
pub use config::{BriteConfig, SparseConfig};
pub use sparse::SparseGenerator;

use tomo_graph::Network;

/// Summary statistics of a generated topology, used by the experiment
/// reports to document how dense/sparse each instance is.
#[derive(Clone, Debug, PartialEq)]
pub struct TopologyStats {
    /// Number of AS-level links.
    pub num_links: usize,
    /// Number of measurement paths.
    pub num_paths: usize,
    /// Number of correlation sets (= number of ASes observed).
    pub num_correlation_sets: usize,
    /// Mean number of links per path.
    pub mean_path_length: f64,
    /// Mean number of paths per link — a density indicator.
    pub mean_paths_per_link: f64,
    /// Fraction of links traversed by two or more paths — the key
    /// "criss-crossing" indicator: it is high for dense Brite topologies and
    /// low for sparse traceroute-derived ones, where most links are seen by a
    /// single path.
    pub intersected_link_fraction: f64,
}

/// Computes [`TopologyStats`] for a network.
pub fn topology_stats(net: &Network) -> TopologyStats {
    let intersected = net
        .link_ids()
        .filter(|&l| net.paths_through_link(l).len() >= 2)
        .count();
    TopologyStats {
        num_links: net.num_links(),
        num_paths: net.num_paths(),
        num_correlation_sets: net.correlation_sets().len(),
        mean_path_length: net.mean_path_length(),
        mean_paths_per_link: net.mean_paths_per_link(),
        intersected_link_fraction: if net.num_links() == 0 {
            0.0
        } else {
            intersected as f64 / net.num_links() as f64
        },
    }
}
