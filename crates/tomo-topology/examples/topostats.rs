use tomo_topology::*;
fn main() {
    let t0 = std::time::Instant::now();
    let b = BriteGenerator::paper_sized(1).generate().unwrap();
    let s = SparseGenerator::paper_sized(1).generate().unwrap();
    println!("brite: {:?} ({:?})", topology_stats(&b), t0.elapsed());
    println!("sparse: {:?}", topology_stats(&s));
}
