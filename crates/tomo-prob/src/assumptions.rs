//! Algorithm metadata: the assumptions, conditions and approximations each
//! algorithm relies on — the rows of Table 2 of the paper.

use serde::{Deserialize, Serialize};

/// The sources of inaccuracy of a tomography algorithm (Table 2).
///
/// `true` means the algorithm relies on the corresponding assumption /
/// condition / approximation and can therefore be wrong when it does not
/// hold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlgorithmAssumptions {
    /// Assumption 1: a path is good iff all its links are good.
    pub separability: bool,
    /// Assumption 2: end-to-end measurements reveal whether a path is good.
    pub e2e_monitoring: bool,
    /// Assumption 3: all links are equally likely to be congested.
    pub homogeneity: bool,
    /// Assumption 4: all links are independent.
    pub independence: bool,
    /// Assumption 5: links are grouped into known correlation sets.
    pub correlation_sets: bool,
    /// Condition 1: no two links are traversed by the same paths.
    pub identifiability: bool,
    /// Condition 2: no two correlation subsets are traversed by the same
    /// paths.
    pub identifiability_pp: bool,
    /// The algorithm additionally relies on an approximation or heuristic
    /// (e.g. an approximate MAP solver, or approximating a random variable by
    /// its expected value).
    pub other_approximation: bool,
}

impl AlgorithmAssumptions {
    /// The assumption set of the *Sparsity* Boolean-Inference algorithm.
    pub fn sparsity() -> Self {
        Self {
            separability: true,
            e2e_monitoring: true,
            homogeneity: true,
            identifiability: true,
            other_approximation: true,
            ..Self::default()
        }
    }

    /// The assumption set of *Bayesian-Independence* (CLINK).
    pub fn bayesian_independence() -> Self {
        Self {
            separability: true,
            e2e_monitoring: true,
            independence: true,
            identifiability: true,
            other_approximation: true,
            ..Self::default()
        }
    }

    /// The assumption set of *Bayesian-Correlation*.
    pub fn bayesian_correlation() -> Self {
        Self {
            separability: true,
            e2e_monitoring: true,
            correlation_sets: true,
            identifiability: true,
            identifiability_pp: true,
            other_approximation: true,
            ..Self::default()
        }
    }

    /// The assumption set of the *Independence* Probability-Computation
    /// algorithm (CLINK's first step).
    pub fn independence_step() -> Self {
        Self {
            separability: true,
            e2e_monitoring: true,
            independence: true,
            identifiability: true,
            ..Self::default()
        }
    }

    /// The assumption set of the *Correlation-heuristic* Probability-
    /// Computation algorithm (IMC 2010).
    pub fn correlation_heuristic() -> Self {
        Self {
            separability: true,
            e2e_monitoring: true,
            correlation_sets: true,
            identifiability_pp: true,
            other_approximation: true,
            ..Self::default()
        }
    }

    /// The assumption set of *Correlation-complete* (this paper, §5).
    pub fn correlation_complete() -> Self {
        Self {
            separability: true,
            e2e_monitoring: true,
            correlation_sets: true,
            identifiability_pp: true,
            ..Self::default()
        }
    }

    /// Number of assumptions/conditions/approximations relied upon.
    pub fn count(&self) -> usize {
        [
            self.separability,
            self.e2e_monitoring,
            self.homogeneity,
            self.independence,
            self.correlation_sets,
            self.identifiability,
            self.identifiability_pp,
            self.other_approximation,
        ]
        .iter()
        .filter(|&&b| b)
        .count()
    }

    /// Row labels in the order of Table 2, paired with whether this
    /// algorithm relies on them.
    pub fn rows(&self) -> Vec<(&'static str, bool)> {
        vec![
            ("Separability", self.separability),
            ("E2E Monitoring", self.e2e_monitoring),
            ("Homogeneity", self.homogeneity),
            ("Independence", self.independence),
            ("Correlation Sets", self.correlation_sets),
            ("Identifiability", self.identifiability),
            ("Identifiability++", self.identifiability_pp),
            ("Other approx./heuristic", self.other_approximation),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everyone_assumes_separability_and_e2e() {
        for a in [
            AlgorithmAssumptions::sparsity(),
            AlgorithmAssumptions::bayesian_independence(),
            AlgorithmAssumptions::bayesian_correlation(),
            AlgorithmAssumptions::independence_step(),
            AlgorithmAssumptions::correlation_heuristic(),
            AlgorithmAssumptions::correlation_complete(),
        ] {
            assert!(a.separability);
            assert!(a.e2e_monitoring);
        }
    }

    #[test]
    fn only_sparsity_assumes_homogeneity() {
        assert!(AlgorithmAssumptions::sparsity().homogeneity);
        assert!(!AlgorithmAssumptions::bayesian_independence().homogeneity);
        assert!(!AlgorithmAssumptions::correlation_complete().homogeneity);
    }

    #[test]
    fn correlation_complete_has_the_weakest_assumption_set() {
        // §4: our algorithm assumes Separability, E2E Monitoring and
        // Correlation Sets, and needs no NP-complete step or expected-value
        // approximation.
        let ours = AlgorithmAssumptions::correlation_complete();
        assert!(!ours.independence);
        assert!(!ours.homogeneity);
        assert!(!ours.other_approximation);
        assert!(ours.count() <= AlgorithmAssumptions::bayesian_correlation().count());
        assert!(ours.count() < AlgorithmAssumptions::correlation_heuristic().count());
    }

    #[test]
    fn rows_cover_all_of_table2() {
        let rows = AlgorithmAssumptions::sparsity().rows();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].0, "Separability");
        assert_eq!(rows[7].0, "Other approx./heuristic");
    }
}
