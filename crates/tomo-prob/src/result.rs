//! The output of a Probability Computation algorithm.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use tomo_graph::LinkId;

/// Diagnostics describing how an estimate was produced.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EstimateDiagnostics {
    /// Number of equations in the solved system.
    pub num_equations: usize,
    /// Number of unknowns (including auxiliary subsets, if any).
    pub num_unknowns: usize,
    /// Rank of the system over the *target* unknowns (when known).
    pub rank: usize,
    /// Number of target unknowns that were identifiable.
    pub identifiable_targets: usize,
    /// Total number of target unknowns.
    pub total_targets: usize,
}

/// Congestion-probability estimates for links and correlation subsets.
///
/// Every algorithm reports per-link congestion probabilities; the
/// correlation-aware algorithms additionally report the good-probability of
/// multi-link correlation subsets, from which the congestion probability of
/// any subset of a correlation set follows by inclusion–exclusion (see
/// [`ProbabilityEstimate::subset_congestion_probability`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProbabilityEstimate {
    /// Name of the algorithm that produced the estimate.
    pub algorithm: String,
    /// `P(X_e = 1)` per link (0 for links never estimated, e.g. always-good
    /// or unobserved links).
    link_congestion: Vec<f64>,
    /// Whether each link's probability is identifiable from the data.
    link_identifiable: Vec<bool>,
    /// `P(∩_{e∈E} X_e = 0)` for the estimated correlation subsets.
    #[serde(with = "subset_map_serde")]
    subset_good: BTreeMap<BTreeSet<LinkId>, f64>,
    /// Identifiability of each estimated correlation subset.
    #[serde(with = "subset_map_serde")]
    subset_identifiable: BTreeMap<BTreeSet<LinkId>, bool>,
    /// When `true`, missing subset probabilities are reconstructed assuming
    /// link independence (used by the Independence baseline, which estimates
    /// only per-link probabilities).
    pub independence_fallback: bool,
    /// Solver/selection diagnostics.
    pub diagnostics: EstimateDiagnostics,
}

impl ProbabilityEstimate {
    /// Creates an empty estimate for `num_links` links.
    pub fn new(algorithm: impl Into<String>, num_links: usize) -> Self {
        Self {
            algorithm: algorithm.into(),
            link_congestion: vec![0.0; num_links],
            link_identifiable: vec![false; num_links],
            subset_good: BTreeMap::new(),
            subset_identifiable: BTreeMap::new(),
            independence_fallback: false,
            diagnostics: EstimateDiagnostics::default(),
        }
    }

    /// Number of links covered by the estimate.
    pub fn num_links(&self) -> usize {
        self.link_congestion.len()
    }

    /// Records the congestion probability of a link.
    pub fn set_link(&mut self, link: LinkId, congestion_probability: f64, identifiable: bool) {
        self.link_congestion[link.index()] = congestion_probability.clamp(0.0, 1.0);
        self.link_identifiable[link.index()] = identifiable;
    }

    /// Records the good-probability of a correlation subset.
    pub fn set_subset_good(
        &mut self,
        links: impl IntoIterator<Item = LinkId>,
        good_probability: f64,
        identifiable: bool,
    ) {
        let key: BTreeSet<LinkId> = links.into_iter().collect();
        if key.len() == 1 {
            let l = *key.iter().next().expect("singleton");
            self.set_link(l, 1.0 - good_probability.clamp(0.0, 1.0), identifiable);
        }
        self.subset_good
            .insert(key.clone(), good_probability.clamp(0.0, 1.0));
        self.subset_identifiable.insert(key, identifiable);
    }

    /// `P(X_e = 1)` for a link.
    pub fn link_congestion_probability(&self, link: LinkId) -> f64 {
        self.link_congestion[link.index()]
    }

    /// Whether the link's probability was identifiable.
    pub fn link_is_identifiable(&self, link: LinkId) -> bool {
        self.link_identifiable[link.index()]
    }

    /// The estimated good-probability `P(∩_{e∈E} X_e = 0)` of a set of links,
    /// if available (directly estimated, a singleton, or reconstructible via
    /// the independence fallback).
    pub fn subset_good_probability(&self, links: &[LinkId]) -> Option<f64> {
        let key: BTreeSet<LinkId> = links.iter().copied().collect();
        if key.is_empty() {
            return Some(1.0);
        }
        if let Some(&g) = self.subset_good.get(&key) {
            return Some(g);
        }
        if key.len() == 1 {
            let l = *key.iter().next().expect("singleton");
            return Some(1.0 - self.link_congestion[l.index()]);
        }
        if self.independence_fallback {
            return Some(
                key.iter()
                    .map(|l| 1.0 - self.link_congestion[l.index()])
                    .product(),
            );
        }
        None
    }

    /// The estimated congestion probability `P(∩_{e∈E} X_e = 1)` of a set of
    /// links, computed by inclusion–exclusion over the good-probabilities of
    /// its subsets:
    ///
    /// ```text
    /// P(∩ X_e = 1) = Σ_{S ⊆ E} (−1)^{|S|} P(∩_{e∈S} X_e = 0)
    /// ```
    ///
    /// Returns `None` when some required subset probability is unavailable.
    pub fn subset_congestion_probability(&self, links: &[LinkId]) -> Option<f64> {
        let unique: Vec<LinkId> = {
            let s: BTreeSet<LinkId> = links.iter().copied().collect();
            s.into_iter().collect()
        };
        let n = unique.len();
        if n == 0 {
            return Some(0.0);
        }
        if n > 20 {
            return None; // inclusion-exclusion over 2^n terms is unreasonable
        }
        let mut total = 0.0;
        for mask in 0u32..(1 << n) {
            let subset: Vec<LinkId> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| unique[i])
                .collect();
            let g = self.subset_good_probability(&subset)?;
            let sign = if subset.len().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            total += sign * g;
        }
        Some(total.clamp(0.0, 1.0))
    }

    /// Whether a subset's probability was identifiable (singletons fall back
    /// to the link flag).
    pub fn subset_is_identifiable(&self, links: &[LinkId]) -> bool {
        let key: BTreeSet<LinkId> = links.iter().copied().collect();
        if let Some(&b) = self.subset_identifiable.get(&key) {
            return b;
        }
        if key.len() == 1 {
            return self.link_is_identifiable(*key.iter().next().expect("singleton"));
        }
        false
    }

    /// The multi-link correlation subsets with a directly estimated
    /// good-probability.
    pub fn estimated_subsets(&self) -> impl Iterator<Item = (&BTreeSet<LinkId>, f64)> {
        self.subset_good.iter().map(|(k, &v)| (k, v))
    }

    /// Number of directly estimated subsets (all sizes).
    pub fn num_estimated_subsets(&self) -> usize {
        self.subset_good.len()
    }
}

/// Serializes `BTreeMap<BTreeSet<LinkId>, V>` as a list of `(links, value)`
/// pairs, so the estimate can be written to JSON (whose object keys must be
/// strings).
mod subset_map_serde {
    use super::*;
    use serde::{Deserialize, Error, Value};

    pub fn to_value<V: Serialize>(map: &BTreeMap<BTreeSet<LinkId>, V>) -> Value {
        let pairs: Vec<(Vec<LinkId>, &V)> = map
            .iter()
            .map(|(k, v)| (k.iter().copied().collect(), v))
            .collect();
        pairs.to_value()
    }

    pub fn from_value<V: Deserialize>(v: &Value) -> Result<BTreeMap<BTreeSet<LinkId>, V>, Error> {
        let pairs: Vec<(Vec<LinkId>, V)> = Vec::from_value(v)?;
        Ok(pairs
            .into_iter()
            .map(|(k, v)| (k.into_iter().collect(), v))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_serializes_to_json() {
        let mut est = ProbabilityEstimate::new("test", 3);
        est.set_subset_good([LinkId(0), LinkId(2)], 0.7, true);
        est.set_link(LinkId(1), 0.2, true);
        let json = serde_json::to_string(&est).expect("serializes");
        let back: ProbabilityEstimate = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(
            back.subset_good_probability(&[LinkId(0), LinkId(2)]),
            Some(0.7)
        );
        assert!((back.link_congestion_probability(LinkId(1)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn link_roundtrip_and_clamping() {
        let mut est = ProbabilityEstimate::new("test", 3);
        est.set_link(LinkId(1), 0.4, true);
        est.set_link(LinkId(2), 1.7, false);
        assert_eq!(est.link_congestion_probability(LinkId(0)), 0.0);
        assert!((est.link_congestion_probability(LinkId(1)) - 0.4).abs() < 1e-12);
        assert_eq!(est.link_congestion_probability(LinkId(2)), 1.0);
        assert!(est.link_is_identifiable(LinkId(1)));
        assert!(!est.link_is_identifiable(LinkId(0)));
    }

    #[test]
    fn singleton_subset_updates_link_probability() {
        let mut est = ProbabilityEstimate::new("test", 2);
        est.set_subset_good([LinkId(0)], 0.75, true);
        assert!((est.link_congestion_probability(LinkId(0)) - 0.25).abs() < 1e-12);
        assert_eq!(est.subset_good_probability(&[LinkId(0)]), Some(0.75));
    }

    #[test]
    fn inclusion_exclusion_matches_independent_case() {
        let mut est = ProbabilityEstimate::new("test", 2);
        est.independence_fallback = true;
        est.set_link(LinkId(0), 0.3, true);
        est.set_link(LinkId(1), 0.5, true);
        // P(both congested) = 0.3 * 0.5 under independence.
        let p = est
            .subset_congestion_probability(&[LinkId(0), LinkId(1)])
            .unwrap();
        assert!((p - 0.15).abs() < 1e-12);
    }

    #[test]
    fn inclusion_exclusion_uses_direct_joint_when_available() {
        let mut est = ProbabilityEstimate::new("test", 2);
        est.set_link(LinkId(0), 0.4, true);
        est.set_link(LinkId(1), 0.4, true);
        // Perfectly correlated pair: P(both good) = 0.6, so
        // P(both congested) = 1 - 0.6 - 0.6 + 0.6 = 0.4.
        est.set_subset_good([LinkId(0), LinkId(1)], 0.6, true);
        let p = est
            .subset_congestion_probability(&[LinkId(0), LinkId(1)])
            .unwrap();
        assert!((p - 0.4).abs() < 1e-12);
    }

    #[test]
    fn missing_joint_without_fallback_is_none() {
        let mut est = ProbabilityEstimate::new("test", 2);
        est.set_link(LinkId(0), 0.4, true);
        est.set_link(LinkId(1), 0.4, true);
        assert!(est
            .subset_congestion_probability(&[LinkId(0), LinkId(1)])
            .is_none());
        assert!(est
            .subset_good_probability(&[LinkId(0), LinkId(1)])
            .is_none());
    }

    #[test]
    fn empty_set_probabilities() {
        let est = ProbabilityEstimate::new("test", 1);
        assert_eq!(est.subset_good_probability(&[]), Some(1.0));
        assert_eq!(est.subset_congestion_probability(&[]), Some(0.0));
    }

    #[test]
    fn duplicate_links_are_deduplicated() {
        let mut est = ProbabilityEstimate::new("test", 1);
        est.set_link(LinkId(0), 0.3, true);
        let p = est
            .subset_congestion_probability(&[LinkId(0), LinkId(0)])
            .unwrap();
        assert!((p - 0.3).abs() < 1e-12);
    }
}
