//! Algorithm 1 of the paper: selection of the path sets whose equations make
//! the system solvable.
//!
//! Rather than enumerating all `2^|P*|` path sets, the algorithm
//!
//! 1. seeds the system with one path set per target correlation subset `E`,
//!    namely `Paths(E) \ Paths(Ē)` (the paths that observe `E` but avoid the
//!    rest of its correlation set);
//! 2. maintains a basis `N` of the null space of the system matrix restricted
//!    to the target unknowns;
//! 3. repeatedly looks for a path set whose row is not orthogonal to `N`
//!    (i.e. whose equation increases the rank), preferring target subsets
//!    whose null-space row has the largest Hamming weight
//!    (`SortByHammingWeight` in the paper), and updates `N` incrementally
//!    with Algorithm 2 each time a row is added;
//! 4. stops when the null space is empty (every target is identifiable) or no
//!    candidate path set adds rank.
//!
//! The candidate path sets for a subset `E` are the subsets of
//! `Paths(E) \ Paths(Ē)`, enumerated in increasing cardinality up to a
//! configurable budget — the exponential `2^{n2}` term in the paper's
//! complexity bound is capped the same way the paper caps the subset size:
//! by spending only as much of it as resources allow.
//!
//! ## Representation
//!
//! The inner loop evaluates thousands of candidate path sets, and each
//! evaluation is pure set algebra: union the links of the candidate's paths,
//! intersect with each correlation set, check the intersections against the
//! target list. [`select_path_sets`] therefore works on `u64`-word bitmaps —
//! per-path link bitmaps over the densely indexed potentially congested
//! links, per-correlation-set masks, and a hash lookup from intersection
//! bitmaps to target columns — so one candidate costs a few word operations
//! instead of `BTreeSet` unions and per-subset allocations. The null-space
//! basis arithmetic of Algorithm 2 is unchanged (real-valued rank is *not*
//! GF(2) rank), but the per-target Hamming weights that drive
//! `SortByHammingWeight` are tracked incrementally across basis updates
//! instead of being recounted from scratch at every admission.
//!
//! [`select_path_sets_reference`] retains the original element-wise
//! implementation as the behavioral oracle: both must select the identical
//! path sets in the identical order (see the equivalence tests and the
//! `tomo-prob` property suite).

use std::collections::{BTreeSet, HashMap, HashSet};

use serde::{Deserialize, Serialize};
use tomo_graph::{CorrelationSubset, LinkId, Network, PathId};
use tomo_linalg::{nullspace_update, Matrix, NullSpaceUpdate, DEFAULT_TOL};

use crate::subsets::{always_good_links, pruned_complement};
use crate::system::{induced_subsets, SubsetIndex};
use tomo_sim::PathObservations;

/// Configuration of the path-set selection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PathSelectionConfig {
    /// Maximum number of candidate path sets enumerated per correlation
    /// subset in the augmentation loop (the `2^{n2}` budget).
    pub max_candidates_per_subset: usize,
    /// Numerical tolerance for the `‖r × N‖ > 0` test.
    pub tol: f64,
}

impl Default for PathSelectionConfig {
    fn default() -> Self {
        Self {
            max_candidates_per_subset: 2048,
            tol: 1e-7,
        }
    }
}

/// The outcome of the selection.
#[derive(Clone, Debug)]
pub struct PathSelectionOutcome {
    /// The selected path sets, in the order their equations should be formed.
    pub path_sets: Vec<Vec<PathId>>,
    /// Number of path sets contributed by the seeding phase (lines 1–5).
    pub initial_count: usize,
    /// Number of path sets added by the augmentation loop (lines 8–22).
    pub augmented_count: usize,
    /// Dimension of the remaining null space over the target unknowns when
    /// the algorithm stopped (0 when every target is identifiable).
    pub final_nullity: usize,
    /// Per-target identifiability: `true` when the target's row in the final
    /// null-space basis is (numerically) zero.
    pub identifiable: Vec<bool>,
}

impl PathSelectionOutcome {
    /// Number of identifiable targets.
    pub fn identifiable_count(&self) -> usize {
        self.identifiable.iter().filter(|&&b| b).count()
    }
}

// ---------------------------------------------------------------------------
// Bitmap machinery
// ---------------------------------------------------------------------------

#[inline]
fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

#[inline]
fn set_bit(words: &mut [u64], bit: usize) {
    words[bit / 64] |= 1u64 << (bit % 64);
}

#[inline]
fn or_into(acc: &mut [u64], other: &[u64]) {
    for (a, b) in acc.iter_mut().zip(other) {
        *a |= b;
    }
}

/// `out = a & b`; returns `true` when the intersection is non-empty.
#[inline]
fn and_into(out: &mut [u64], a: &[u64], b: &[u64]) -> bool {
    let mut any = 0u64;
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x & y;
        any |= *o;
    }
    any != 0
}

/// Precomputed bitmap view of the selection problem: dense link indexing,
/// per-path link bitmaps, per-correlation-set masks and the intersection →
/// target-column lookup.
struct SelectionContext {
    link_words: usize,
    path_words: usize,
    /// Per path: bitmap of its potentially congested links.
    path_links: Vec<Vec<u64>>,
    /// Per path: sorted, deduplicated correlation-set ids of those links.
    path_set_ids: Vec<Vec<usize>>,
    /// Per correlation set id: bitmap of its potentially congested links.
    set_masks: Vec<Vec<u64>>,
    /// `set_id → (link bitmap → target column)`.
    target_cols: HashMap<usize, HashMap<Vec<u64>, usize>>,
}

impl SelectionContext {
    fn new(network: &Network, index: &SubsetIndex, pc: &BTreeSet<LinkId>) -> Self {
        let n_targets = index.num_targets();
        // Dense indexing: potentially congested links first (ascending, the
        // only ones induced subsets can contain), then any target links
        // outside that set (so target bitmaps are representable; they can
        // never match an induced bitmap, mirroring the reference rejection).
        let mut link_slot = vec![usize::MAX; network.num_links()];
        let mut n_indexed = 0usize;
        for &l in pc {
            if link_slot[l.index()] == usize::MAX {
                link_slot[l.index()] = n_indexed;
                n_indexed += 1;
            }
        }
        for t in &index.subsets()[..n_targets] {
            for &l in &t.links {
                if l.index() < link_slot.len() && link_slot[l.index()] == usize::MAX {
                    link_slot[l.index()] = n_indexed;
                    n_indexed += 1;
                }
            }
        }
        let link_words = words_for(n_indexed.max(1));

        let num_sets = network.correlation_sets().len();
        let mut set_masks = vec![vec![0u64; link_words]; num_sets];
        for &l in pc {
            set_bit(
                &mut set_masks[network.correlation_set_of(l)],
                link_slot[l.index()],
            );
        }

        let mut path_links = Vec::with_capacity(network.num_paths());
        let mut path_set_ids = Vec::with_capacity(network.num_paths());
        for p in network.path_ids() {
            let mut bm = vec![0u64; link_words];
            let mut ids: Vec<usize> = Vec::new();
            for &l in &network.path(p).links {
                if pc.contains(&l) {
                    set_bit(&mut bm, link_slot[l.index()]);
                    ids.push(network.correlation_set_of(l));
                }
            }
            ids.sort_unstable();
            ids.dedup();
            path_links.push(bm);
            path_set_ids.push(ids);
        }

        let mut target_cols: HashMap<usize, HashMap<Vec<u64>, usize>> = HashMap::new();
        for (col, t) in index.subsets()[..n_targets].iter().enumerate() {
            let mut bm = vec![0u64; link_words];
            for &l in &t.links {
                if l.index() < link_slot.len() && link_slot[l.index()] != usize::MAX {
                    set_bit(&mut bm, link_slot[l.index()]);
                }
            }
            target_cols
                .entry(t.set_id)
                .or_default()
                .entry(bm)
                .or_insert(col);
        }

        Self {
            link_words,
            path_words: words_for(network.num_paths().max(1)),
            path_links,
            path_set_ids,
            set_masks,
            target_cols,
        }
    }

    /// Bitmap of a path set (over path indices), into `out`.
    fn path_bitmap_into(&self, paths: &[PathId], out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.path_words, 0);
        for p in paths {
            set_bit(out, p.index());
        }
    }

    /// Computes the target columns of `Row(P, Ê)` for a path set. Returns
    /// `false` when some induced subset is not a target (the path set must
    /// not become an equation). On success `cols` holds the columns sorted
    /// ascending.
    fn target_row_cols(
        &self,
        paths: &[PathId],
        union: &mut Vec<u64>,
        inter: &mut Vec<u64>,
        sids: &mut Vec<usize>,
        cols: &mut Vec<usize>,
    ) -> bool {
        union.clear();
        union.resize(self.link_words, 0);
        inter.resize(self.link_words, 0);
        sids.clear();
        cols.clear();
        for p in paths {
            or_into(union, &self.path_links[p.index()]);
            sids.extend_from_slice(&self.path_set_ids[p.index()]);
        }
        sids.sort_unstable();
        sids.dedup();
        for &s in sids.iter() {
            if !and_into(inter, union, &self.set_masks[s]) {
                continue;
            }
            let Some(col) = self
                .target_cols
                .get(&s)
                .and_then(|m| m.get(inter.as_slice()))
            else {
                return false;
            };
            cols.push(*col);
        }
        cols.sort_unstable();
        true
    }
}

/// Incrementally maintained null-space basis over the target unknowns, with
/// per-target Hamming weights (`SortByHammingWeight`) updated in place as
/// rows are folded in, instead of recounted from the full basis at every
/// admission.
///
/// The arithmetic replicates [`nullspace_update`] operation-for-operation
/// (same pivot rule `j = argmax |r·N_j|` with last-max tie-breaking, same
/// rank-one column update, same summation order over the row's nonzeros), so
/// the maintained basis is bit-identical to the reference implementation's —
/// only columns whose `r·N_c` is exactly zero are skipped, which cannot
/// change any value the algorithm compares.
struct NullTracker {
    targets: usize,
    /// Basis columns (each of length `targets`), in reference order.
    cols: Vec<Vec<f64>>,
    /// Per target: number of basis columns with `|N[t][c]| > weight_tol`.
    weights: Vec<usize>,
    weight_tol: f64,
}

impl NullTracker {
    /// The null space of an empty system: the identity basis.
    fn identity(targets: usize, weight_tol: f64) -> Self {
        let mut cols = Vec::with_capacity(targets);
        for j in 0..targets {
            let mut c = vec![0.0; targets];
            c[j] = 1.0;
            cols.push(c);
        }
        Self {
            targets,
            cols,
            weights: vec![1; targets],
            weight_tol,
        }
    }

    fn nullity(&self) -> usize {
        self.cols.len()
    }

    /// `‖r × N‖ > tol` for a 0/1 row given by its nonzero columns (sorted).
    fn row_hits(&self, row_cols: &[usize], tol: f64) -> bool {
        self.cols.iter().any(|c| {
            let s: f64 = row_cols.iter().map(|&i| c[i]).sum();
            s.abs() > tol
        })
    }

    /// Algorithm 2: folds a 0/1 row into the basis. Returns `true` when the
    /// row was independent (the basis shrank by one column).
    fn fold(&mut self, row_cols: &[usize]) -> bool {
        let p = self.cols.len();
        if p == 0 {
            return false;
        }
        let dots: Vec<f64> = self
            .cols
            .iter()
            .map(|c| row_cols.iter().map(|&i| c[i]).sum())
            .collect();
        // Pivot: largest |r·N_j|, last maximum winning ties (the fold of
        // `Iterator::max_by`).
        let mut j = 0usize;
        let mut best = dots[0].abs();
        for (c, d) in dots.iter().enumerate().skip(1) {
            if d.abs().total_cmp(&best) != std::cmp::Ordering::Less {
                j = c;
                best = d.abs();
            }
        }
        if best <= DEFAULT_TOL {
            return false;
        }
        let dj = dots[j];
        let nj = self.cols[j].clone();
        for (weight, &entry) in self.weights.iter_mut().zip(&nj[..self.targets]) {
            if entry.abs() > self.weight_tol {
                *weight -= 1;
            }
        }
        for (c, col) in self.cols.iter_mut().enumerate() {
            if c == j {
                continue;
            }
            let factor = dots[c] / dj;
            if factor == 0.0 {
                // The rank-one update is a no-op on this column (up to the
                // sign of zeros, which nothing downstream observes).
                continue;
            }
            for i in 0..self.targets {
                let old = col[i];
                let new = old - nj[i] * factor;
                let was = old.abs() > self.weight_tol;
                let is = new.abs() > self.weight_tol;
                match (was, is) {
                    (false, true) => self.weights[i] += 1,
                    (true, false) => self.weights[i] -= 1,
                    _ => {}
                }
                col[i] = new;
            }
        }
        self.cols.remove(j);
        true
    }
}

/// Runs Algorithm 1 over the target correlation subsets.
///
/// `targets` defines the unknown columns; `potentially_congested` is the set
/// of links that may ever be congested (always-good links are excluded from
/// the rows, see [`crate::system::induced_subsets`]).
///
/// This is the bitmap fast path; it selects the identical path sets, in the
/// identical order, as [`select_path_sets_reference`].
pub fn select_path_sets(
    network: &Network,
    observations: &PathObservations,
    targets: &[CorrelationSubset],
    potentially_congested: &BTreeSet<LinkId>,
    config: &PathSelectionConfig,
) -> PathSelectionOutcome {
    let index = SubsetIndex::new(targets.to_vec());
    let n_targets = index.num_targets();
    if n_targets == 0 {
        return PathSelectionOutcome {
            path_sets: Vec::new(),
            initial_count: 0,
            augmented_count: 0,
            final_nullity: 0,
            identifiable: Vec::new(),
        };
    }
    let ctx = SelectionContext::new(network, &index, potentially_congested);

    // Scratch buffers reused across every candidate evaluation.
    let mut union = Vec::new();
    let mut inter = Vec::new();
    let mut sids = Vec::new();
    let mut cols = Vec::new();
    let mut path_bm = Vec::new();

    // --- Seeding: one path set per target subset (lines 1–5) ---------------
    // Each entry carries the path set together with the (already validated)
    // target columns of its row.
    let mut path_sets: Vec<(Vec<PathId>, Vec<usize>)> = Vec::new();
    let mut seen_sets: HashSet<Vec<u64>> = HashSet::new();
    let mut observing_paths: Vec<Vec<PathId>> = Vec::with_capacity(n_targets);
    // `pruned_complement` recomputes the always-good links per call; they
    // depend only on the observations, so hoist them out of the loop.
    let good = always_good_links(network, observations);
    for subset in targets {
        let paths_e = network.paths_covering_subset(subset);
        let set = &network.correlation_sets()[subset.set_id];
        let complement = CorrelationSubset::new(
            subset.set_id,
            set.links
                .iter()
                .copied()
                .filter(|l| !subset.links.contains(l) && !good.contains(l)),
        );
        let paths_comp = network.paths_covering_subset(&complement);
        let p: Vec<PathId> = paths_e.difference(&paths_comp).copied().collect();
        observing_paths.push(p.clone());
        // Only path sets whose induced subsets all belong to Ê form usable
        // equations (the paper's `Row(P, Ê)`): an equation involving a
        // subset outside the target list would carry an extra unknown the
        // rank analysis cannot see, silently entangling the targets with
        // it. Unclean seeds are skipped; the augmentation loop then finds
        // smaller, clean path sets for their targets instead. Marking
        // rejected seeds as seen caches the rejection.
        if p.is_empty() {
            continue;
        }
        ctx.path_bitmap_into(&p, &mut path_bm);
        if !seen_sets.insert(path_bm.clone()) {
            continue;
        }
        if ctx.target_row_cols(&p, &mut union, &mut inter, &mut sids, &mut cols) {
            path_sets.push((p, cols.clone()));
        }
    }
    let initial_count = path_sets.len();

    // --- Initial null space (lines 6–7), built incrementally ---------------
    let mut tracker = NullTracker::identity(n_targets, config.tol);
    for (_, row_cols) in &path_sets {
        tracker.fold(row_cols);
        if tracker.nullity() == 0 {
            break;
        }
    }

    // --- Augmentation loop (lines 8–22) -------------------------------------
    let mut augmented_count = 0usize;
    while tracker.nullity() > 0 {
        // SortByHammingWeight over the incrementally maintained weights.
        let mut order: Vec<(usize, usize)> = tracker
            .weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (w, i))
            .collect();
        order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut found: Option<(Vec<PathId>, Vec<usize>)> = None;
        'targets: for (weight, target_idx) in order {
            if weight == 0 {
                // Rows of weight 0 cannot move the null space in their own
                // direction and rarely help others; skip them for speed
                // (they sort last anyway).
                continue;
            }
            let base = &observing_paths[target_idx];
            if base.is_empty() {
                continue;
            }
            let mut local: Option<(Vec<PathId>, Vec<usize>)> = None;
            for_each_subset_by_size(base, config.max_candidates_per_subset, |candidate| {
                ctx.path_bitmap_into(candidate, &mut path_bm);
                if seen_sets.contains(path_bm.as_slice()) {
                    return false;
                }
                if !ctx.target_row_cols(candidate, &mut union, &mut inter, &mut sids, &mut cols) {
                    return false;
                }
                if tracker.row_hits(&cols, config.tol) {
                    local = Some((candidate.to_vec(), cols.clone()));
                    return true;
                }
                false
            });
            if local.is_some() {
                found = local;
                break 'targets;
            }
        }
        let Some((new_set, new_cols)) = found else {
            break;
        };
        if !tracker.fold(&new_cols) {
            // Should not happen (the candidate passed the ‖r×N‖ test), but
            // guard against numerical disagreement to avoid looping.
            break;
        }
        ctx.path_bitmap_into(&new_set, &mut path_bm);
        seen_sets.insert(path_bm.clone());
        path_sets.push((new_set, new_cols));
        augmented_count += 1;
    }

    // --- Identifiability of each target -------------------------------------
    let identifiable = tracker.weights.iter().map(|&w| w == 0).collect();

    PathSelectionOutcome {
        path_sets: path_sets.into_iter().map(|(ps, _)| ps).collect(),
        initial_count,
        augmented_count,
        final_nullity: tracker.nullity(),
        identifiable,
    }
}

// ---------------------------------------------------------------------------
// Reference implementation (element-wise, dense rows) — the behavioral oracle
// ---------------------------------------------------------------------------

/// The original element-wise implementation of Algorithm 1, kept as the
/// reference oracle for [`select_path_sets`]: identical inputs must yield the
/// identical [`PathSelectionOutcome`]. It is exercised by the equivalence
/// tests and benchmarked next to the bitmap path; production callers use
/// [`select_path_sets`].
pub fn select_path_sets_reference(
    network: &Network,
    observations: &PathObservations,
    targets: &[CorrelationSubset],
    potentially_congested: &BTreeSet<LinkId>,
    config: &PathSelectionConfig,
) -> PathSelectionOutcome {
    let index = SubsetIndex::new(targets.to_vec());
    let n_targets = index.num_targets();
    if n_targets == 0 {
        return PathSelectionOutcome {
            path_sets: Vec::new(),
            initial_count: 0,
            augmented_count: 0,
            final_nullity: 0,
            identifiable: Vec::new(),
        };
    }

    // --- Seeding: one path set per target subset (lines 1–5) ---------------
    let mut path_sets: Vec<(Vec<PathId>, Vec<f64>)> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<PathId>> = BTreeSet::new();
    let mut observing_paths: Vec<Vec<PathId>> = Vec::with_capacity(n_targets);
    for subset in targets {
        let paths_e = network.paths_covering_subset(subset);
        let complement = pruned_complement(network, observations, subset);
        let paths_comp = network.paths_covering_subset(&complement);
        let p: Vec<PathId> = paths_e.difference(&paths_comp).copied().collect();
        observing_paths.push(p.clone());
        if p.is_empty() || !seen_sets.insert(p.clone()) {
            continue;
        }
        if let Some(row) = target_row(network, &p, potentially_congested, &index) {
            path_sets.push((p, row));
        }
    }
    let initial_count = path_sets.len();

    // --- Initial null space (lines 6–7), built incrementally ---------------
    let mut nullspace = Matrix::identity(n_targets);
    for (_, row) in &path_sets {
        nullspace = nullspace_update(&nullspace, row).into_basis();
        if nullspace.cols() == 0 {
            break;
        }
    }

    // --- Augmentation loop (lines 8–22) -------------------------------------
    let mut augmented_count = 0usize;
    while nullspace.cols() > 0 {
        let Some((new_set, new_row)) = find_augmenting_path_set(
            network,
            potentially_congested,
            &index,
            &observing_paths,
            &nullspace,
            &seen_sets,
            config,
        ) else {
            break;
        };
        match nullspace_update(&nullspace, &new_row) {
            NullSpaceUpdate::Reduced(n) => {
                nullspace = n;
            }
            NullSpaceUpdate::Unchanged(n) => {
                nullspace = n;
                break;
            }
        }
        seen_sets.insert(new_set.clone());
        path_sets.push((new_set, new_row));
        augmented_count += 1;
    }

    // --- Identifiability of each target -------------------------------------
    let identifiable = (0..n_targets)
        .map(|i| (0..nullspace.cols()).all(|j| nullspace[(i, j)].abs() <= config.tol))
        .collect();

    PathSelectionOutcome {
        path_sets: path_sets.into_iter().map(|(ps, _)| ps).collect(),
        initial_count,
        augmented_count,
        final_nullity: nullspace.cols(),
        identifiable,
    }
}

/// The row of `path_set` over the target columns, or `None` when some
/// induced subset falls outside Ê. Path sets failing this test must not
/// become equations: their rows would involve unknowns outside the target
/// list. Induced subsets are computed once and reused for both the
/// cleanliness check and the row.
fn target_row(
    network: &Network,
    path_set: &[PathId],
    potentially_congested: &BTreeSet<LinkId>,
    index: &SubsetIndex,
) -> Option<Vec<f64>> {
    let mut row = vec![0.0; index.num_targets()];
    for subset in induced_subsets(network, path_set, potentially_congested) {
        match index.index_of(&subset) {
            Some(col) if col < index.num_targets() => row[col] = 1.0,
            _ => return None,
        }
    }
    Some(row)
}

/// Searches for a path set whose row intersects the current null space
/// (lines 10–19 of Algorithm 1). Returns the path set and its dense row.
fn find_augmenting_path_set(
    network: &Network,
    potentially_congested: &BTreeSet<LinkId>,
    index: &SubsetIndex,
    observing_paths: &[Vec<PathId>],
    nullspace: &Matrix,
    seen_sets: &BTreeSet<Vec<PathId>>,
    config: &PathSelectionConfig,
) -> Option<(Vec<PathId>, Vec<f64>)> {
    // SortByHammingWeight: order the target subsets by the number of
    // non-negligible entries in their null-space row, descending.
    let mut weights: Vec<(usize, usize)> = (0..index.num_targets())
        .map(|i| {
            let w = (0..nullspace.cols())
                .filter(|&j| nullspace[(i, j)].abs() > config.tol)
                .count();
            (w, i)
        })
        .collect();
    weights.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    for (weight, target_idx) in weights {
        if weight == 0 {
            continue;
        }
        let base = &observing_paths[target_idx];
        if base.is_empty() {
            continue;
        }
        let mut found: Option<(Vec<PathId>, Vec<f64>)> = None;
        for_each_subset_by_size(base, config.max_candidates_per_subset, |candidate| {
            if seen_sets.contains(candidate) {
                return false;
            }
            let Some(row) = target_row(network, candidate, potentially_congested, index) else {
                return false;
            };
            if row_hits_nullspace(&row, nullspace, config.tol) {
                found = Some((candidate.to_vec(), row));
                return true;
            }
            false
        });
        if found.is_some() {
            return found;
        }
    }
    None
}

/// `‖r × N‖ > tol`, computed sparsely over the non-zero entries of `r`.
fn row_hits_nullspace(row: &[f64], nullspace: &Matrix, tol: f64) -> bool {
    let nz: Vec<usize> = row
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0.0)
        .map(|(i, _)| i)
        .collect();
    if nz.is_empty() {
        return false;
    }
    for j in 0..nullspace.cols() {
        let mut s = 0.0;
        for &i in &nz {
            s += row[i] * nullspace[(i, j)];
        }
        if s.abs() > tol {
            return true;
        }
    }
    false
}

/// Enumerates the non-empty subsets of `base` in increasing cardinality,
/// invoking `visit` on each until it returns `true` (stop) or `budget`
/// subsets have been visited. The full set is always tried first: it is the
/// single most informative equation (it ties all the subsets of the target
/// together), and trying it first mirrors the seeding phase.
fn for_each_subset_by_size(
    base: &[PathId],
    budget: usize,
    mut visit: impl FnMut(&[PathId]) -> bool,
) {
    if base.is_empty() || budget == 0 {
        return;
    }
    let mut used = 0usize;
    // Full set first.
    used += 1;
    if visit(base) || used >= budget {
        return;
    }
    let n = base.len();
    for size in 1..n {
        let mut indices: Vec<usize> = (0..size).collect();
        'combos: loop {
            let candidate: Vec<PathId> = indices.iter().map(|&i| base[i]).collect();
            used += 1;
            if visit(&candidate) || used >= budget {
                return;
            }
            // Advance the combination.
            let mut i = size;
            loop {
                if i == 0 {
                    break 'combos;
                }
                i -= 1;
                if indices[i] < i + n - size {
                    indices[i] += 1;
                    for j in (i + 1)..size {
                        indices[j] = indices[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsets::potentially_congested_subsets;
    use crate::system::row_over_targets;
    use tomo_graph::toy::{fig1_case1, fig1_case2};
    use tomo_graph::PathId;
    use tomo_linalg::gauss::rank;
    use tomo_sim::PathObservations;

    /// Observations in which every path is congested at least once, so every
    /// link is potentially congested.
    fn busy_observations(num_paths: usize) -> PathObservations {
        let mut o = PathObservations::new(num_paths, 4);
        for p in 0..num_paths {
            o.set_congested(PathId(p), 0, true);
        }
        o
    }

    fn run(network: &tomo_graph::Network) -> (PathSelectionOutcome, Vec<CorrelationSubset>) {
        let obs = busy_observations(network.num_paths());
        let targets = potentially_congested_subsets(network, &obs, 4);
        let pc: BTreeSet<LinkId> = crate::subsets::potentially_congested_links(network, &obs)
            .into_iter()
            .collect();
        let outcome = select_path_sets(
            network,
            &obs,
            &targets,
            &pc,
            &PathSelectionConfig::default(),
        );
        (outcome, targets)
    }

    /// Asserts that the bitmap fast path and the reference oracle agree on
    /// every field of the outcome.
    fn assert_equivalent(network: &tomo_graph::Network, obs: &PathObservations) {
        let targets = potentially_congested_subsets(network, obs, 4);
        let pc: BTreeSet<LinkId> = crate::subsets::potentially_congested_links(network, obs)
            .into_iter()
            .collect();
        let cfg = PathSelectionConfig::default();
        let fast = select_path_sets(network, obs, &targets, &pc, &cfg);
        let slow = select_path_sets_reference(network, obs, &targets, &pc, &cfg);
        assert_eq!(fast.path_sets, slow.path_sets);
        assert_eq!(fast.initial_count, slow.initial_count);
        assert_eq!(fast.augmented_count, slow.augmented_count);
        assert_eq!(fast.final_nullity, slow.final_nullity);
        assert_eq!(fast.identifiable, slow.identifiable);
    }

    #[test]
    fn bitmap_matches_reference_on_toy_networks() {
        for net in [fig1_case1(), fig1_case2()] {
            let obs = busy_observations(net.num_paths());
            assert_equivalent(&net, &obs);
        }
    }

    #[test]
    fn bitmap_matches_reference_under_partial_congestion() {
        // Observations in which some paths are always good, so the
        // potentially congested link set (and thus the pruned complements,
        // the seeds and the dense indexing) is a strict subset.
        for net in [fig1_case1(), fig1_case2()] {
            for good_path in 0..net.num_paths() {
                let mut o = PathObservations::new(net.num_paths(), 4);
                for p in 0..net.num_paths() {
                    if p != good_path {
                        o.set_congested(PathId(p), 0, true);
                    }
                }
                assert_equivalent(&net, &o);
            }
        }
    }

    #[test]
    fn selected_path_sets_never_induce_unknowns_outside_the_targets() {
        // Regression test: when the target list is capped (here: singletons
        // only), Algorithm 1 must not select path sets whose equations
        // involve subsets outside Ê — such equations would entangle the
        // targets with unknowns the rank analysis cannot see, silently
        // corrupting "identifiable" estimates. On Fig. 1 Case 1, the path
        // set {p1, p2} induces the pair {e2, e3} and must be rejected.
        let net = fig1_case1();
        let obs = busy_observations(net.num_paths());
        let targets = potentially_congested_subsets(&net, &obs, 1);
        assert!(targets.iter().all(|t| t.len() == 1));
        let pc: BTreeSet<LinkId> = crate::subsets::potentially_congested_links(&net, &obs)
            .into_iter()
            .collect();
        let outcome = select_path_sets(&net, &obs, &targets, &pc, &PathSelectionConfig::default());
        let index = SubsetIndex::new(targets);
        for ps in &outcome.path_sets {
            for subset in crate::system::induced_subsets(&net, ps, &pc) {
                let col = index.index_of(&subset);
                assert!(
                    col.is_some_and(|c| c < index.num_targets()),
                    "path set {ps:?} induces non-target subset {subset}"
                );
            }
        }
        // Rejecting unclean seeds must not cost identifiability when clean
        // alternatives exist: Case 1's four singletons are all pinned by
        // pair-free path sets (e.g. {p2, p3} induces only singletons), which
        // the augmentation loop has to find.
        assert_eq!(outcome.final_nullity, 0);
        assert_eq!(outcome.identifiable_count(), index.num_targets());
    }

    #[test]
    fn case1_selects_a_full_rank_system() {
        // Fig. 1 Case 1: Identifiability++ holds, so Algorithm 1 must end
        // with an empty null space and all 5 targets identifiable.
        let net = fig1_case1();
        let (outcome, targets) = run(&net);
        assert_eq!(targets.len(), 5);
        assert_eq!(outcome.final_nullity, 0);
        assert_eq!(outcome.identifiable_count(), 5);
        // The system matrix over the targets must have rank 5.
        let obs = busy_observations(3);
        let pc: BTreeSet<LinkId> = crate::subsets::potentially_congested_links(&net, &obs)
            .into_iter()
            .collect();
        let index = SubsetIndex::new(targets);
        let rows: Vec<Vec<f64>> = outcome
            .path_sets
            .iter()
            .map(|ps| row_over_targets(&net, ps, &pc, &index))
            .collect();
        let m = Matrix::from_rows(&rows);
        assert_eq!(rank(&m), 5);
    }

    #[test]
    fn case1_seed_path_sets_match_the_paper_table() {
        // The seeding table of §5.3: for Ê = <{e1},{e2},{e3},{e4},{e2,e3}>,
        // the seed path sets are {p1,p2}, {p1}, {p2,p3}, {p3}, {p1,p2,p3}.
        let net = fig1_case1();
        let (outcome, targets) = run(&net);
        let expected: Vec<Vec<PathId>> = vec![
            vec![PathId(0), PathId(1)],
            vec![PathId(0)],
            vec![PathId(1), PathId(2)],
            vec![PathId(2)],
            vec![PathId(0), PathId(1), PathId(2)],
        ];
        // The targets are ordered singletons-then-pairs per correlation set;
        // regardless of the exact ordering, every expected seed must appear
        // among the selected path sets.
        for e in &expected {
            assert!(
                outcome.path_sets.contains(e),
                "missing seed {e:?}; got {:?} (targets {targets:?})",
                outcome.path_sets
            );
        }
        assert_eq!(outcome.initial_count, 5);
        // No augmentation is needed: the seeds already have full rank.
        assert_eq!(outcome.augmented_count, 0);
    }

    #[test]
    fn case2_reports_unidentifiable_subsets() {
        // Fig. 1 Case 2: {e1,e4} and {e2,e3} are traversed by the same paths,
        // so Identifiability++ fails and Algorithm 1 must stop with a
        // non-empty null space; the singleton subsets remain identifiable or
        // not depending on the structure, but at least one target must be
        // flagged unidentifiable.
        let net = fig1_case2();
        let (outcome, targets) = run(&net);
        assert_eq!(targets.len(), 6);
        assert!(outcome.final_nullity > 0);
        assert!(outcome.identifiable_count() < targets.len());
    }

    #[test]
    fn subset_enumeration_visits_full_set_first_and_respects_budget() {
        let base = vec![PathId(0), PathId(1), PathId(2)];
        let mut visited = Vec::new();
        for_each_subset_by_size(&base, 100, |s| {
            visited.push(s.to_vec());
            false
        });
        assert_eq!(visited[0], base);
        // 1 full set + 3 singles + 3 pairs = 7 (the full set is not repeated
        // at size 3 because enumeration of proper subsets stops at n-1).
        assert_eq!(visited.len(), 7);

        let mut count = 0;
        for_each_subset_by_size(&base, 3, |_| {
            count += 1;
            false
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn null_tracker_weights_match_recounting() {
        // Fold a handful of rows and verify the incrementally maintained
        // Hamming weights always equal a from-scratch recount of the basis.
        let rows: Vec<Vec<usize>> = vec![vec![0, 1], vec![2, 3], vec![0, 2, 4], vec![4]];
        let mut t = NullTracker::identity(5, 1e-7);
        for row in &rows {
            t.fold(row);
            for i in 0..5 {
                let recount = t.cols.iter().filter(|c| c[i].abs() > 1e-7).count();
                assert_eq!(t.weights[i], recount, "row {row:?}, target {i}");
            }
        }
        assert_eq!(t.nullity(), 1);
    }

    #[test]
    fn empty_targets_yield_empty_outcome() {
        let net = fig1_case1();
        let obs = busy_observations(3);
        let outcome = select_path_sets(
            &net,
            &obs,
            &[],
            &BTreeSet::new(),
            &PathSelectionConfig::default(),
        );
        assert!(outcome.path_sets.is_empty());
        assert_eq!(outcome.final_nullity, 0);
    }
}
