//! Algorithm 1 of the paper: selection of the path sets whose equations make
//! the system solvable.
//!
//! Rather than enumerating all `2^|P*|` path sets, the algorithm
//!
//! 1. seeds the system with one path set per target correlation subset `E`,
//!    namely `Paths(E) \ Paths(Ē)` (the paths that observe `E` but avoid the
//!    rest of its correlation set);
//! 2. maintains a basis `N` of the null space of the system matrix restricted
//!    to the target unknowns;
//! 3. repeatedly looks for a path set whose row is not orthogonal to `N`
//!    (i.e. whose equation increases the rank), preferring target subsets
//!    whose null-space row has the largest Hamming weight
//!    (`SortByHammingWeight` in the paper), and updates `N` incrementally
//!    with Algorithm 2 each time a row is added;
//! 4. stops when the null space is empty (every target is identifiable) or no
//!    candidate path set adds rank.
//!
//! The candidate path sets for a subset `E` are the subsets of
//! `Paths(E) \ Paths(Ē)`, enumerated in increasing cardinality up to a
//! configurable budget — the exponential `2^{n2}` term in the paper's
//! complexity bound is capped the same way the paper caps the subset size:
//! by spending only as much of it as resources allow.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use tomo_graph::{CorrelationSubset, LinkId, Network, PathId};
use tomo_linalg::{nullspace_update, Matrix, NullSpaceUpdate};

use crate::subsets::pruned_complement;
use crate::system::{induced_subsets, SubsetIndex};
use tomo_sim::PathObservations;

/// Configuration of the path-set selection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PathSelectionConfig {
    /// Maximum number of candidate path sets enumerated per correlation
    /// subset in the augmentation loop (the `2^{n2}` budget).
    pub max_candidates_per_subset: usize,
    /// Numerical tolerance for the `‖r × N‖ > 0` test.
    pub tol: f64,
}

impl Default for PathSelectionConfig {
    fn default() -> Self {
        Self {
            max_candidates_per_subset: 2048,
            tol: 1e-7,
        }
    }
}

/// The outcome of the selection.
#[derive(Clone, Debug)]
pub struct PathSelectionOutcome {
    /// The selected path sets, in the order their equations should be formed.
    pub path_sets: Vec<Vec<PathId>>,
    /// Number of path sets contributed by the seeding phase (lines 1–5).
    pub initial_count: usize,
    /// Number of path sets added by the augmentation loop (lines 8–22).
    pub augmented_count: usize,
    /// Dimension of the remaining null space over the target unknowns when
    /// the algorithm stopped (0 when every target is identifiable).
    pub final_nullity: usize,
    /// Per-target identifiability: `true` when the target's row in the final
    /// null-space basis is (numerically) zero.
    pub identifiable: Vec<bool>,
}

impl PathSelectionOutcome {
    /// Number of identifiable targets.
    pub fn identifiable_count(&self) -> usize {
        self.identifiable.iter().filter(|&&b| b).count()
    }
}

/// Runs Algorithm 1 over the target correlation subsets.
///
/// `targets` defines the unknown columns; `potentially_congested` is the set
/// of links that may ever be congested (always-good links are excluded from
/// the rows, see [`crate::system::induced_subsets`]).
pub fn select_path_sets(
    network: &Network,
    observations: &PathObservations,
    targets: &[CorrelationSubset],
    potentially_congested: &BTreeSet<LinkId>,
    config: &PathSelectionConfig,
) -> PathSelectionOutcome {
    let index = SubsetIndex::new(targets.to_vec());
    let n_targets = index.num_targets();
    if n_targets == 0 {
        return PathSelectionOutcome {
            path_sets: Vec::new(),
            initial_count: 0,
            augmented_count: 0,
            final_nullity: 0,
            identifiable: Vec::new(),
        };
    }

    // --- Seeding: one path set per target subset (lines 1–5) ---------------
    // Each entry carries the path set together with its (already validated)
    // row over the target columns.
    let mut path_sets: Vec<(Vec<PathId>, Vec<f64>)> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<PathId>> = BTreeSet::new();
    let mut observing_paths: Vec<Vec<PathId>> = Vec::with_capacity(n_targets);
    for subset in targets {
        let paths_e = network.paths_covering_subset(subset);
        let complement = pruned_complement(network, observations, subset);
        let paths_comp = network.paths_covering_subset(&complement);
        let p: Vec<PathId> = paths_e.difference(&paths_comp).copied().collect();
        observing_paths.push(p.clone());
        // Only path sets whose induced subsets all belong to Ê form usable
        // equations (the paper's `Row(P, Ê)`): an equation involving a
        // subset outside the target list would carry an extra unknown the
        // rank analysis cannot see, silently entangling the targets with
        // it. Unclean seeds are skipped; the augmentation loop then finds
        // smaller, clean path sets for their targets instead.
        if p.is_empty() || !seen_sets.insert(p.clone()) {
            continue;
        }
        // Marking rejected seeds as seen caches the rejection: an unclean
        // path set can never become an equation, so neither duplicate seeds
        // nor the augmentation loop need to re-evaluate it.
        if let Some(row) = target_row(network, &p, potentially_congested, &index) {
            path_sets.push((p, row));
        }
    }
    let initial_count = path_sets.len();

    // --- Initial null space (lines 6–7), built incrementally ---------------
    // Starting from the identity (null space of an empty system) and folding
    // the seed rows in one at a time with Algorithm 2 avoids a full O(n^3)
    // elimination over the seed matrix.
    let mut nullspace = Matrix::identity(n_targets);
    for (_, row) in &path_sets {
        nullspace = nullspace_update(&nullspace, row).into_basis();
        if nullspace.cols() == 0 {
            break;
        }
    }

    // --- Augmentation loop (lines 8–22) -------------------------------------
    let mut augmented_count = 0usize;
    while nullspace.cols() > 0 {
        let Some((new_set, new_row)) = find_augmenting_path_set(
            network,
            potentially_congested,
            &index,
            &observing_paths,
            &nullspace,
            &seen_sets,
            config,
        ) else {
            break;
        };
        match nullspace_update(&nullspace, &new_row) {
            NullSpaceUpdate::Reduced(n) => {
                nullspace = n;
            }
            NullSpaceUpdate::Unchanged(n) => {
                // Should not happen (the candidate passed the ‖r×N‖ test),
                // but guard against numerical disagreement to avoid looping.
                nullspace = n;
                break;
            }
        }
        seen_sets.insert(new_set.clone());
        path_sets.push((new_set, new_row));
        augmented_count += 1;
    }

    // --- Identifiability of each target -------------------------------------
    let identifiable = (0..n_targets)
        .map(|i| (0..nullspace.cols()).all(|j| nullspace[(i, j)].abs() <= config.tol))
        .collect();

    PathSelectionOutcome {
        path_sets: path_sets.into_iter().map(|(ps, _)| ps).collect(),
        initial_count,
        augmented_count,
        final_nullity: nullspace.cols(),
        identifiable,
    }
}

/// The row of `path_set` over the target columns, or `None` when some
/// induced subset falls outside Ê. Path sets failing this test must not
/// become equations: their rows would involve unknowns outside the target
/// list. Induced subsets are computed once and reused for both the
/// cleanliness check and the row.
fn target_row(
    network: &Network,
    path_set: &[PathId],
    potentially_congested: &BTreeSet<LinkId>,
    index: &SubsetIndex,
) -> Option<Vec<f64>> {
    let mut row = vec![0.0; index.num_targets()];
    for subset in induced_subsets(network, path_set, potentially_congested) {
        match index.index_of(&subset) {
            Some(col) if col < index.num_targets() => row[col] = 1.0,
            _ => return None,
        }
    }
    Some(row)
}

/// Searches for a path set whose row intersects the current null space
/// (lines 10–19 of Algorithm 1). Returns the path set and its dense row.
fn find_augmenting_path_set(
    network: &Network,
    potentially_congested: &BTreeSet<LinkId>,
    index: &SubsetIndex,
    observing_paths: &[Vec<PathId>],
    nullspace: &Matrix,
    seen_sets: &BTreeSet<Vec<PathId>>,
    config: &PathSelectionConfig,
) -> Option<(Vec<PathId>, Vec<f64>)> {
    // SortByHammingWeight: order the target subsets by the number of
    // non-negligible entries in their null-space row, descending.
    let mut weights: Vec<(usize, usize)> = (0..index.num_targets())
        .map(|i| {
            let w = (0..nullspace.cols())
                .filter(|&j| nullspace[(i, j)].abs() > config.tol)
                .count();
            (w, i)
        })
        .collect();
    weights.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    for (weight, target_idx) in weights {
        if weight == 0 {
            // This target (and all following ones) is already pinned; a path
            // set built from its observing paths alone cannot move the null
            // space in its direction, but may still help others, so we do
            // not break — we simply deprioritized it. In practice rows of
            // weight 0 rarely help, so skip them for speed.
            continue;
        }
        let base = &observing_paths[target_idx];
        if base.is_empty() {
            continue;
        }
        let mut emitted = 0usize;
        let mut found: Option<(Vec<PathId>, Vec<f64>)> = None;
        for_each_subset_by_size(base, config.max_candidates_per_subset, |candidate| {
            emitted += 1;
            if seen_sets.contains(candidate) {
                return false;
            }
            let Some(row) = target_row(network, candidate, potentially_congested, index) else {
                return false;
            };
            if row_hits_nullspace(&row, nullspace, config.tol) {
                found = Some((candidate.to_vec(), row));
                return true;
            }
            false
        });
        if found.is_some() {
            return found;
        }
    }
    None
}

/// `‖r × N‖ > tol`, computed sparsely over the non-zero entries of `r`.
fn row_hits_nullspace(row: &[f64], nullspace: &Matrix, tol: f64) -> bool {
    let nz: Vec<usize> = row
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0.0)
        .map(|(i, _)| i)
        .collect();
    if nz.is_empty() {
        return false;
    }
    for j in 0..nullspace.cols() {
        let mut s = 0.0;
        for &i in &nz {
            s += row[i] * nullspace[(i, j)];
        }
        if s.abs() > tol {
            return true;
        }
    }
    false
}

/// Enumerates the non-empty subsets of `base` in increasing cardinality,
/// invoking `visit` on each until it returns `true` (stop) or `budget`
/// subsets have been visited. The full set is always tried first: it is the
/// single most informative equation (it ties all the subsets of the target
/// together), and trying it first mirrors the seeding phase.
fn for_each_subset_by_size(
    base: &[PathId],
    budget: usize,
    mut visit: impl FnMut(&[PathId]) -> bool,
) {
    if base.is_empty() || budget == 0 {
        return;
    }
    let mut used = 0usize;
    // Full set first.
    used += 1;
    if visit(base) || used >= budget {
        return;
    }
    let n = base.len();
    for size in 1..n {
        let mut indices: Vec<usize> = (0..size).collect();
        'combos: loop {
            let candidate: Vec<PathId> = indices.iter().map(|&i| base[i]).collect();
            used += 1;
            if visit(&candidate) || used >= budget {
                return;
            }
            // Advance the combination.
            let mut i = size;
            loop {
                if i == 0 {
                    break 'combos;
                }
                i -= 1;
                if indices[i] < i + n - size {
                    indices[i] += 1;
                    for j in (i + 1)..size {
                        indices[j] = indices[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsets::potentially_congested_subsets;
    use crate::system::row_over_targets;
    use tomo_graph::toy::{fig1_case1, fig1_case2};
    use tomo_graph::PathId;
    use tomo_linalg::gauss::rank;
    use tomo_sim::PathObservations;

    /// Observations in which every path is congested at least once, so every
    /// link is potentially congested.
    fn busy_observations(num_paths: usize) -> PathObservations {
        let mut o = PathObservations::new(num_paths, 4);
        for p in 0..num_paths {
            o.set_congested(PathId(p), 0, true);
        }
        o
    }

    fn run(network: &tomo_graph::Network) -> (PathSelectionOutcome, Vec<CorrelationSubset>) {
        let obs = busy_observations(network.num_paths());
        let targets = potentially_congested_subsets(network, &obs, 4);
        let pc: BTreeSet<LinkId> = crate::subsets::potentially_congested_links(network, &obs)
            .into_iter()
            .collect();
        let outcome = select_path_sets(
            network,
            &obs,
            &targets,
            &pc,
            &PathSelectionConfig::default(),
        );
        (outcome, targets)
    }

    #[test]
    fn selected_path_sets_never_induce_unknowns_outside_the_targets() {
        // Regression test: when the target list is capped (here: singletons
        // only), Algorithm 1 must not select path sets whose equations
        // involve subsets outside Ê — such equations would entangle the
        // targets with unknowns the rank analysis cannot see, silently
        // corrupting "identifiable" estimates. On Fig. 1 Case 1, the path
        // set {p1, p2} induces the pair {e2, e3} and must be rejected.
        let net = fig1_case1();
        let obs = busy_observations(net.num_paths());
        let targets = potentially_congested_subsets(&net, &obs, 1);
        assert!(targets.iter().all(|t| t.len() == 1));
        let pc: BTreeSet<LinkId> = crate::subsets::potentially_congested_links(&net, &obs)
            .into_iter()
            .collect();
        let outcome = select_path_sets(&net, &obs, &targets, &pc, &PathSelectionConfig::default());
        let index = SubsetIndex::new(targets);
        for ps in &outcome.path_sets {
            for subset in crate::system::induced_subsets(&net, ps, &pc) {
                let col = index.index_of(&subset);
                assert!(
                    col.is_some_and(|c| c < index.num_targets()),
                    "path set {ps:?} induces non-target subset {subset}"
                );
            }
        }
        // Rejecting unclean seeds must not cost identifiability when clean
        // alternatives exist: Case 1's four singletons are all pinned by
        // pair-free path sets (e.g. {p2, p3} induces only singletons), which
        // the augmentation loop has to find.
        assert_eq!(outcome.final_nullity, 0);
        assert_eq!(outcome.identifiable_count(), index.num_targets());
    }

    #[test]
    fn case1_selects_a_full_rank_system() {
        // Fig. 1 Case 1: Identifiability++ holds, so Algorithm 1 must end
        // with an empty null space and all 5 targets identifiable.
        let net = fig1_case1();
        let (outcome, targets) = run(&net);
        assert_eq!(targets.len(), 5);
        assert_eq!(outcome.final_nullity, 0);
        assert_eq!(outcome.identifiable_count(), 5);
        // The system matrix over the targets must have rank 5.
        let obs = busy_observations(3);
        let pc: BTreeSet<LinkId> = crate::subsets::potentially_congested_links(&net, &obs)
            .into_iter()
            .collect();
        let index = SubsetIndex::new(targets);
        let rows: Vec<Vec<f64>> = outcome
            .path_sets
            .iter()
            .map(|ps| row_over_targets(&net, ps, &pc, &index))
            .collect();
        let m = Matrix::from_rows(&rows);
        assert_eq!(rank(&m), 5);
    }

    #[test]
    fn case1_seed_path_sets_match_the_paper_table() {
        // The seeding table of §5.3: for Ê = <{e1},{e2},{e3},{e4},{e2,e3}>,
        // the seed path sets are {p1,p2}, {p1}, {p2,p3}, {p3}, {p1,p2,p3}.
        let net = fig1_case1();
        let (outcome, targets) = run(&net);
        let expected: Vec<Vec<PathId>> = vec![
            vec![PathId(0), PathId(1)],
            vec![PathId(0)],
            vec![PathId(1), PathId(2)],
            vec![PathId(2)],
            vec![PathId(0), PathId(1), PathId(2)],
        ];
        // The targets are ordered singletons-then-pairs per correlation set;
        // regardless of the exact ordering, every expected seed must appear
        // among the selected path sets.
        for e in &expected {
            assert!(
                outcome.path_sets.contains(e),
                "missing seed {e:?}; got {:?} (targets {targets:?})",
                outcome.path_sets
            );
        }
        assert_eq!(outcome.initial_count, 5);
        // No augmentation is needed: the seeds already have full rank.
        assert_eq!(outcome.augmented_count, 0);
    }

    #[test]
    fn case2_reports_unidentifiable_subsets() {
        // Fig. 1 Case 2: {e1,e4} and {e2,e3} are traversed by the same paths,
        // so Identifiability++ fails and Algorithm 1 must stop with a
        // non-empty null space; the singleton subsets remain identifiable or
        // not depending on the structure, but at least one target must be
        // flagged unidentifiable.
        let net = fig1_case2();
        let (outcome, targets) = run(&net);
        assert_eq!(targets.len(), 6);
        assert!(outcome.final_nullity > 0);
        assert!(outcome.identifiable_count() < targets.len());
    }

    #[test]
    fn subset_enumeration_visits_full_set_first_and_respects_budget() {
        let base = vec![PathId(0), PathId(1), PathId(2)];
        let mut visited = Vec::new();
        for_each_subset_by_size(&base, 100, |s| {
            visited.push(s.to_vec());
            false
        });
        assert_eq!(visited[0], base);
        // 1 full set + 3 singles + 3 pairs = 7 (the full set is not repeated
        // at size 3 because enumeration of proper subsets stops at n-1).
        assert_eq!(visited.len(), 7);

        let mut count = 0;
        for_each_subset_by_size(&base, 3, |_| {
            count += 1;
            false
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn empty_targets_yield_empty_outcome() {
        let net = fig1_case1();
        let obs = busy_observations(3);
        let outcome = select_path_sets(
            &net,
            &obs,
            &[],
            &BTreeSet::new(),
            &PathSelectionConfig::default(),
        );
        assert!(outcome.path_sets.is_empty());
        assert_eq!(outcome.final_nullity, 0);
    }
}
