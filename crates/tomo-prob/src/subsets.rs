//! Potentially congested links and correlation subsets (§5.2 of the paper).
//!
//! A correlation subset is *potentially congested* if none of its links is
//! traversed by a path that was good during every interval: by Separability,
//! a link on an always-good path is always good, so any subset containing it
//! has congestion probability 0 and need not be estimated.

use std::collections::BTreeSet;

use tomo_graph::{CorrelationSubset, LinkId, Network};
use tomo_sim::PathObservations;

/// The links that are known to be always good because they lie on at least
/// one always-good path.
pub fn always_good_links(network: &Network, observations: &PathObservations) -> BTreeSet<LinkId> {
    let mut out = BTreeSet::new();
    for p in observations.always_good_paths() {
        out.extend(network.path(p).links.iter().copied());
    }
    out
}

/// The potentially congested links: observed links that are not on any
/// always-good path.
pub fn potentially_congested_links(
    network: &Network,
    observations: &PathObservations,
) -> Vec<LinkId> {
    let good = always_good_links(network, observations);
    network
        .link_ids()
        .filter(|l| !network.paths_through_link(*l).is_empty())
        .filter(|l| !good.contains(l))
        .collect()
}

/// Enumerates the potentially congested correlation subsets with at most
/// `max_subset_size` links each — the unknowns `Ê` of the Probability
/// Computation problem.
///
/// Subsets are enumerated per correlation set over its potentially congested
/// members only, in order of increasing cardinality, which is also the order
/// in which the system columns are laid out.
pub fn potentially_congested_subsets(
    network: &Network,
    observations: &PathObservations,
    max_subset_size: usize,
) -> Vec<CorrelationSubset> {
    let good = always_good_links(network, observations);
    let mut out = Vec::new();
    for set in network.correlation_sets() {
        let members: Vec<LinkId> = set
            .links
            .iter()
            .copied()
            .filter(|l| !network.paths_through_link(*l).is_empty())
            .filter(|l| !good.contains(l))
            .collect();
        if members.is_empty() {
            continue;
        }
        let pruned = tomo_graph::CorrelationSet::new(set.id, members);
        out.extend(pruned.subsets_up_to(max_subset_size));
    }
    out
}

/// The complement `Ē` of a subset *within the potentially congested members*
/// of its correlation set. Using the pruned complement (rather than the full
/// `C \ E`) keeps `Paths(Ē)` from excluding paths that only cross always-good
/// links of the set, which can only help the path-set selection.
pub fn pruned_complement(
    network: &Network,
    observations: &PathObservations,
    subset: &CorrelationSubset,
) -> CorrelationSubset {
    let good = always_good_links(network, observations);
    let set = &network.correlation_sets()[subset.set_id];
    CorrelationSubset::new(
        subset.set_id,
        set.links
            .iter()
            .copied()
            .filter(|l| !subset.links.contains(l) && !good.contains(l)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::toy::{fig1_case1, E1, E2, E3, E4};
    use tomo_graph::PathId;

    /// Observations where p3 is always good and p1/p2 are congested at least
    /// once — the example of §5.2 of the paper.
    fn obs_p3_always_good() -> PathObservations {
        let mut o = PathObservations::new(3, 4);
        o.set_congested(PathId(0), 0, true);
        o.set_congested(PathId(1), 2, true);
        o
    }

    #[test]
    fn always_good_links_follow_separability() {
        let net = fig1_case1();
        let o = obs_p3_always_good();
        let good = always_good_links(&net, &o);
        // p3 = {e4, e3} always good => e3 and e4 always good.
        assert_eq!(good.into_iter().collect::<Vec<_>>(), vec![E3, E4]);
    }

    #[test]
    fn potentially_congested_matches_paper_example() {
        // §5.2: "the potentially congested correlation subsets are {e1} and
        // {e2}".
        let net = fig1_case1();
        let o = obs_p3_always_good();
        assert_eq!(potentially_congested_links(&net, &o), vec![E1, E2]);
        let subs = potentially_congested_subsets(&net, &o, 4);
        let rendered: Vec<Vec<LinkId>> = subs.iter().map(|s| s.links_vec()).collect();
        assert_eq!(rendered, vec![vec![E1], vec![E2]]);
    }

    #[test]
    fn all_subsets_when_nothing_is_always_good() {
        let net = fig1_case1();
        let mut o = PathObservations::new(3, 2);
        for p in 0..3 {
            o.set_congested(PathId(p), 0, true);
        }
        let subs = potentially_congested_subsets(&net, &o, 4);
        assert_eq!(subs.len(), 5); // {e1},{e2},{e3},{e4},{e2,e3}
    }

    #[test]
    fn pruned_complement_drops_always_good_links() {
        let net = fig1_case1();
        let o = obs_p3_always_good();
        // In the {e2, e3} correlation set, e3 is always good, so the pruned
        // complement of {e2} is empty (the paper's full complement would be
        // {e3}).
        let e2 = CorrelationSubset::new(net.correlation_set_of(E2), [E2]);
        let comp = pruned_complement(&net, &o, &e2);
        assert!(comp.is_empty());
    }
}
