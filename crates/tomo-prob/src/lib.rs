//! Congestion Probability Computation — the paper's core contribution.
//!
//! Given the network graph and the per-interval path observations over `T`
//! intervals, *Probability Computation* asks for the probability that each
//! set of links is congested (§2, §4, §5 of "Shifting Network Tomography
//! Toward A Practical Goal", CoNEXT 2011). This crate implements three
//! algorithms for it:
//!
//! * [`CorrelationComplete`] — the paper's algorithm (§5.3): assumes
//!   Separability, E2E Monitoring and Correlation Sets only; selects a
//!   minimal set of path-set equations with Algorithm 1 (guided by an
//!   incrementally-updated null space, Algorithm 2) and solves the resulting
//!   log-linear system for the good-probability of every identifiable
//!   correlation subset.
//! * [`Independence`] — the Probability Computation step of CLINK
//!   (Nguyen & Thiran, INFOCOM 2007): additionally assumes that links are
//!   independent and only estimates per-link probabilities.
//! * [`CorrelationHeuristic`] — the earlier heuristic of Ghita et al.
//!   (IMC 2010): works under the Correlation Sets assumption but forms a
//!   large, unselected set of equations and only reports per-link
//!   probabilities.
//!
//! All three implement the [`ProbabilityComputation`] trait and produce a
//! [`ProbabilityEstimate`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assumptions;
pub mod correlation_complete;
pub mod correlation_heuristic;
pub mod estimator;
pub mod independence;
pub mod path_selection;
pub mod result;
pub mod subsets;
pub mod system;

pub use assumptions::AlgorithmAssumptions;
pub use correlation_complete::{CorrelationComplete, CorrelationCompleteConfig, CorrelationSystem};
pub use correlation_heuristic::{CorrelationHeuristic, CorrelationHeuristicConfig};
pub use estimator::{EstimatorConfig, PathSetEstimator};
pub use independence::{baseline_path_sets, Independence, IndependenceConfig};
pub use path_selection::{select_path_sets, PathSelectionConfig, PathSelectionOutcome};
pub use result::ProbabilityEstimate;
pub use subsets::potentially_congested_subsets;
pub use system::{EquationSystem, SubsetIndex};

use tomo_graph::Network;
use tomo_sim::PathObservations;

/// Common interface of the Probability Computation algorithms.
pub trait ProbabilityComputation {
    /// Short human-readable name (used in reports and figures).
    fn name(&self) -> &'static str;

    /// The assumptions, conditions and approximations the algorithm relies
    /// on (one row of Table 2 of the paper).
    fn assumptions(&self) -> AlgorithmAssumptions;

    /// Runs the algorithm over the observations collected on `network`.
    fn compute(&self, network: &Network, observations: &PathObservations) -> ProbabilityEstimate;
}
