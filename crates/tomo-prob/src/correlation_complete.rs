//! *Correlation-complete* — the paper's Probability Computation algorithm
//! (§5.3, Algorithms 1 and 2).
//!
//! Pipeline:
//!
//! 1. determine the always-good links and the potentially congested
//!    correlation subsets (the targets), capped at a configurable subset
//!    size (§4: "we can configure our algorithm to compute only the
//!    congestion probability of each set of one, two, or three links");
//! 2. run Algorithm 1 to select a small list of path sets whose equations
//!    pin down as many targets as possible, maintaining the null space
//!    incrementally with Algorithm 2;
//! 3. assemble the log-linear system of Eq. (1) over those path sets and
//!    solve it by least squares;
//! 4. report the good-probability of every target subset together with its
//!    identifiability, and the per-link congestion probabilities.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use tomo_graph::{CorrelationSubset, LinkId, Network};
use tomo_linalg::LstsqOptions;
use tomo_sim::PathObservations;

use crate::assumptions::AlgorithmAssumptions;
use crate::estimator::{EstimatorConfig, PathSetEstimator};
use crate::path_selection::{select_path_sets, PathSelectionConfig, PathSelectionOutcome};
use crate::result::{EstimateDiagnostics, ProbabilityEstimate};
use crate::subsets::{potentially_congested_links, potentially_congested_subsets};
use crate::system::EquationSystem;
use crate::ProbabilityComputation;

/// Configuration of [`CorrelationComplete`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorrelationCompleteConfig {
    /// Maximum size of the correlation subsets whose probability is computed
    /// (the §4 resource knob). 2 by default: individual links plus pairs.
    pub max_subset_size: usize,
    /// When `true`, multi-link target subsets are restricted to sets of links
    /// that are jointly traversed by at least one path. This is an additional
    /// resource knob that keeps the number of unknowns proportional to the
    /// topology inside very large ASes, at the cost of slightly optimistic
    /// identifiability flags (subsets outside the target list are treated as
    /// auxiliary unknowns). Disabled by default, faithfully following the
    /// paper's definition of `Ê`.
    pub require_common_path: bool,
    /// Path-set selection (Algorithm 1) configuration.
    pub selection: PathSelectionConfig,
    /// Empirical estimator configuration.
    pub estimator: EstimatorConfig,
    /// Ridge regularization used when the final system is rank deficient.
    pub ridge: f64,
}

impl Default for CorrelationCompleteConfig {
    fn default() -> Self {
        Self {
            max_subset_size: 2,
            require_common_path: false,
            selection: PathSelectionConfig::default(),
            estimator: EstimatorConfig::default(),
            ridge: 1e-8,
        }
    }
}

/// The fitted *structure* of the Probability Computation algorithm:
/// everything steps 1–3 derive from the observations *before* the final
/// solve — the potentially congested links, the target subsets, the
/// Algorithm-1 path-set selection and the assembled equation system.
///
/// The structure depends on the observations only through which paths were
/// ever congested (the always-good-path set): streaming callers can
/// therefore cache it across batches and re-solve with fresh right-hand
/// sides as long as that bitmap is stable (see `tomo-core`'s
/// `OnlineCorrelation`), while [`CorrelationComplete::compute`] rebuilds it
/// every time.
#[derive(Clone, Debug)]
pub struct CorrelationSystem {
    /// The potentially congested links.
    pub pc_links: BTreeSet<LinkId>,
    /// The target correlation subsets (the unknowns to report), in column
    /// order.
    pub targets: Vec<CorrelationSubset>,
    /// The Algorithm-1 selection outcome (path sets + identifiability).
    pub selection: PathSelectionOutcome,
    /// The assembled log-linear system over the selected path sets.
    pub system: EquationSystem,
}

impl CorrelationSystem {
    /// Runs steps 1–3 of the algorithm: derive targets, select path sets,
    /// assemble the equation system (with right-hand sides estimated from
    /// `observations`).
    pub fn build(
        config: &CorrelationCompleteConfig,
        network: &Network,
        observations: &PathObservations,
    ) -> Self {
        // --- Targets -------------------------------------------------------
        let pc_links: BTreeSet<LinkId> = potentially_congested_links(network, observations)
            .into_iter()
            .collect();
        let mut targets =
            potentially_congested_subsets(network, observations, config.max_subset_size);
        if config.require_common_path {
            targets.retain(|s| {
                if s.len() <= 1 {
                    return true;
                }
                // Keep the subset only if some path traverses all its links.
                let links = s.links_vec();
                let first = links[0];
                network
                    .paths_through_link(first)
                    .iter()
                    .any(|&p| links.iter().all(|&l| network.path(p).traverses(l)))
            });
        }
        if targets.is_empty() {
            return Self {
                pc_links,
                targets,
                selection: PathSelectionOutcome {
                    path_sets: Vec::new(),
                    initial_count: 0,
                    augmented_count: 0,
                    final_nullity: 0,
                    identifiable: Vec::new(),
                },
                system: EquationSystem::new(Vec::new()),
            };
        }

        // --- Algorithm 1: path-set selection -------------------------------
        let selection = select_path_sets(
            network,
            observations,
            &targets,
            &pc_links,
            &config.selection,
        );

        // --- Assemble the system -------------------------------------------
        let estimator = PathSetEstimator::new(observations, config.estimator.clone());
        let mut system = EquationSystem::new(targets.clone());
        for ps in &selection.path_sets {
            system.add_path_set(network, &estimator, &pc_links, ps);
        }
        Self {
            pc_links,
            targets,
            selection,
            system,
        }
    }

    /// Whether there is nothing to estimate (no path was ever congested).
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Assembles the reported [`ProbabilityEstimate`] from a solution of the
    /// system (`good_probability[col]` per column of the subset index,
    /// targets first). Shared between the batch solve and streaming callers
    /// that re-solve with updated right-hand sides.
    pub fn estimate_from_solution(
        &self,
        name: &'static str,
        network: &Network,
        good_probability: &[f64],
    ) -> ProbabilityEstimate {
        let mut estimate = ProbabilityEstimate::new(name, network.num_links());
        let total_targets = self.targets.len();
        if total_targets == 0 {
            // Nothing was ever congested: every observed link is an
            // identifiable zero.
            estimate.diagnostics = EstimateDiagnostics {
                total_targets: 0,
                ..EstimateDiagnostics::default()
            };
            for l in network.link_ids() {
                if !network.paths_through_link(l).is_empty() {
                    estimate.set_link(l, 0.0, true);
                }
            }
            return estimate;
        }
        for (i, subset) in self.targets.iter().enumerate() {
            let col = self
                .system
                .index()
                .index_of(subset)
                .expect("targets are always indexed");
            let good = good_probability[col];
            let identifiable = self.selection.identifiable.get(i).copied().unwrap_or(false);
            estimate.set_subset_good(subset.links.iter().copied(), good, identifiable);
        }
        // Links that are not potentially congested are known good.
        for l in network.link_ids() {
            if !self.pc_links.contains(&l) && !network.paths_through_link(l).is_empty() {
                estimate.set_link(l, 0.0, true);
            }
        }
        estimate.diagnostics = EstimateDiagnostics {
            num_equations: self.system.num_equations(),
            num_unknowns: self.system.index().len(),
            rank: total_targets - self.selection.final_nullity,
            identifiable_targets: self.selection.identifiable_count(),
            total_targets,
        };
        estimate
    }
}

/// The paper's Probability Computation algorithm.
#[derive(Clone, Debug, Default)]
pub struct CorrelationComplete {
    config: CorrelationCompleteConfig,
}

impl CorrelationComplete {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: CorrelationCompleteConfig) -> Self {
        Self { config }
    }

    /// Creates the algorithm with a custom subset-size cap and defaults
    /// elsewhere.
    pub fn with_max_subset_size(max_subset_size: usize) -> Self {
        Self::new(CorrelationCompleteConfig {
            max_subset_size,
            ..CorrelationCompleteConfig::default()
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &CorrelationCompleteConfig {
        &self.config
    }
}

impl ProbabilityComputation for CorrelationComplete {
    fn name(&self) -> &'static str {
        "Correlation-complete"
    }

    fn assumptions(&self) -> AlgorithmAssumptions {
        AlgorithmAssumptions::correlation_complete()
    }

    fn compute(&self, network: &Network, observations: &PathObservations) -> ProbabilityEstimate {
        let sys = CorrelationSystem::build(&self.config, network, observations);
        if sys.is_empty() {
            return sys.estimate_from_solution(self.name(), network, &[]);
        }
        let opts = LstsqOptions {
            ridge: self.config.ridge,
            compute_identifiability: false,
            ..LstsqOptions::default()
        };
        let solved = sys.system.solve(&opts);
        sys.estimate_from_solution(self.name(), network, &solved.good_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::toy::{fig1_case1, fig1_case2, E1, E2, E3, E4};
    use tomo_graph::PathId;

    /// Builds deterministic observations on the Fig. 1 topology where e1 is
    /// congested 20% of the time, {e2,e3} are perfectly correlated and
    /// congested 40% of the time, and e4 is always good.
    fn toy_observations(t: usize) -> PathObservations {
        let mut obs = PathObservations::new(3, t);
        for ti in 0..t {
            // The two schedules are independent of each other (periods 25 and
            // 5 interleave uniformly), as required by the Correlation-Sets
            // assumption for links of different correlation sets.
            let e1_bad = ti % 25 < 5; // 20%
            let e23_bad = ti % 5 < 2; // 40%
            obs.set_congested(PathId(0), ti, e1_bad || e23_bad); // p1 = {e1,e2}
            obs.set_congested(PathId(1), ti, e1_bad || e23_bad); // p2 = {e1,e3}
            obs.set_congested(PathId(2), ti, e23_bad); // p3 = {e4,e3}
        }
        obs
    }

    #[test]
    fn recovers_toy_probabilities_case1() {
        let net = fig1_case1();
        let obs = toy_observations(1000);
        let algo = CorrelationComplete::with_max_subset_size(2);
        let est = algo.compute(&net, &obs);

        assert!((est.link_congestion_probability(E1) - 0.2).abs() < 0.05);
        assert!((est.link_congestion_probability(E2) - 0.4).abs() < 0.05);
        assert!((est.link_congestion_probability(E3) - 0.4).abs() < 0.05);
        assert!(est.link_congestion_probability(E4) < 0.05);
        // The pair {e2,e3} is perfectly correlated: P(both congested) = 0.4.
        let joint = est
            .subset_congestion_probability(&[E2, E3])
            .expect("pair is a target");
        assert!((joint - 0.4).abs() < 0.05, "joint = {joint}");
        // Identifiability++ holds in Case 1: everything identifiable.
        assert!(est.link_is_identifiable(E1));
        assert!(est.subset_is_identifiable(&[E2, E3]));
        assert_eq!(
            est.diagnostics.identifiable_targets,
            est.diagnostics.total_targets
        );
    }

    #[test]
    fn flags_unidentifiable_subsets_in_case2() {
        let net = fig1_case2();
        let obs = toy_observations(1000);
        let algo = CorrelationComplete::with_max_subset_size(2);
        let est = algo.compute(&net, &obs);
        // Identifiability++ fails: not all targets are identifiable, and the
        // algorithm must say so rather than silently guessing.
        assert!(est.diagnostics.identifiable_targets < est.diagnostics.total_targets);
    }

    #[test]
    fn all_good_observations_yield_zero_probabilities() {
        let net = fig1_case1();
        let obs = PathObservations::new(3, 50);
        let algo = CorrelationComplete::default();
        let est = algo.compute(&net, &obs);
        for l in [E1, E2, E3, E4] {
            assert_eq!(est.link_congestion_probability(l), 0.0);
            assert!(est.link_is_identifiable(l));
        }
        assert_eq!(est.diagnostics.total_targets, 0);
    }

    #[test]
    fn assumptions_match_table2() {
        let algo = CorrelationComplete::default();
        let a = algo.assumptions();
        assert!(a.correlation_sets);
        assert!(!a.independence);
        assert!(!a.homogeneity);
        assert!(!a.other_approximation);
        assert_eq!(algo.name(), "Correlation-complete");
    }

    #[test]
    fn probabilities_are_valid_probabilities() {
        let net = fig1_case1();
        let obs = toy_observations(200);
        let est = CorrelationComplete::default().compute(&net, &obs);
        for l in net.link_ids() {
            let p = est.link_congestion_probability(l);
            assert!((0.0..=1.0).contains(&p));
        }
        for (_, g) in est.estimated_subsets() {
            assert!((0.0..=1.0).contains(&g));
        }
    }
}
