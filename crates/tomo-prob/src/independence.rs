//! *Independence* — the Probability Computation step of CLINK
//! (Nguyen & Thiran, INFOCOM 2007), used as a baseline in §5.4 of the paper.
//!
//! Under the Independence assumption (Assumption 4), Eq. (1) factorizes over
//! individual links:
//!
//! ```text
//! ln P(∩_{p∈P} Y_p = 0) = Σ_{e ∈ Links(P)} ln P(X_e = 0)
//! ```
//!
//! so the unknowns are the per-link good-probabilities. The algorithm forms
//! one equation per path plus one per (capped) pair of intersecting paths —
//! mirroring Fig. 2(a) of the paper — and solves the system by least squares.
//! When links are in fact correlated the factorization is wrong, which is
//! exactly the inaccuracy the paper's "No Independence" scenario exposes.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use tomo_graph::{LinkId, Network, PathId};
use tomo_linalg::{
    least_squares, should_use_sparse, sparse_least_squares, LstsqOptions, Matrix, SparseMatrix,
    Vector,
};
use tomo_sim::PathObservations;

use crate::assumptions::AlgorithmAssumptions;
use crate::estimator::{EstimatorConfig, PathSetEstimator};
use crate::result::{EstimateDiagnostics, ProbabilityEstimate};
use crate::subsets::potentially_congested_links;
use crate::ProbabilityComputation;

/// Configuration of [`Independence`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IndependenceConfig {
    /// Maximum number of path-pair equations added on top of the per-path
    /// equations.
    pub max_pair_equations: usize,
    /// Empirical estimator configuration.
    pub estimator: EstimatorConfig,
    /// Ridge regularization for rank-deficient systems.
    pub ridge: f64,
    /// Whether to compute per-unknown identifiability (costs an extra
    /// elimination pass; disable for large sweeps).
    pub compute_identifiability: bool,
}

impl Default for IndependenceConfig {
    fn default() -> Self {
        Self {
            max_pair_equations: 4000,
            estimator: EstimatorConfig::default(),
            ridge: 1e-8,
            compute_identifiability: true,
        }
    }
}

/// The Independence Probability Computation algorithm (CLINK step 1).
#[derive(Clone, Debug, Default)]
pub struct Independence {
    config: IndependenceConfig,
}

impl Independence {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: IndependenceConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &IndependenceConfig {
        &self.config
    }
}

/// Enumerates the path sets used by the Independence and
/// Correlation-heuristic baselines: every single path that is not always
/// good, plus up to `max_pairs` pairs of intersecting paths. The pairs are
/// chosen deterministically by scanning links and pairing consecutive paths
/// that share them, which spreads the pairs over the whole topology.
///
/// Public because the online (streaming) form of the Independence estimator
/// in `tomo-core` builds the same equation structure and keeps it cached
/// between observation batches.
pub fn baseline_path_sets(
    network: &Network,
    observations: &PathObservations,
    max_pairs: usize,
) -> Vec<Vec<PathId>> {
    let mut sets: Vec<Vec<PathId>> = Vec::new();
    // Include every observed path (always-good paths still contribute the
    // information that their links are good; their equation right-hand side
    // is ln 1 = 0).
    for p in network.path_ids() {
        sets.push(vec![p]);
    }
    let _ = observations;
    // Pairs of intersecting paths.
    let mut seen: BTreeSet<(PathId, PathId)> = BTreeSet::new();
    'outer: for l in network.link_ids() {
        let through = network.paths_through_link(l);
        for w in through.windows(2) {
            let key = (w[0].min(w[1]), w[0].max(w[1]));
            if key.0 == key.1 || !seen.insert(key) {
                continue;
            }
            sets.push(vec![key.0, key.1]);
            if seen.len() >= max_pairs {
                break 'outer;
            }
        }
    }
    sets
}

impl ProbabilityComputation for Independence {
    fn name(&self) -> &'static str {
        "Independence"
    }

    fn assumptions(&self) -> AlgorithmAssumptions {
        AlgorithmAssumptions::independence_step()
    }

    fn compute(&self, network: &Network, observations: &PathObservations) -> ProbabilityEstimate {
        let cfg = &self.config;
        let mut estimate = ProbabilityEstimate::new(self.name(), network.num_links());
        estimate.independence_fallback = true;

        let pc_links = potentially_congested_links(network, observations);
        let pc_set: BTreeSet<LinkId> = pc_links.iter().copied().collect();
        // Column index: one unknown per potentially congested link.
        let col_of = |l: LinkId| pc_links.binary_search(&l).ok();

        // Links that are observed but not potentially congested are known
        // good.
        for l in network.link_ids() {
            if !pc_set.contains(&l) && !network.paths_through_link(l).is_empty() {
                estimate.set_link(l, 0.0, true);
            }
        }
        if pc_links.is_empty() {
            estimate.diagnostics.total_targets = 0;
            return estimate;
        }

        let estimator = PathSetEstimator::new(observations, cfg.estimator.clone());
        let path_sets = baseline_path_sets(network, observations, cfg.max_pair_equations);

        // Assemble rows in sparse form (column lists): a path touches a
        // handful of links, so at brite-large scale the dense row matrix
        // would be hundreds of MB of zeros.
        let mut rows: Vec<Vec<usize>> = Vec::new();
        let mut rhs: Vec<f64> = Vec::new();
        let mut nnz = 0usize;
        for ps in &path_sets {
            let mut cols: Vec<usize> = network
                .links_covered(ps.iter())
                .into_iter()
                .filter_map(col_of)
                .collect();
            if cols.is_empty() {
                continue;
            }
            cols.sort_unstable();
            cols.dedup();
            nnz += cols.len();
            rows.push(cols);
            rhs.push(estimator.log_all_good_probability(ps));
        }

        let num_equations = rows.len();
        let b = Vector::from_vec(rhs);
        let opts = LstsqOptions {
            ridge: cfg.ridge,
            compute_identifiability: cfg.compute_identifiability,
            ..LstsqOptions::default()
        };
        let sol = if should_use_sparse(num_equations, pc_links.len(), nnz) {
            let mut a = SparseMatrix::with_cols(pc_links.len());
            for cols in &rows {
                a.push_binary_row(cols);
            }
            sparse_least_squares(&a, &b, &opts)
        } else {
            let mut a = Matrix::zeros(num_equations, pc_links.len());
            for (r, cols) in rows.iter().enumerate() {
                for &c in cols {
                    a[(r, c)] = 1.0;
                }
            }
            least_squares(&a, &b, &opts)
        };

        for (c, &l) in pc_links.iter().enumerate() {
            let good = sol.x[c].exp().clamp(0.0, 1.0);
            let identifiable = if cfg.compute_identifiability {
                sol.identifiable[c]
            } else {
                true
            };
            estimate.set_link(l, 1.0 - good, identifiable);
        }

        estimate.diagnostics = EstimateDiagnostics {
            num_equations,
            num_unknowns: pc_links.len(),
            rank: sol.rank,
            identifiable_targets: sol.identifiable.iter().filter(|&&b| b).count(),
            total_targets: pc_links.len(),
        };
        estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::toy::{fig1_case1, E1, E2, E3, E4};

    /// Independent congestion: e1 bad 20% of intervals, e3 bad 25%
    /// (on a disjoint 1-in-4 schedule), e2 and e4 always good.
    fn independent_observations(t: usize) -> PathObservations {
        let mut obs = PathObservations::new(3, t);
        for ti in 0..t {
            let e1_bad = ti % 5 == 0;
            let e3_bad = ti % 4 == 1;
            obs.set_congested(PathId(0), ti, e1_bad); // p1 = {e1,e2}
            obs.set_congested(PathId(1), ti, e1_bad || e3_bad); // p2 = {e1,e3}
            obs.set_congested(PathId(2), ti, e3_bad); // p3 = {e4,e3}
        }
        obs
    }

    /// Perfectly correlated e2/e3 (violating the Independence assumption).
    fn correlated_observations(t: usize) -> PathObservations {
        let mut obs = PathObservations::new(3, t);
        for ti in 0..t {
            let e23_bad = ti % 2 == 0; // 50%
            obs.set_congested(PathId(0), ti, e23_bad);
            obs.set_congested(PathId(1), ti, e23_bad);
            obs.set_congested(PathId(2), ti, e23_bad);
        }
        obs
    }

    #[test]
    fn accurate_when_links_are_independent() {
        let net = fig1_case1();
        let obs = independent_observations(2000);
        let est = Independence::default().compute(&net, &obs);
        assert!((est.link_congestion_probability(E1) - 0.2).abs() < 0.05);
        assert!((est.link_congestion_probability(E3) - 0.25).abs() < 0.05);
        assert!(est.link_congestion_probability(E2) < 0.05);
        assert!(est.link_congestion_probability(E4) < 0.05);
    }

    #[test]
    fn inaccurate_when_links_are_correlated() {
        // §3.1: with e2 and e3 perfectly correlated, the Independence
        // equations are wrong. The sum of the absolute errors across links
        // must be noticeably larger than in the independent case.
        let net = fig1_case1();
        let obs = correlated_observations(2000);
        let est = Independence::default().compute(&net, &obs);
        // True marginals: e2 = e3 = 0.5, e1 = e4 = 0.
        let err = (est.link_congestion_probability(E1) - 0.0).abs()
            + (est.link_congestion_probability(E2) - 0.5).abs()
            + (est.link_congestion_probability(E3) - 0.5).abs()
            + (est.link_congestion_probability(E4) - 0.0).abs();
        assert!(
            err > 0.2,
            "independence should mis-estimate correlated links, total error {err}"
        );
    }

    #[test]
    fn independence_fallback_reconstructs_joints_as_products() {
        let net = fig1_case1();
        let obs = independent_observations(2000);
        let est = Independence::default().compute(&net, &obs);
        let p1 = est.link_congestion_probability(E1);
        let p3 = est.link_congestion_probability(E3);
        let joint = est.subset_congestion_probability(&[E1, E3]).unwrap();
        assert!((joint - p1 * p3).abs() < 1e-9);
    }

    #[test]
    fn baseline_path_sets_contain_singles_and_pairs() {
        let net = fig1_case1();
        let obs = independent_observations(10);
        let sets = baseline_path_sets(&net, &obs, 10);
        assert!(sets.iter().filter(|s| s.len() == 1).count() >= 3);
        assert!(sets.iter().any(|s| s.len() == 2));
        // Respect the cap.
        let capped = baseline_path_sets(&net, &obs, 1);
        assert_eq!(capped.iter().filter(|s| s.len() == 2).count(), 1);
    }

    #[test]
    fn assumptions_match_table2() {
        let a = Independence::default().assumptions();
        assert!(a.independence);
        assert!(!a.correlation_sets);
        assert!(!a.other_approximation);
    }
}
