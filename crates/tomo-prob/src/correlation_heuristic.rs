//! *Correlation-heuristic* — the earlier heuristic of Ghita et al.
//! (IMC 2010), used as a baseline in §5.4 of the paper.
//!
//! Like Correlation-complete it works under the Correlation-Sets assumption
//! (joint good-probabilities of correlated links are treated as their own
//! unknowns rather than factorized), but it does **not** select path sets
//! with Algorithm 1: it simply forms one equation per path and per (capped)
//! pair of intersecting paths and solves the resulting — much larger and
//! noisier — system, reporting only the per-link congestion probabilities.
//! §5.4 of the paper attributes its accuracy gap on sparse topologies to
//! exactly this unselected, redundant equation set.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use tomo_graph::{CorrelationSubset, LinkId, Network};
use tomo_linalg::LstsqOptions;
use tomo_sim::PathObservations;

use crate::assumptions::AlgorithmAssumptions;
use crate::estimator::{EstimatorConfig, PathSetEstimator};
use crate::independence::baseline_path_sets;
use crate::result::{EstimateDiagnostics, ProbabilityEstimate};
use crate::subsets::potentially_congested_links;
use crate::system::EquationSystem;
use crate::ProbabilityComputation;

/// Configuration of [`CorrelationHeuristic`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorrelationHeuristicConfig {
    /// Maximum number of path-pair equations added on top of the per-path
    /// equations.
    pub max_pair_equations: usize,
    /// Empirical estimator configuration.
    pub estimator: EstimatorConfig,
    /// Ridge regularization for rank-deficient systems.
    pub ridge: f64,
    /// Whether to compute per-unknown identifiability.
    pub compute_identifiability: bool,
}

impl Default for CorrelationHeuristicConfig {
    fn default() -> Self {
        Self {
            max_pair_equations: 4000,
            estimator: EstimatorConfig::default(),
            ridge: 1e-8,
            compute_identifiability: false,
        }
    }
}

/// The Correlation-heuristic Probability Computation algorithm.
#[derive(Clone, Debug, Default)]
pub struct CorrelationHeuristic {
    config: CorrelationHeuristicConfig,
}

impl CorrelationHeuristic {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: CorrelationHeuristicConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CorrelationHeuristicConfig {
        &self.config
    }
}

impl ProbabilityComputation for CorrelationHeuristic {
    fn name(&self) -> &'static str {
        "Correlation-heuristic"
    }

    fn assumptions(&self) -> AlgorithmAssumptions {
        AlgorithmAssumptions::correlation_heuristic()
    }

    fn compute(&self, network: &Network, observations: &PathObservations) -> ProbabilityEstimate {
        let cfg = &self.config;
        let mut estimate = ProbabilityEstimate::new(self.name(), network.num_links());

        let pc_links_vec = potentially_congested_links(network, observations);
        let pc_links: BTreeSet<LinkId> = pc_links_vec.iter().copied().collect();
        for l in network.link_ids() {
            if !pc_links.contains(&l) && !network.paths_through_link(l).is_empty() {
                estimate.set_link(l, 0.0, true);
            }
        }
        if pc_links.is_empty() {
            return estimate;
        }

        // Targets: singleton subsets only (this heuristic reports per-link
        // probabilities). Larger intersections induced by the path-set
        // equations become auxiliary unknowns automatically.
        let targets: Vec<CorrelationSubset> = pc_links_vec
            .iter()
            .map(|&l| CorrelationSubset::singleton(network.correlation_set_of(l), l))
            .collect();
        let total_targets = targets.len();

        let estimator = PathSetEstimator::new(observations, cfg.estimator.clone());
        let mut system = EquationSystem::new(targets.clone());
        for ps in baseline_path_sets(network, observations, cfg.max_pair_equations) {
            system.add_path_set(network, &estimator, &pc_links, &ps);
        }
        let opts = LstsqOptions {
            ridge: cfg.ridge,
            compute_identifiability: cfg.compute_identifiability,
            ..LstsqOptions::default()
        };
        let solved = system.solve(&opts);

        let mut identifiable_targets = 0usize;
        for (i, subset) in targets.iter().enumerate() {
            let col = system
                .index()
                .index_of(subset)
                .expect("targets are indexed");
            let good = solved.good_probability[col];
            let identifiable = if cfg.compute_identifiability {
                solved.identifiable[col]
            } else {
                true
            };
            if identifiable {
                identifiable_targets += 1;
            }
            let link = *subset.links.iter().next().expect("singleton target");
            estimate.set_link(link, 1.0 - good, identifiable);
            let _ = i;
        }

        estimate.diagnostics = EstimateDiagnostics {
            num_equations: system.num_equations(),
            num_unknowns: system.index().len(),
            rank: solved.rank,
            identifiable_targets,
            total_targets,
        };
        estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::toy::{fig1_case1, E1, E2, E3, E4};
    use tomo_graph::PathId;

    /// e1 bad 20%, {e2,e3} perfectly correlated and bad 40%, e4 always good.
    fn correlated_observations(t: usize) -> PathObservations {
        let mut obs = PathObservations::new(3, t);
        for ti in 0..t {
            let e1_bad = ti % 5 == 0;
            let e23_bad = ti % 5 < 2;
            obs.set_congested(PathId(0), ti, e1_bad || e23_bad);
            obs.set_congested(PathId(1), ti, e1_bad || e23_bad);
            obs.set_congested(PathId(2), ti, e23_bad);
        }
        obs
    }

    #[test]
    fn handles_correlated_links_better_than_independence() {
        let net = fig1_case1();
        let obs = correlated_observations(2000);
        let truth = [(E1, 0.2), (E2, 0.4), (E3, 0.4), (E4, 0.0)];

        let heuristic = CorrelationHeuristic::default().compute(&net, &obs);
        let independence = crate::Independence::default().compute(&net, &obs);

        let err = |est: &ProbabilityEstimate| -> f64 {
            truth
                .iter()
                .map(|&(l, p)| (est.link_congestion_probability(l) - p).abs())
                .sum()
        };
        let err_h = err(&heuristic);
        let err_i = err(&independence);
        assert!(
            err_h <= err_i + 1e-9,
            "heuristic ({err_h}) should not be worse than independence ({err_i}) here"
        );
        // And it should be reasonably accurate in absolute terms on this toy.
        assert!(err_h < 0.4, "total error {err_h}");
    }

    #[test]
    fn reports_probabilities_for_every_observed_link() {
        let net = fig1_case1();
        let obs = correlated_observations(500);
        let est = CorrelationHeuristic::default().compute(&net, &obs);
        for l in net.link_ids() {
            let p = est.link_congestion_probability(l);
            assert!((0.0..=1.0).contains(&p));
        }
        assert!(est.diagnostics.num_equations > 0);
        assert!(est.diagnostics.num_unknowns >= est.diagnostics.total_targets);
    }

    #[test]
    fn assumptions_match_table2() {
        let a = CorrelationHeuristic::default().assumptions();
        assert!(a.correlation_sets);
        assert!(!a.independence);
        assert!(a.other_approximation);
    }
}
