//! Assembly and solving of the log-linear equation system of Eq. (1).
//!
//! For a path set `P`, Separability plus the Correlation-Sets assumption
//! give (Eq. 1 of the paper):
//!
//! ```text
//! P(∩_{p∈P} Y_p = 0) = Π_{C ∈ C*} P(∩_{e ∈ Links(P) ∩ C} X_e = 0)
//! ```
//!
//! Taking logarithms turns each path set into one linear equation whose
//! unknowns are `y_E = ln P(∩_{e∈E} X_e = 0)` for the correlation subsets
//! `E = Links(P) ∩ C`. This module maintains the column index of those
//! unknowns ([`SubsetIndex`]), builds equation rows ([`EquationSystem`]) and
//! solves the system by (regularized) least squares, reporting which
//! unknowns were actually identifiable.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde::{Deserialize, Serialize};
use tomo_graph::{CorrelationSubset, LinkId, Network, PathId};
use tomo_linalg::{
    least_squares, should_use_sparse, sparse_least_squares, LstsqOptions, Matrix, SparseMatrix,
    Vector,
};

use crate::estimator::PathSetEstimator;

/// Column index of the unknowns (correlation subsets).
///
/// The first `num_targets` entries are the *target* subsets the caller wants
/// to estimate (the potentially congested subsets up to the configured size
/// cap); any further entries are *auxiliary* subsets that appeared in some
/// equation (e.g. larger intersections `Links(P) ∩ C`) and must be carried as
/// unknowns for the equations to be exact, but are not reported.
#[derive(Clone, Debug, Default)]
pub struct SubsetIndex {
    subsets: Vec<CorrelationSubset>,
    lookup: HashMap<CorrelationSubset, usize>,
    num_targets: usize,
}

impl SubsetIndex {
    /// Creates an index whose target columns are `targets`, in order.
    pub fn new(targets: Vec<CorrelationSubset>) -> Self {
        let mut idx = Self::default();
        for t in targets {
            idx.get_or_insert(&t);
        }
        idx.num_targets = idx.subsets.len();
        idx
    }

    /// Number of columns (targets + auxiliaries).
    pub fn len(&self) -> usize {
        self.subsets.len()
    }

    /// Returns `true` when the index has no columns.
    pub fn is_empty(&self) -> bool {
        self.subsets.is_empty()
    }

    /// Number of target columns.
    pub fn num_targets(&self) -> usize {
        self.num_targets
    }

    /// The subsets, targets first.
    pub fn subsets(&self) -> &[CorrelationSubset] {
        &self.subsets
    }

    /// The column of a subset, if present.
    pub fn index_of(&self, subset: &CorrelationSubset) -> Option<usize> {
        self.lookup.get(subset).copied()
    }

    /// The column of a subset, inserting it as an auxiliary column if absent.
    pub fn get_or_insert(&mut self, subset: &CorrelationSubset) -> usize {
        if let Some(&i) = self.lookup.get(subset) {
            return i;
        }
        let i = self.subsets.len();
        self.subsets.push(subset.clone());
        self.lookup.insert(subset.clone(), i);
        i
    }
}

/// Computes the correlation subsets induced by a path set: the non-empty
/// intersections `Links(P) ∩ C`, restricted to the potentially congested
/// links (always-good links contribute a factor of 1 and are dropped).
pub fn induced_subsets(
    network: &Network,
    path_set: &[PathId],
    potentially_congested: &BTreeSet<LinkId>,
) -> Vec<CorrelationSubset> {
    let links = network.links_covered(path_set.iter());
    let mut per_set: BTreeMap<usize, BTreeSet<LinkId>> = BTreeMap::new();
    for l in links {
        if !potentially_congested.contains(&l) {
            continue;
        }
        per_set
            .entry(network.correlation_set_of(l))
            .or_default()
            .insert(l);
    }
    per_set
        .into_iter()
        .map(|(set_id, links)| CorrelationSubset { set_id, links })
        .collect()
}

/// Builds the row vector `Row(P, Ê)` over the *target* columns of an index:
/// 1 at the column of every induced subset that is a target, 0 elsewhere.
/// Induced subsets that are not in the index are ignored (the paper's `Row`
/// only marks subsets present in `Ê`).
pub fn row_over_targets(
    network: &Network,
    path_set: &[PathId],
    potentially_congested: &BTreeSet<LinkId>,
    index: &SubsetIndex,
) -> Vec<f64> {
    let mut row = vec![0.0; index.num_targets()];
    for subset in induced_subsets(network, path_set, potentially_congested) {
        if let Some(col) = index.index_of(&subset) {
            if col < index.num_targets() {
                row[col] = 1.0;
            }
        }
    }
    row
}

/// One assembled equation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Equation {
    /// The path set the equation was formed from.
    pub path_set: Vec<PathId>,
    /// Columns with coefficient 1 (indices into the subset index).
    pub columns: Vec<usize>,
    /// Right-hand side: `ln P(∩ Y_p = 0)` (empirical, clamped).
    pub rhs: f64,
}

/// The assembled log-linear system.
#[derive(Clone, Debug)]
pub struct EquationSystem {
    index: SubsetIndex,
    equations: Vec<Equation>,
}

/// The solution of an [`EquationSystem`].
#[derive(Clone, Debug)]
pub struct SolvedSystem {
    /// Good-probability `P(∩_{e∈E} X_e = 0)` per subset of the index
    /// (targets first).
    pub good_probability: Vec<f64>,
    /// Whether each unknown was identifiable from the equations.
    pub identifiable: Vec<bool>,
    /// Rank of the system matrix.
    pub rank: usize,
    /// Number of equations.
    pub num_equations: usize,
}

impl EquationSystem {
    /// Creates an empty system over the given target subsets.
    pub fn new(targets: Vec<CorrelationSubset>) -> Self {
        Self {
            index: SubsetIndex::new(targets),
            equations: Vec::new(),
        }
    }

    /// The column index.
    pub fn index(&self) -> &SubsetIndex {
        &self.index
    }

    /// The equations added so far.
    pub fn equations(&self) -> &[Equation] {
        &self.equations
    }

    /// Number of equations.
    pub fn num_equations(&self) -> usize {
        self.equations.len()
    }

    /// Adds the equation corresponding to one path set. Returns `false`
    /// (adding nothing) when the path set induces no unknown subsets — such
    /// an equation carries no information.
    pub fn add_path_set(
        &mut self,
        network: &Network,
        estimator: &PathSetEstimator<'_>,
        potentially_congested: &BTreeSet<LinkId>,
        path_set: &[PathId],
    ) -> bool {
        let induced = induced_subsets(network, path_set, potentially_congested);
        if induced.is_empty() {
            return false;
        }
        let columns: Vec<usize> = induced
            .iter()
            .map(|s| self.index.get_or_insert(s))
            .collect();
        let rhs = estimator.log_all_good_probability(path_set);
        self.equations.push(Equation {
            path_set: path_set.to_vec(),
            columns,
            rhs,
        });
        true
    }

    /// Builds the dense system matrix (one row per equation, one column per
    /// unknown, including auxiliaries).
    pub fn matrix(&self) -> Matrix {
        let mut m = Matrix::zeros(self.equations.len(), self.index.len());
        for (i, eq) in self.equations.iter().enumerate() {
            for &c in &eq.columns {
                m[(i, c)] = 1.0;
            }
        }
        m
    }

    /// Builds the CSR form of the system matrix without materializing the
    /// dense one (the equations *are* the sparse rows: each stores only the
    /// columns with coefficient 1).
    pub fn sparse_matrix(&self) -> SparseMatrix {
        let mut m = SparseMatrix::with_cols(self.index.len());
        let mut cols: Vec<usize> = Vec::new();
        for eq in &self.equations {
            cols.clear();
            cols.extend_from_slice(&eq.columns);
            cols.sort_unstable();
            cols.dedup();
            m.push_binary_row(&cols);
        }
        m
    }

    /// Number of nonzeros the system matrix would have.
    pub fn nnz(&self) -> usize {
        self.equations.iter().map(|e| e.columns.len()).sum()
    }

    /// The right-hand-side vector.
    pub fn rhs(&self) -> Vector {
        Vector::from_iter(self.equations.iter().map(|e| e.rhs))
    }

    /// Whether [`EquationSystem::solve`] would take the sparse CG path for
    /// this system (large and sparse) rather than the dense reference path.
    pub fn prefers_sparse(&self) -> bool {
        should_use_sparse(self.equations.len(), self.index.len(), self.nnz())
    }

    /// Solves the system by least squares and converts the log-domain
    /// solution back to probabilities.
    ///
    /// Large, sparse systems (see [`tomo_linalg::should_use_sparse`]) are
    /// solved through the CSR conjugate-gradient path without ever
    /// materializing the dense matrix; small or dense systems keep the exact
    /// dense reference behavior.
    pub fn solve(&self, opts: &LstsqOptions) -> SolvedSystem {
        let b = self.rhs();
        let sol = if self.prefers_sparse() {
            sparse_least_squares(&self.sparse_matrix(), &b, opts)
        } else {
            least_squares(&self.matrix(), &b, opts)
        };
        let good_probability: Vec<f64> = sol
            .x
            .as_slice()
            .iter()
            .map(|&y| y.exp().clamp(0.0, 1.0))
            .collect();
        SolvedSystem {
            good_probability,
            identifiable: sol.identifiable,
            rank: sol.rank,
            num_equations: self.equations.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::EstimatorConfig;
    use tomo_graph::toy::{fig1_case1, E1, E2, E3, E4};
    use tomo_sim::PathObservations;

    fn all_links() -> BTreeSet<LinkId> {
        [E1, E2, E3, E4].into_iter().collect()
    }

    #[test]
    fn induced_subsets_match_paper_examples() {
        let net = fig1_case1();
        // Path set {p1}: Links = {e1, e2} -> subsets {e1} and {e2}.
        let subs = induced_subsets(&net, &[PathId(0)], &all_links());
        let rendered: Vec<Vec<LinkId>> = subs.iter().map(|s| s.links_vec()).collect();
        assert_eq!(rendered, vec![vec![E1], vec![E2]]);
        // Path set {p1, p2}: Links = {e1, e2, e3} -> subsets {e1}, {e2, e3}.
        let subs = induced_subsets(&net, &[PathId(0), PathId(1)], &all_links());
        let rendered: Vec<Vec<LinkId>> = subs.iter().map(|s| s.links_vec()).collect();
        assert_eq!(rendered, vec![vec![E1], vec![E2, E3]]);
    }

    #[test]
    fn induced_subsets_drop_always_good_links() {
        let net = fig1_case1();
        let only_e1: BTreeSet<LinkId> = [E1].into_iter().collect();
        let subs = induced_subsets(&net, &[PathId(0)], &only_e1);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].links_vec(), vec![E1]);
    }

    #[test]
    fn row_over_targets_matches_matrix_example() {
        // §5.2 worked example: Ê = <{e1},{e2},{e3},{e4},{e2,e3}>,
        // P̂ = <{p1},{p1,p2}> gives the matrix [[1,1,0,0,0],[1,0,0,0,1]].
        let net = fig1_case1();
        let targets = vec![
            CorrelationSubset::new(0, [E1]),
            CorrelationSubset::new(1, [E2]),
            CorrelationSubset::new(1, [E3]),
            CorrelationSubset::new(2, [E4]),
            CorrelationSubset::new(1, [E2, E3]),
        ];
        let index = SubsetIndex::new(targets);
        let r1 = row_over_targets(&net, &[PathId(0)], &all_links(), &index);
        assert_eq!(r1, vec![1.0, 1.0, 0.0, 0.0, 0.0]);
        let r2 = row_over_targets(&net, &[PathId(0), PathId(1)], &all_links(), &index);
        assert_eq!(r2, vec![1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn subset_index_separates_targets_and_auxiliaries() {
        let mut idx = SubsetIndex::new(vec![CorrelationSubset::new(0, [E1])]);
        assert_eq!(idx.num_targets(), 1);
        let aux = CorrelationSubset::new(1, [E2, E3]);
        let col = idx.get_or_insert(&aux);
        assert_eq!(col, 1);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.num_targets(), 1);
        // Re-inserting returns the same column.
        assert_eq!(idx.get_or_insert(&aux), 1);
    }

    #[test]
    fn full_toy_system_recovers_exact_probabilities() {
        // Build ideal observations directly from known good-probabilities and
        // check that solving the paper's 5-equation system (Fig. 2b) recovers
        // them. We use deterministic "frequencies": e1 good 80% of intervals,
        // {e2,e3} good 60% (perfectly correlated), e4 always good.
        let net = fig1_case1();
        let t = 1000usize;
        let mut obs = PathObservations::new(3, t);
        // Construct interval-level truth: e1 congested in the first 20% of
        // intervals, {e2,e3} congested in intervals where t % 5 < 2 (40%).
        for ti in 0..t {
            let e1_bad = ti < t / 5;
            let e23_bad = ti % 5 < 2;
            // p1 = {e1,e2}, p2 = {e1,e3}, p3 = {e4,e3}
            obs.set_congested(PathId(0), ti, e1_bad || e23_bad);
            obs.set_congested(PathId(1), ti, e1_bad || e23_bad);
            obs.set_congested(PathId(2), ti, e23_bad);
        }
        let estimator = PathSetEstimator::new(&obs, EstimatorConfig::default());
        let targets = vec![
            CorrelationSubset::new(0, [E1]),
            CorrelationSubset::new(1, [E2]),
            CorrelationSubset::new(1, [E3]),
            CorrelationSubset::new(2, [E4]),
            CorrelationSubset::new(1, [E2, E3]),
        ];
        let mut sys = EquationSystem::new(targets);
        let pc = all_links();
        // The paper's initial path sets (§5.3 worked example).
        let path_sets: Vec<Vec<PathId>> = vec![
            vec![PathId(0), PathId(1)],
            vec![PathId(0)],
            vec![PathId(1), PathId(2)],
            vec![PathId(2)],
            vec![PathId(0), PathId(1), PathId(2)],
        ];
        for ps in &path_sets {
            assert!(sys.add_path_set(&net, &estimator, &pc, ps));
        }
        assert_eq!(sys.num_equations(), 5);
        let solved = sys.solve(&LstsqOptions::default());
        assert_eq!(solved.rank, 5);
        // Expected good-probabilities. Note e1 and {e2,e3} overlap in time:
        // P(e1 good) = 0.8, P(e2 good) = P(e3 good) = P(e2,e3 good) = 0.6,
        // P(e4 good) = 1.0.
        let idx = sys.index();
        let expect = [
            (CorrelationSubset::new(0, [E1]), 0.8),
            (CorrelationSubset::new(1, [E2]), 0.6),
            (CorrelationSubset::new(1, [E3]), 0.6),
            (CorrelationSubset::new(2, [E4]), 1.0),
            (CorrelationSubset::new(1, [E2, E3]), 0.6),
        ];
        for (subset, want) in expect {
            let col = idx.index_of(&subset).expect("target column");
            let got = solved.good_probability[col];
            assert!(
                (got - want).abs() < 0.08,
                "{subset}: want {want}, got {got}"
            );
        }
    }
}
