//! Empirical estimation of path-set probabilities from observations.
//!
//! The left-hand side of Eq. (1) of the paper, `P(∩_{p∈P} Y_p = 0)`, is
//! estimated as the fraction of intervals in which every path of the set was
//! observed good. Because the equations are solved in log space, empirical
//! zeros must be clamped away from 0; the clamp corresponds to "less than one
//! observation in `T` intervals".

use serde::{Deserialize, Serialize};
use tomo_graph::PathId;
use tomo_sim::PathObservations;

/// Configuration of the empirical estimator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Lower clamp applied to empirical probabilities before taking
    /// logarithms, expressed as a number of "virtual observations" out of
    /// `T` (0.5 by default, i.e. probabilities are clamped to `0.5 / T`).
    pub min_virtual_observations: f64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self {
            min_virtual_observations: 0.5,
        }
    }
}

/// Estimates path-set probabilities (and their logarithms) from a
/// [`PathObservations`] matrix.
#[derive(Clone, Debug)]
pub struct PathSetEstimator<'a> {
    observations: &'a PathObservations,
    config: EstimatorConfig,
}

impl<'a> PathSetEstimator<'a> {
    /// Creates an estimator over the given observations.
    pub fn new(observations: &'a PathObservations, config: EstimatorConfig) -> Self {
        Self {
            observations,
            config,
        }
    }

    /// Creates an estimator with the default configuration.
    pub fn with_defaults(observations: &'a PathObservations) -> Self {
        Self::new(observations, EstimatorConfig::default())
    }

    /// The observations under analysis.
    pub fn observations(&self) -> &PathObservations {
        self.observations
    }

    /// The probability floor used before taking logarithms. For weighted
    /// observations the effective (weighted) sample size replaces `T`.
    pub fn floor(&self) -> f64 {
        let w = self.observations.total_weight();
        let t = if w > 0.0 { w } else { 1.0 };
        (self.config.min_virtual_observations / t).min(0.5)
    }

    /// Empirical (weighted) `P(∩_{p∈paths} Y_p = 0)`, clamped to
    /// `[floor, 1]`.
    pub fn all_good_probability(&self, paths: &[PathId]) -> f64 {
        self.observations
            .fraction_all_good(paths)
            .clamp(self.floor(), 1.0)
    }

    /// `ln P(∩ Y_p = 0)` with the clamp applied — the right-hand side of one
    /// equation of the log-linear system.
    pub fn log_all_good_probability(&self, paths: &[PathId]) -> f64 {
        self.all_good_probability(paths).ln()
    }

    /// Paths that were good during every interval. Their links are known
    /// good, hence not potentially congested.
    pub fn always_good_paths(&self) -> Vec<PathId> {
        self.observations.always_good_paths()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> PathObservations {
        let mut o = PathObservations::new(2, 10);
        // p0 congested in 4/10 intervals, p1 never congested.
        for t in 0..4 {
            o.set_congested(PathId(0), t, true);
        }
        o
    }

    #[test]
    fn probabilities_match_frequencies() {
        let o = obs();
        let est = PathSetEstimator::with_defaults(&o);
        assert!((est.all_good_probability(&[PathId(0)]) - 0.6).abs() < 1e-12);
        assert!((est.all_good_probability(&[PathId(1)]) - 1.0).abs() < 1e-12);
        assert!((est.log_all_good_probability(&[PathId(1)])).abs() < 1e-12);
    }

    #[test]
    fn zero_frequencies_are_clamped() {
        let mut o = PathObservations::new(1, 10);
        for t in 0..10 {
            o.set_congested(PathId(0), t, true);
        }
        let est = PathSetEstimator::with_defaults(&o);
        let p = est.all_good_probability(&[PathId(0)]);
        assert!(p > 0.0);
        assert!((p - 0.05).abs() < 1e-12); // 0.5 / 10
        assert!(est.log_all_good_probability(&[PathId(0)]).is_finite());
    }

    #[test]
    fn floor_never_exceeds_half() {
        let o = PathObservations::new(1, 0);
        let est = PathSetEstimator::with_defaults(&o);
        assert!(est.floor() <= 0.5);
    }

    #[test]
    fn always_good_paths_forwarded() {
        let o = obs();
        let est = PathSetEstimator::with_defaults(&o);
        assert_eq!(est.always_good_paths(), vec![PathId(1)]);
    }
}
