//! Release-only end-to-end smoke test at sweep scale: the sparse fast path
//! must keep a full estimator fit on the ≥5k-link `BriteConfig::large`
//! topology *interactive* (< 1 s). Before the CSR + conjugate-gradient
//! solver this fit went through a dense O(n³) elimination over ~5.5k
//! unknowns and took minutes.
//!
//! Generation alone takes tens of seconds in debug mode, so the test is
//! ignored by default; CI runs it in release via
//! `cargo test -p tomo-prob --release -- --ignored large_brite`.

use std::time::Instant;

use tomo_graph::LinkId;
use tomo_prob::independence::{Independence, IndependenceConfig};
use tomo_prob::ProbabilityComputation;
use tomo_sim::{LossModel, MeasurementMode, ScenarioConfig, SimulationConfig, Simulator};
use tomo_topology::{BriteConfig, BriteGenerator};

#[test]
#[ignore = "multi-second generation; run in release with -- --ignored"]
fn large_brite_fit_stays_interactive() {
    let network = BriteGenerator::new(BriteConfig::large(1))
        .generate()
        .expect("large Brite generation");
    assert!(
        network.num_links() >= 5_000,
        "sweep-scale topology regressed: {} links",
        network.num_links()
    );

    let sim = SimulationConfig {
        num_intervals: 60,
        scenario: ScenarioConfig::no_independence(),
        loss: LossModel::default(),
        measurement: MeasurementMode::Ideal,
        seed: 11,
    };
    let output = Simulator::new(sim).run(&network);

    let algo = Independence::new(IndependenceConfig {
        compute_identifiability: false,
        ..IndependenceConfig::default()
    });
    let started = Instant::now();
    let estimate = algo.compute(&network, &output.observations);
    let elapsed = started.elapsed();
    assert!(
        elapsed.as_secs_f64() < 1.0,
        "large fit took {elapsed:?}; the interactive budget is 1 s"
    );

    // The fit must actually have estimated something at scale, with sane
    // probabilities everywhere.
    assert!(
        estimate.diagnostics.num_unknowns >= 1_000,
        "diagnostics: {:?}",
        estimate.diagnostics
    );
    assert!(estimate.diagnostics.num_equations >= estimate.diagnostics.num_unknowns / 2);
    let mut estimated = 0usize;
    for l in 0..network.num_links() {
        let p = estimate.link_congestion_probability(LinkId(l));
        assert!((0.0..=1.0).contains(&p), "link {l}: p = {p}");
        if p > 0.0 {
            estimated += 1;
        }
    }
    assert!(
        estimated >= 100,
        "only {estimated} links got a nonzero congestion probability"
    );
}
