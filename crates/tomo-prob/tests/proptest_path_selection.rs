//! Property-based equivalence tests for the bitmap Algorithm-1 fast path.
//!
//! [`select_path_sets`] (bitmap representation, incremental Hamming-weight
//! tracking) must select the *identical* path sets in the *identical* order
//! as [`select_path_sets_reference`], the element-wise oracle — on generated
//! Brite and Sparse topologies under random congestion observations, not
//! just the hand-built Fig. 1 fixtures of the unit suite.

use std::collections::BTreeSet;

use proptest::prelude::*;
use tomo_graph::{LinkId, Network, PathId};
use tomo_prob::path_selection::{
    select_path_sets, select_path_sets_reference, PathSelectionConfig,
};
use tomo_prob::potentially_congested_subsets;
use tomo_prob::subsets::potentially_congested_links;
use tomo_sim::PathObservations;
use tomo_topology::{BriteConfig, BriteGenerator, SparseConfig, SparseGenerator};

const INTERVALS: usize = 5;

/// Materializes random congestion flags into an observation matrix; flags
/// are consumed modulo their length so any generated network size fits.
fn observations_from_flags(network: &Network, flags: &[bool]) -> PathObservations {
    let num_paths = network.num_paths();
    let mut obs = PathObservations::new(num_paths, INTERVALS);
    for t in 0..INTERVALS {
        for p in 0..num_paths {
            let flag = flags[(t * num_paths + p) % flags.len()];
            obs.set_congested(PathId(p), t, flag);
        }
    }
    obs
}

/// Runs both implementations on the same inputs and fails the case on the
/// first field where they disagree.
fn check_equivalence(
    network: &Network,
    obs: &PathObservations,
    max_subset_size: usize,
) -> Result<(), TestCaseError> {
    let targets = potentially_congested_subsets(network, obs, max_subset_size);
    let pc: BTreeSet<LinkId> = potentially_congested_links(network, obs)
        .into_iter()
        .collect();
    let cfg = PathSelectionConfig::default();
    let fast = select_path_sets(network, obs, &targets, &pc, &cfg);
    let slow = select_path_sets_reference(network, obs, &targets, &pc, &cfg);
    prop_assert_eq!(fast.path_sets, slow.path_sets);
    prop_assert_eq!(fast.initial_count, slow.initial_count);
    prop_assert_eq!(fast.augmented_count, slow.augmented_count);
    prop_assert_eq!(fast.final_nullity, slow.final_nullity);
    prop_assert_eq!(fast.identifiable, slow.identifiable);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn bitmap_matches_reference_on_brite_topologies(
        seed in 0u64..1024,
        flags in proptest::collection::vec(any::<bool>(), 64..=384),
    ) {
        let network = BriteGenerator::new(BriteConfig::tiny(seed))
            .generate()
            .expect("tiny Brite generation is infallible for any seed");
        prop_assume!(network.num_paths() > 0);
        let obs = observations_from_flags(&network, &flags);
        check_equivalence(&network, &obs, 4)?;
    }

    #[test]
    fn bitmap_matches_reference_on_sparse_topologies(
        seed in 0u64..1024,
        flags in proptest::collection::vec(any::<bool>(), 64..=512),
    ) {
        let network = SparseGenerator::new(SparseConfig::tiny(seed))
            .generate()
            .expect("tiny Sparse generation is infallible for any seed");
        prop_assume!(network.num_paths() > 0);
        let obs = observations_from_flags(&network, &flags);
        check_equivalence(&network, &obs, 4)?;
    }

    #[test]
    fn bitmap_matches_reference_under_extreme_observations(
        seed in 0u64..1024,
        all_congested in any::<bool>(),
    ) {
        // Degenerate corners: every interval congested on every path (the
        // densest potentially congested set) and fully quiet observations
        // (empty target list — both must return the empty outcome).
        let network = BriteGenerator::new(BriteConfig::tiny(seed))
            .generate()
            .expect("tiny Brite generation is infallible for any seed");
        prop_assume!(network.num_paths() > 0);
        let mut obs = PathObservations::new(network.num_paths(), INTERVALS);
        if all_congested {
            for t in 0..INTERVALS {
                for p in 0..network.num_paths() {
                    obs.set_congested(PathId(p), t, true);
                }
            }
        }
        check_equivalence(&network, &obs, 4)?;
    }
}
