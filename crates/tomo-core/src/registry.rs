//! String-keyed estimator registry.
//!
//! Binaries, configuration files and future CLIs select algorithms by name:
//!
//! ```
//! use tomo_core::estimators;
//!
//! let mut est = estimators::by_name("correlation-complete").unwrap();
//! assert_eq!(est.name(), "Correlation-complete");
//! ```
//!
//! The canonical names (in the column order of Table 2 of the paper) are
//! returned by [`names`]; matching is case-insensitive and treats spaces and
//! underscores as dashes, and the historical aliases `tomo` (Sparsity) and
//! `clink` (Bayesian-Independence, the CLINK inference algorithm — its
//! probability step is the separate `independence` entry) resolve too.

use serde::{Deserialize, Serialize};
use tomo_inference::{BayesianCorrelation, BayesianIndependence, Sparsity};
use tomo_prob::{
    CorrelationComplete, CorrelationCompleteConfig, CorrelationHeuristic, Independence,
};

use crate::error::TomoError;
use crate::estimator::{Estimator, InferenceEstimator, ProbEstimator};

/// The canonical estimator names, in Table-2 column order: the three
/// Boolean-Inference baselines of §3 followed by the three
/// Probability-Computation algorithms of §5.
pub const NAMES: [&str; 6] = [
    "sparsity",
    "bayesian-independence",
    "bayesian-correlation",
    "independence",
    "correlation-heuristic",
    "correlation-complete",
];

/// The canonical estimator names accepted by [`by_name`].
pub fn names() -> Vec<&'static str> {
    NAMES.to_vec()
}

/// Options applied when constructing estimators by name. The defaults match
/// each algorithm's own defaults; the fields mirror the paper's §4 resource
/// knobs for the correlation-aware algorithms. Serializable so service
/// configurations (e.g. `tomo-serve` snapshots) can embed it directly.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EstimatorOptions {
    /// Restrict multi-link correlation-subset targets to sets of links
    /// jointly traversed by at least one path (Correlation-complete and
    /// Bayesian-Correlation only). Keeps the unknown count proportional to
    /// the topology on reduced-scale instances.
    pub require_common_path: bool,
    /// Maximum correlation-subset size to estimate (Correlation-complete and
    /// Bayesian-Correlation only); `None` keeps the algorithm default (2).
    pub max_subset_size: Option<usize>,
}

impl EstimatorOptions {
    /// The subset-size cap these options produce (the algorithm default when
    /// unset).
    pub fn effective_max_subset_size(&self) -> usize {
        self.max_subset_size
            .unwrap_or(CorrelationCompleteConfig::default().max_subset_size)
    }

    pub(crate) fn correlation_complete_config(&self) -> CorrelationCompleteConfig {
        CorrelationCompleteConfig {
            require_common_path: self.require_common_path,
            max_subset_size: self.effective_max_subset_size(),
            ..CorrelationCompleteConfig::default()
        }
    }
}

/// Canonicalizes a user-supplied estimator name (shared with the online
/// registry in [`crate::online`], so the matching rules cannot drift).
pub(crate) fn canonical(name: &str) -> String {
    name.trim().to_ascii_lowercase().replace([' ', '_'], "-")
}

/// Constructs an estimator by name with default options.
pub fn by_name(name: &str) -> Result<Box<dyn Estimator + Send>, TomoError> {
    with_options(name, &EstimatorOptions::default())
}

/// Constructs an estimator by name with the given options.
pub fn with_options(
    name: &str,
    options: &EstimatorOptions,
) -> Result<Box<dyn Estimator + Send>, TomoError> {
    let key = canonical(name);
    let est: Box<dyn Estimator + Send> = match key.as_str() {
        "sparsity" | "tomo" => Box::new(InferenceEstimator::new(Sparsity::new())),
        "bayesian-independence" | "clink" => {
            Box::new(InferenceEstimator::new(BayesianIndependence::new()))
        }
        "bayesian-correlation" => Box::new(InferenceEstimator::new(
            BayesianCorrelation::with_config(options.correlation_complete_config()),
        )),
        "independence" => Box::new(ProbEstimator::new(Independence::default())),
        "correlation-heuristic" => Box::new(ProbEstimator::new(CorrelationHeuristic::default())),
        "correlation-complete" => Box::new(ProbEstimator::new(CorrelationComplete::new(
            options.correlation_complete_config(),
        ))),
        _ => {
            return Err(TomoError::UnknownEstimator {
                name: name.to_string(),
            })
        }
    };
    Ok(est)
}

/// Constructs all six estimators in canonical (Table-2) order.
pub fn all() -> Vec<Box<dyn Estimator + Send>> {
    all_with_options(&EstimatorOptions::default())
}

/// Constructs all six estimators in canonical order with the given options.
pub fn all_with_options(options: &EstimatorOptions) -> Vec<Box<dyn Estimator + Send>> {
    NAMES
        .iter()
        .map(|n| with_options(n, options).expect("canonical names resolve"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_canonical_name_resolves() {
        for name in NAMES {
            let est = by_name(name).unwrap();
            assert!(!est.name().is_empty(), "{name}");
        }
        assert_eq!(all().len(), 6);
    }

    #[test]
    fn matching_is_forgiving() {
        assert_eq!(
            by_name("Correlation-Complete").unwrap().name(),
            "Correlation-complete"
        );
        assert_eq!(
            by_name("correlation_complete").unwrap().name(),
            "Correlation-complete"
        );
        assert_eq!(
            by_name(" Bayesian Independence ").unwrap().name(),
            "Bayesian-Independence"
        );
        assert_eq!(by_name("tomo").unwrap().name(), "Sparsity");
        assert_eq!(by_name("clink").unwrap().name(), "Bayesian-Independence");
    }

    #[test]
    fn unknown_names_error_with_the_catalogue() {
        let err = match by_name("gradient-boost") {
            Err(e) => e,
            Ok(_) => panic!("unknown name resolved"),
        };
        assert!(matches!(err, TomoError::UnknownEstimator { .. }));
        assert!(err.to_string().contains("sparsity"));
    }

    #[test]
    fn options_reach_the_algorithms() {
        let options = EstimatorOptions {
            require_common_path: true,
            max_subset_size: Some(3),
        };
        assert_eq!(options.effective_max_subset_size(), 3);
        let cfg = options.correlation_complete_config();
        assert!(cfg.require_common_path);
        assert_eq!(cfg.max_subset_size, 3);
        // Estimators still construct under non-default options.
        for name in NAMES {
            assert!(with_options(name, &options).is_ok());
        }
    }
}
