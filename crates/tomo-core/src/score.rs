//! Scoring of fitted estimators against simulation ground truth.
//!
//! These are the quantities the paper's figures plot: per-link and
//! per-subset absolute error of the probability estimates (Fig. 4) and the
//! detection / false-positive rates of per-interval inference (Fig. 3).

use tomo_graph::{LinkId, Network};
use tomo_metrics::{AbsoluteErrorStats, InferenceScore};
use tomo_prob::{potentially_congested_subsets, ProbabilityEstimate};
use tomo_sim::SimulationOutput;

/// Per-link absolute-error statistics of one estimate on one simulation:
/// compares the inferred congestion probability of every potentially
/// congested link with its empirical congestion frequency (the value the
/// simulator assigned, observed over the whole experiment).
pub fn link_error_stats(
    network: &Network,
    output: &SimulationOutput,
    estimate: &ProbabilityEstimate,
) -> AbsoluteErrorStats {
    let mut stats = AbsoluteErrorStats::new();
    let pc_links = tomo_prob::subsets::potentially_congested_links(network, &output.observations);
    for l in pc_links {
        let actual = output.ground_truth.link_frequency(l);
        let estimated = estimate.link_congestion_probability(l);
        stats.add(actual, estimated);
    }
    stats
}

/// Per-subset absolute-error statistics of one estimate (used by Fig. 4(d)):
/// compares the inferred congestion probability of every potentially
/// congested correlation subset of 2+ links with the empirical frequency of
/// all its links being congested simultaneously. Only identifiable subsets
/// are scored (the paper reports the subsets the algorithm can compute given
/// its resources).
pub fn subset_error_stats(
    network: &Network,
    output: &SimulationOutput,
    estimate: &ProbabilityEstimate,
    max_subset_size: usize,
) -> AbsoluteErrorStats {
    let mut stats = AbsoluteErrorStats::new();
    let subsets = potentially_congested_subsets(network, &output.observations, max_subset_size);
    for subset in subsets {
        if subset.len() < 2 {
            continue;
        }
        let links: Vec<LinkId> = subset.links_vec();
        if !estimate.subset_is_identifiable(&links) {
            continue;
        }
        let Some(estimated) = estimate.subset_congestion_probability(&links) else {
            continue;
        };
        let actual = output.ground_truth.set_frequency(&links);
        stats.add(actual, estimated);
    }
    stats
}

/// Scores a sequence of per-interval inferred congested-link sets against
/// the ground truth (detection and false-positive rates of Fig. 3).
pub fn inference_score(output: &SimulationOutput, inferred: &[Vec<LinkId>]) -> InferenceScore {
    let mut score = InferenceScore::new();
    for (t, links) in inferred.iter().enumerate() {
        score.add_interval(links, &output.ground_truth.congested_links(t));
    }
    score
}
