//! The [`TomographySession`] handle: one monitored topology behind one
//! object.
//!
//! A session owns a topology, a registry-resolved online estimator and its
//! rolling [`ObservationWindow`](tomo_sim::ObservationWindow), and exposes
//! the daemon-shaped surface — sparse congested-path ingest, estimate /
//! inference queries, stats and a serializable snapshot — without any
//! transport attached. The same type therefore serves three callers:
//!
//! * **embedded** — library users, sweeps and tests drive it directly
//!   (synchronously; see [`crate::Experiment::evaluate_streaming`]);
//! * **over the wire** — `tomo-serve`'s sharded `EngineRegistry` keeps one
//!   session per tenant behind a per-tenant lock and speaks the v2
//!   protocol to it;
//! * **snapshots** — [`SessionSnapshot`] is the serialized form both the
//!   daemon's per-tenant snapshot files and embedded checkpointing use.
//!
//! Restoring a snapshot re-ingests the retained window through the same
//! estimator, which reproduces the pre-snapshot estimate to solver
//! tolerance (exactly, when the pre-snapshot estimate came from a full
//! refit).

use serde::{Deserialize, Serialize};
use tomo_graph::{LinkId, Network, PathId};
use tomo_sim::PathObservations;
use tomo_topo::{DriftCounters, DriftEvent, DriftMonitor, RebuildPolicy};

use crate::error::TomoError;
use crate::online::{online_by_name, OnlineEstimator, Refit, RefitCounts};
use crate::registry::EstimatorOptions;

/// Everything a session needs besides the topology. Serializable so
/// snapshots and service configurations embed it directly.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Registry name of the serving estimator (`independence` and
    /// `correlation-complete` get incremental paths; every other name is
    /// buffered + fully refit per ingest).
    pub estimator: String,
    /// Estimator construction options (the §4 resource knobs).
    pub options: EstimatorOptions,
    /// Rolling-window capacity in intervals (`None` = unbounded).
    pub window_capacity: Option<usize>,
    /// Exponential reweighting factor `λ ∈ (0, 1)` (`None` = equal
    /// weights). Only supported by the incremental estimators.
    pub decay: Option<f64>,
    /// What to do when topology drift is detected: `"manual"` (default)
    /// records the event, `"auto"` additionally forces a structural rebuild
    /// through the estimator's Algorithm-2 fold. Absent in pre-drift
    /// snapshots, which restore as `Manual`.
    pub rebuild: RebuildPolicy,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            estimator: "independence".into(),
            options: EstimatorOptions::default(),
            window_capacity: None,
            decay: None,
            rebuild: RebuildPolicy::Manual,
        }
    }
}

/// The acknowledgement of one [`TomographySession::observe`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionAck {
    /// Intervals ingested by this call.
    pub ingested: usize,
    /// Whether the refit was incremental or full.
    pub refit: Refit,
    /// Lifetime interval count after the ingest.
    pub intervals: u64,
}

/// The current estimate, in dense per-link form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionEstimate {
    /// `probabilities[i]` = congestion probability of link `i`.
    pub probabilities: Vec<f64>,
    /// Whether each link's probability is identifiable from the data.
    pub identifiable: Vec<bool>,
    /// Intervals the estimate is based on (lifetime count).
    pub intervals: u64,
}

/// Session statistics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Display name of the serving estimator.
    pub estimator: String,
    /// Number of links in the served topology.
    pub links: usize,
    /// Number of measurement paths in the served topology.
    pub paths: usize,
    /// Intervals currently retained in the rolling window.
    pub window_len: usize,
    /// Window capacity (`null` = unbounded).
    pub window_capacity: Option<usize>,
    /// Exponential decay factor (`null` = equal weights).
    pub decay: Option<f64>,
    /// Total intervals ingested over the session's lifetime.
    pub total_ingested: u64,
    /// Incremental / full refit counters.
    pub refits: RefitCounts,
    /// Lifetime topology-drift counters.
    pub drift: DriftCounters,
}

/// The serialized form of a session: everything needed to reconstruct it.
/// Estimates are *derived* state — [`TomographySession::restore`]
/// re-ingests the retained window, which reproduces them.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The session configuration at snapshot time.
    pub config: SessionConfig,
    /// The monitored topology.
    pub network: Network,
    /// Retained intervals as sparse congested-path lists, oldest first.
    pub intervals: Vec<Vec<usize>>,
    /// Lifetime interval count at snapshot time (retained + evicted).
    pub total_ingested: u64,
}

/// One monitored topology + online estimator + rolling window behind one
/// handle. See the module docs.
pub struct TomographySession {
    network: Network,
    config: SessionConfig,
    online: Box<dyn OnlineEstimator + Send>,
    drift: DriftMonitor,
    /// Drift events detected since the last [`Self::take_drift_events`]
    /// call (the serving layer drains them into its metrics).
    pending_drift: Vec<DriftEvent>,
}

impl TomographySession {
    /// Creates a session monitoring the given topology.
    pub fn new(network: Network, config: SessionConfig) -> Result<Self, TomoError> {
        let online = online_by_name(
            &config.estimator,
            &config.options,
            config.window_capacity,
            config.decay,
        )?;
        Ok(Self {
            network,
            config,
            online,
            drift: DriftMonitor::new(),
            pending_drift: Vec::new(),
        })
    }

    /// The monitored topology.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The underlying online estimator.
    pub fn estimator(&self) -> &dyn OnlineEstimator {
        self.online.as_ref()
    }

    /// Total intervals ingested over the session's lifetime.
    pub fn intervals_ingested(&self) -> u64 {
        self.online.intervals_ingested()
    }

    /// Validates sparse per-interval congested-path lists against the
    /// topology and materializes them into an ingest batch.
    fn batch_from_intervals(
        &self,
        intervals: &[Vec<usize>],
    ) -> Result<PathObservations, TomoError> {
        let num_paths = self.network.num_paths();
        let mut batch = PathObservations::new(num_paths, intervals.len());
        for (t, congested) in intervals.iter().enumerate() {
            for &p in congested {
                if p >= num_paths {
                    return Err(TomoError::InvalidConfig(format!(
                        "path index {p} out of range (paths: {num_paths})"
                    )));
                }
                batch.set_congested(PathId(p), t, true);
            }
        }
        Ok(batch)
    }

    /// Ingests a batch of measurement intervals given their congested-path
    /// index lists (oldest first) and refreshes the estimate.
    pub fn observe(&mut self, intervals: &[Vec<usize>]) -> Result<SessionAck, TomoError> {
        if intervals.is_empty() {
            return Err(TomoError::InvalidConfig("empty observation batch".into()));
        }
        let batch = self.batch_from_intervals(intervals)?;
        let refit = self.online.ingest(&self.network, &batch)?;
        self.note_drift();
        Ok(SessionAck {
            ingested: intervals.len(),
            refit,
            intervals: self.online.intervals_ingested(),
        })
    }

    /// Ingests a pre-built observation batch (dense form). Embedded callers
    /// that already hold a [`PathObservations`] skip the sparse round trip.
    pub fn observe_batch(&mut self, batch: &PathObservations) -> Result<SessionAck, TomoError> {
        let refit = self.online.ingest(&self.network, batch)?;
        self.note_drift();
        Ok(SessionAck {
            ingested: batch.num_intervals(),
            refit,
            intervals: self.online.intervals_ingested(),
        })
    }

    /// Feeds the drift monitor after a successful ingest and applies the
    /// rebuild policy: under [`RebuildPolicy::Auto`] any detected drift
    /// forces a structural rebuild through the estimator's Algorithm-2 fold
    /// (not a from-scratch refit — the retained window is refolded).
    fn note_drift(&mut self) {
        let Some(flags) = self.online.congested_paths() else {
            return;
        };
        let events = self
            .drift
            .observe(&self.network, &flags, self.online.intervals_ingested());
        if !events.is_empty()
            && self.config.rebuild == RebuildPolicy::Auto
            && self.online.force_rebuild(&self.network)
        {
            self.drift.record_auto_rebuild();
        }
        self.pending_drift.extend(events);
    }

    /// Lifetime drift counters.
    pub fn drift_counters(&self) -> DriftCounters {
        self.drift.counters()
    }

    /// Bounded ring of recent drift events, oldest first.
    pub fn recent_drift_events(&self) -> &[DriftEvent] {
        self.drift.recent_events()
    }

    /// Drains the drift events detected since the last call (the serving
    /// layer records them into its per-tenant metrics).
    pub fn take_drift_events(&mut self) -> Vec<DriftEvent> {
        std::mem::take(&mut self.pending_drift)
    }

    /// The current per-link estimate; errors before the first ingest.
    pub fn query(&self) -> Result<SessionEstimate, TomoError> {
        let estimate = self.online.estimate().ok_or_else(|| TomoError::NotFitted {
            estimator: self.online.name().to_string(),
        })?;
        let links = self.network.num_links();
        Ok(SessionEstimate {
            probabilities: (0..links)
                .map(|l| estimate.link_congestion_probability(LinkId(l)))
                .collect(),
            identifiable: (0..links)
                .map(|l| estimate.link_is_identifiable(LinkId(l)))
                .collect(),
            intervals: self.online.intervals_ingested(),
        })
    }

    /// Boolean inference for one interval's congested paths (estimators
    /// with the inference capability).
    pub fn infer(&self, congested: &[usize]) -> Result<Vec<usize>, TomoError> {
        let num_paths = self.network.num_paths();
        if let Some(&bad) = congested.iter().find(|&&p| p >= num_paths) {
            return Err(TomoError::InvalidConfig(format!(
                "path index {bad} out of range (paths: {num_paths})"
            )));
        }
        let paths: Vec<PathId> = congested.iter().map(|&p| PathId(p)).collect();
        let links = self.online.infer_interval(&self.network, &paths)?;
        Ok(links.into_iter().map(|l| l.index()).collect())
    }

    /// Current session statistics.
    pub fn stats(&self) -> SessionStats {
        let (window_len, total) = match self.online.window() {
            Some(w) => (w.len(), w.total_ingested()),
            None => (0, 0),
        };
        SessionStats {
            estimator: self.online.name().to_string(),
            links: self.network.num_links(),
            paths: self.network.num_paths(),
            window_len,
            window_capacity: self.config.window_capacity,
            decay: self.config.decay,
            total_ingested: total,
            refits: self.online.refit_counts(),
            drift: self.drift.counters(),
        }
    }

    /// Builds the serializable snapshot of the current state.
    pub fn snapshot(&self) -> SessionSnapshot {
        let (intervals, total) = match self.online.window() {
            Some(w) => (w.to_congested_sets(), w.total_ingested()),
            None => (Vec::new(), 0),
        };
        SessionSnapshot {
            config: self.config.clone(),
            network: self.network.clone(),
            intervals,
            total_ingested: total,
        }
    }

    /// Reconstructs a session from a snapshot: rebuilds the estimator and
    /// re-ingests the retained window, reproducing the pre-snapshot
    /// estimate. The lifetime interval counter is restored from the
    /// snapshot; refit and drift counters restart (they describe this
    /// process's work — the replay primes a fresh drift baseline).
    ///
    /// Snapshots arrive as JSON from clients and disk, and `Network`'s serde
    /// derive decodes structures [`tomo_graph::NetworkBuilder`] would never
    /// build (paths over missing links, loops, broken correlation
    /// partitions). The network is therefore routed back through the builder
    /// here, so a restored session is indistinguishable from a created one
    /// and downstream code may rely on builder invariants.
    pub fn restore(snapshot: SessionSnapshot) -> Result<Self, TomoError> {
        let network = tomo_topo::TopologyDoc::from_network(snapshot.network)
            .to_network()
            .map_err(|e| TomoError::InvalidConfig(format!("snapshot topology invalid: {e}")))?;
        let mut session = Self::new(network, snapshot.config)?;
        if !snapshot.intervals.is_empty() {
            session
                .observe(&snapshot.intervals)
                .map_err(|e| TomoError::InvalidConfig(format!("snapshot replay failed: {e}")))?;
            session
                .online
                .restore_total_ingested(snapshot.total_ingested);
        }
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::toy;

    fn session() -> TomographySession {
        TomographySession::new(toy::fig1_case1(), SessionConfig::default()).unwrap()
    }

    /// A deterministic stream: p1/p2 and p3 congested on disjoint schedules.
    fn intervals(n: usize, offset: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|t| {
                let t = t + offset;
                let mut congested = Vec::new();
                if t.is_multiple_of(5) {
                    congested.push(0);
                    congested.push(1);
                }
                if t % 4 == 1 {
                    congested.push(2);
                }
                congested
            })
            .collect()
    }

    #[test]
    fn observe_then_query_round_trip() {
        let mut session = session();
        let ack = session.observe(&intervals(40, 0)).unwrap();
        assert_eq!(ack.ingested, 40);
        assert_eq!(ack.refit, Refit::Full);
        assert_eq!(ack.intervals, 40);
        let ack = session.observe(&intervals(40, 40)).unwrap();
        assert_eq!(ack.refit, Refit::Incremental);
        let estimate = session.query().unwrap();
        assert_eq!(estimate.probabilities.len(), 4);
        assert_eq!(estimate.identifiable.len(), 4);
        assert_eq!(estimate.intervals, 80);
        assert!(estimate
            .probabilities
            .iter()
            .all(|p| (0.0..=1.0).contains(p)));
        // e1 (shared by p1, p2) is congested ~20% of intervals.
        assert!(
            (estimate.probabilities[0] - 0.2).abs() < 0.1,
            "{:?}",
            estimate.probabilities
        );
    }

    #[test]
    fn query_before_observations_is_an_error() {
        assert!(matches!(
            session().query(),
            Err(TomoError::NotFitted { .. })
        ));
    }

    #[test]
    fn bad_input_is_rejected_without_state_change() {
        let mut session = session();
        assert!(session.observe(&[]).is_err());
        assert!(session.observe(&[vec![99]]).is_err());
        assert_eq!(session.stats().total_ingested, 0);
    }

    #[test]
    fn inference_capability_is_honored_per_estimator() {
        // Independence has no inference capability.
        let mut session = session();
        session.observe(&intervals(20, 0)).unwrap();
        assert!(matches!(
            session.infer(&[0]),
            Err(TomoError::UnsupportedCapability { .. })
        ));
        // Sparsity (buffered) supports it.
        let config = SessionConfig {
            estimator: "sparsity".into(),
            ..SessionConfig::default()
        };
        let mut session = TomographySession::new(toy::fig1_case1(), config).unwrap();
        session.observe(&intervals(20, 0)).unwrap();
        assert!(!session.infer(&[0, 1]).unwrap().is_empty());
        assert!(session.infer(&[9]).is_err());
    }

    #[test]
    fn stats_track_ingestion_and_refits() {
        let mut session = session();
        session.observe(&intervals(30, 0)).unwrap();
        session.observe(&intervals(30, 30)).unwrap();
        let stats = session.stats();
        assert_eq!(stats.estimator, "Online-Independence");
        assert_eq!(stats.total_ingested, 60);
        assert_eq!(stats.window_len, 60);
        assert_eq!(stats.refits.full, 1);
        assert_eq!(stats.refits.incremental, 1);
        assert_eq!(stats.links, 4);
        assert_eq!(stats.paths, 3);
        assert_eq!(stats.decay, None);
    }

    #[test]
    fn snapshot_restore_reproduces_the_estimate() {
        let config = SessionConfig {
            window_capacity: Some(50),
            ..SessionConfig::default()
        };
        let mut session = TomographySession::new(toy::fig1_case1(), config).unwrap();
        session.observe(&intervals(70, 0)).unwrap();
        let before = session.query().unwrap();

        // Through the serialized form, as the daemon's snapshot files do.
        let json = serde_json::to_string(&session.snapshot()).unwrap();
        let snapshot: SessionSnapshot = serde_json::from_str(&json).unwrap();
        let restored = TomographySession::restore(snapshot).unwrap();
        let after = restored.query().unwrap();
        for (x, y) in before.probabilities.iter().zip(&after.probabilities) {
            assert!((x - y).abs() < 1e-9, "{before:?} vs {after:?}");
        }
        // The restored window keeps only the retained intervals, but the
        // lifetime counter survives.
        let stats = restored.stats();
        assert_eq!(stats.window_len, 50);
        assert_eq!(stats.total_ingested, 70);
    }

    #[test]
    fn restore_rejects_structurally_invalid_networks() {
        // `Network`'s serde derive decodes a path over a link that does not
        // exist; restore must route the structure back through the builder
        // and refuse it instead of instantiating an unchecked session.
        let mut session = session();
        session.observe(&intervals(20, 0)).unwrap();
        let json = serde_json::to_string(&session.snapshot()).unwrap();
        let corrupted = json.replace("\"links\":[0,1]", "\"links\":[0,99]");
        assert_ne!(corrupted, json, "fixture must actually corrupt a path");
        let snapshot: SessionSnapshot = serde_json::from_str(&corrupted).unwrap();
        let Err(err) = TomographySession::restore(snapshot) else {
            panic!("corrupted snapshot must be refused");
        };
        assert!(
            err.to_string().contains("snapshot topology invalid"),
            "{err}"
        );
    }

    #[test]
    fn drift_is_detected_and_auto_rebuild_is_opt_in() {
        use tomo_topo::DriftKind;
        // Manual policy: the appearance of path 2's congestion (link e4
        // newly active) is flagged but triggers no extra refit.
        let mut session = session();
        session.observe(&vec![vec![0, 1]; 10]).unwrap();
        assert!(session.take_drift_events().is_empty(), "first batch primes");
        session.observe(&[vec![0, 1], vec![2]]).unwrap();
        let events = session.take_drift_events();
        assert!(
            events.iter().any(|e| e.kind == DriftKind::LinkAppeared),
            "{events:?}"
        );
        assert_eq!(session.drift_counters().auto_rebuilds, 0);
        assert!(!session.recent_drift_events().is_empty());
        let stats = session.stats();
        assert!(stats.drift.links_appeared > 0);

        // Auto policy: the same drift forces a structural rebuild.
        let config = SessionConfig {
            rebuild: RebuildPolicy::Auto,
            ..SessionConfig::default()
        };
        let mut session = TomographySession::new(toy::fig1_case1(), config).unwrap();
        session.observe(&vec![vec![0, 1]; 10]).unwrap();
        let full_before = session.stats().refits.full;
        session.observe(&[vec![0, 1], vec![2]]).unwrap();
        assert!(session.drift_counters().auto_rebuilds > 0);
        assert!(session.stats().refits.full > full_before);
        // The rebuilt estimate still answers.
        assert_eq!(session.query().unwrap().probabilities.len(), 4);
    }

    #[test]
    fn pre_drift_snapshots_restore_with_manual_policy() {
        // A snapshot written before the `rebuild` field existed has no such
        // key; it must restore as Manual.
        let mut session = session();
        session.observe(&intervals(20, 0)).unwrap();
        let json = serde_json::to_string(&session.snapshot()).unwrap();
        let stripped = json.replace(",\"rebuild\":\"manual\"", "");
        assert_ne!(stripped, json, "fixture must actually strip the field");
        let snapshot: SessionSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(snapshot.config.rebuild, RebuildPolicy::Manual);
        let restored = TomographySession::restore(snapshot).unwrap();
        assert_eq!(restored.stats().total_ingested, 20);
    }

    #[test]
    fn sessions_serve_every_registry_estimator() {
        for name in crate::registry::NAMES {
            let config = SessionConfig {
                estimator: (*name).into(),
                ..SessionConfig::default()
            };
            let mut session = TomographySession::new(toy::fig1_case1(), config).unwrap();
            let ack = session.observe(&intervals(30, 0)).unwrap();
            assert_eq!(ack.intervals, 30, "{name}");
        }
        assert!(TomographySession::new(
            toy::fig1_case1(),
            SessionConfig {
                estimator: "no-such".into(),
                ..SessionConfig::default()
            }
        )
        .is_err());
    }
}
