//! Online (streaming) estimation: ingest observation batches, keep the
//! estimate fresh.
//!
//! The batch [`Estimator`] re-fits from the full observation matrix every
//! time. A long-running tomography daemon instead receives a few intervals
//! at a time and wants the cheapest correct update. [`OnlineEstimator`]
//! models that: `ingest(batch)` folds new intervals in and reports whether
//! the refit was [`Refit::Incremental`] or [`Refit::Full`].
//!
//! Two implementations ship:
//!
//! * [`OnlineIndependence`] — a genuinely incremental form of the
//!   linear-system Independence estimator. The equation *structure* (which
//!   path sets appear, which links are unknowns) changes only when a path
//!   is congested for the first time (or congestion ages out of a bounded
//!   window), while the right-hand side (empirical log-probabilities)
//!   changes on every interval. Steady state is therefore: update counters,
//!   re-apply a cached solver — no elimination, no factorization. When the
//!   structure does change, the estimator rebuilds, computing the new
//!   null-space basis incrementally row-by-row via
//!   [`tomo_linalg::nullspace_update`] (Algorithm 2 of the paper) with a
//!   from-scratch recomputation as fallback when the folded basis degrades
//!   numerically.
//! * [`BufferedOnline`] — the adapter that gives *every* registry algorithm
//!   an online form by buffering a rolling [`ObservationWindow`] and
//!   re-running the batch fit on each ingest (always [`Refit::Full`]).
//!
//! The invariant both uphold (and the integration tests assert): after any
//! sequence of ingests, the estimate equals — up to solver tolerance — a
//! single batch fit on the concatenation of the retained observations.

use serde::{Deserialize, Serialize};
use tomo_graph::{LinkId, Network, PathId};
use tomo_linalg::{
    least_squares, nullspace_update, should_use_sparse, sparse_least_squares, LstsqOptions,
    LuFactors, Matrix, SparseMatrix, Vector,
};
use tomo_prob::result::EstimateDiagnostics;
use tomo_prob::subsets::potentially_congested_links;
use tomo_prob::AlgorithmAssumptions;
use tomo_prob::{
    baseline_path_sets, CorrelationComplete, CorrelationCompleteConfig, CorrelationSystem,
    IndependenceConfig, ProbabilityEstimate,
};
use tomo_sim::{ObservationWindow, PathObservations};

use crate::error::TomoError;
use crate::estimator::{Capabilities, Estimator};
use crate::registry::EstimatorOptions;

/// What kind of work one [`OnlineEstimator::ingest`] call had to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Refit {
    /// Only the right-hand side changed: the cached equation structure,
    /// solver and null-space basis were reused.
    Incremental,
    /// The equation structure changed (or the estimator has no incremental
    /// form): everything was rebuilt from the retained observations.
    Full,
}

/// Lifetime counters of an online estimator's refit behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefitCounts {
    /// Ingests served by the incremental path.
    pub incremental: u64,
    /// Ingests that required a full structural rebuild.
    pub full: u64,
    /// Full rebuilds where the incrementally folded null-space basis
    /// degraded numerically and was recomputed from scratch.
    pub basis_rebuilds: u64,
}

/// A streaming estimator: a batch [`Estimator`] that can also fold in new
/// observation intervals without being re-fit from scratch by the caller.
pub trait OnlineEstimator: Estimator {
    /// Ingests a batch of new intervals (a [`PathObservations`] whose
    /// interval axis is the batch) and refreshes the estimate.
    fn ingest(&mut self, network: &Network, batch: &PathObservations) -> Result<Refit, TomoError>;

    /// The rolling window of retained observations, once at least one
    /// interval has been ingested.
    fn window(&self) -> Option<&ObservationWindow>;

    /// Lifetime refit counters.
    fn refit_counts(&self) -> RefitCounts;

    /// Restores the lifetime interval counter after a snapshot restore,
    /// where re-ingesting the retained window would otherwise reset it to
    /// the window length. No-op before the first ingest.
    fn restore_total_ingested(&mut self, total: u64);

    /// Total intervals ingested over the estimator's lifetime.
    fn intervals_ingested(&self) -> u64 {
        self.window().map_or(0, |w| w.total_ingested())
    }

    /// Per-path congestion presence inside the retained window:
    /// `flags[p]` = path `p` was congested in at least one retained
    /// interval. `None` before the first ingest. This is the bitmap the
    /// topology drift monitor diffs; the incremental estimators answer from
    /// the presence counters they already keep, the default folds the
    /// window.
    fn congested_paths(&self) -> Option<Vec<bool>> {
        self.window().map(|w| {
            let mut flags = vec![false; w.num_paths()];
            for i in 0..w.len() {
                for (p, &c) in w.interval(i).iter().enumerate() {
                    if c {
                        flags[p] = true;
                    }
                }
            }
            flags
        })
    }

    /// Forces a structural rebuild from the retained window — the same
    /// Algorithm-2 refold + solver refresh a structure change triggers,
    /// without waiting for one. Returns `true` if a rebuild was performed
    /// (`false` before the first ingest, or when the network's shape does
    /// not match the window). Drift-driven auto-rebuilds go through here.
    fn force_rebuild(&mut self, _network: &Network) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Cached system solver (shared by both incremental estimators)
// ---------------------------------------------------------------------------

/// The cached solver over an assembled 0/1 equation system.
///
/// Small or dense systems keep the dense matrix plus the LU factors of the
/// ridge normal matrix `(AᵀA + λI)`: factored once per structural rebuild,
/// each RHS-only refresh is then `Aᵀb` plus two `O(n²)` triangular sweeps
/// (the previous scheme materialized the full `n × rows` pseudo-inverse
/// `(AᵀA + λI)⁻¹Aᵀ` and re-applied it as a dense product). Large sparse
/// systems keep the CSR matrix and answer every refresh with a
/// conjugate-gradient solve that only touches the nonzeros — no dense
/// matrix, normal matrix or factorization ever exists at that scale.
#[derive(Clone, Debug)]
enum SystemSolver {
    /// Dense reference path; `lu` is `None` when even the ridge normal
    /// matrix was singular (each refresh then re-solves by least squares).
    Dense {
        matrix: Matrix,
        lu: Option<LuFactors>,
    },
    /// Sparse CG path over the CSR system matrix.
    Sparse(SparseMatrix),
}

impl SystemSolver {
    /// Assembles the solver from sparse rows (sorted, deduplicated column
    /// lists) over `cols` unknowns, picking the representation with the same
    /// density threshold the batch solvers use.
    fn build(rows: &[Vec<usize>], cols: usize, ridge: f64) -> Self {
        let nnz: usize = rows.iter().map(|r| r.len()).sum();
        if should_use_sparse(rows.len(), cols, nnz) {
            let mut csr = SparseMatrix::with_cols(cols);
            for r in rows {
                csr.push_binary_row(r);
            }
            return Self::Sparse(csr);
        }
        let mut matrix = Matrix::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            for &c in r {
                matrix[(i, c)] = 1.0;
            }
        }
        let lu = if cols == 0 {
            None
        } else {
            let mut ata = matrix.transpose().matmul(&matrix);
            for i in 0..cols {
                ata[(i, i)] += ridge;
            }
            LuFactors::factor(&ata)
        };
        Self::Dense { matrix, lu }
    }

    /// Number of assembled equations.
    fn rows(&self) -> usize {
        match self {
            Self::Dense { matrix, .. } => matrix.rows(),
            Self::Sparse(csr) => csr.rows(),
        }
    }

    /// The RHS-only refresh: reuse the cached LU factors (dense) or re-run
    /// CG over the cached CSR matrix (sparse).
    fn solve_cached(&self, b: &Vector, ridge: f64) -> Vector {
        match self {
            Self::Dense {
                matrix,
                lu: Some(lu),
            } => lu.solve(&matrix.vecmat(b)),
            _ => self.solve_batch(b, ridge),
        }
    }

    /// The solve a batch estimator performs at this system's scale — used at
    /// rebuild points so the online estimate matches the batch fit exactly.
    fn solve_batch(&self, b: &Vector, ridge: f64) -> Vector {
        let opts = LstsqOptions {
            ridge,
            compute_identifiability: false,
            ..LstsqOptions::default()
        };
        match self {
            Self::Dense { matrix, .. } => least_squares(matrix, b, &opts).x,
            Self::Sparse(csr) => sparse_least_squares(csr, b, &opts).x,
        }
    }
}

// ---------------------------------------------------------------------------
// OnlineIndependence
// ---------------------------------------------------------------------------

/// The cached equation structure of [`OnlineIndependence`]: everything that
/// only changes when the potentially-congested link set changes.
#[derive(Clone, Debug)]
struct Structure {
    /// The potentially congested links, sorted (the unknown columns).
    pc_links: Vec<LinkId>,
    /// Indices (into the path-set list) of the equations with at least one
    /// unknown.
    active_sets: Vec<usize>,
    /// The assembled system (one row per active set, one column per pc
    /// link) with its cached solver.
    solver: SystemSolver,
    /// Per-unknown identifiability derived from the null-space basis.
    identifiable: Vec<bool>,
    /// Rank of the system matrix (`columns − basis columns`).
    rank: usize,
}

/// Incremental, streaming form of the Independence linear-system estimator.
///
/// See the module docs for the design; the observable contract is that
/// [`Estimator::estimate`] always equals (within solver tolerance) what
/// [`tomo_prob::Independence`] computes on the retained window.
///
/// With a decay factor (see [`OnlineIndependence::with_decay`]) the
/// right-hand sides are estimated from exponentially reweighted counters
/// (`weight = λ^age`) instead of plain window fractions, so drifting loss
/// rates are tracked faster than truncation alone allows. The batch
/// equivalent is a fit on the window materialized *with* its `λ^age`
/// interval weights, which is exactly what
/// [`OnlineIndependence::deviation_from_batch`] compares against.
#[derive(Clone, Debug)]
pub struct OnlineIndependence {
    config: IndependenceConfig,
    capacity: Option<usize>,
    decay: Option<f64>,
    window: Option<ObservationWindow>,
    /// All candidate path sets (singles + capped pairs), fixed per network.
    path_sets: Vec<Vec<PathId>>,
    /// Per path set: (decay-weighted) intervals in the window where every
    /// member was good. Exact integer counts when decay is off.
    set_all_good: Vec<f64>,
    /// Per path: intervals in the window where the path was congested
    /// (unweighted presence counts — the equation structure depends only on
    /// *whether* a path has congested within the window).
    path_congested: Vec<u64>,
    structure: Option<Structure>,
    estimate: Option<ProbabilityEstimate>,
    counts: RefitCounts,
}

impl Default for OnlineIndependence {
    fn default() -> Self {
        Self::new(IndependenceConfig::default(), None)
    }
}

impl OnlineIndependence {
    /// Creates the estimator; `window_capacity` bounds the retained
    /// intervals (`None` keeps the full history).
    pub fn new(config: IndependenceConfig, window_capacity: Option<usize>) -> Self {
        Self::with_decay(config, window_capacity, None)
    }

    /// Creates the estimator with an exponential reweighting factor
    /// `decay ∈ (0, 1)` on top of (optional) truncation.
    pub fn with_decay(
        config: IndependenceConfig,
        window_capacity: Option<usize>,
        decay: Option<f64>,
    ) -> Self {
        Self {
            config,
            capacity: window_capacity,
            decay,
            window: None,
            path_sets: Vec::new(),
            set_all_good: Vec::new(),
            path_congested: Vec::new(),
            structure: None,
            estimate: None,
            counts: RefitCounts::default(),
        }
    }

    /// The decay factor as a multiplier (1 when reweighting is disabled).
    fn lambda(&self) -> f64 {
        self.decay.unwrap_or(1.0)
    }

    /// The refit counters (also available through the trait).
    pub fn counts(&self) -> RefitCounts {
        self.counts
    }

    /// Maximum absolute deviation of the current per-link probabilities from
    /// a from-scratch batch fit on the retained window — the correctness
    /// check the integration tests (and the daemon's self-check) use. Under
    /// decay the window materializes with its `λ^age` weights, which the
    /// batch estimator honors.
    pub fn deviation_from_batch(&self, network: &Network) -> Result<f64, TomoError> {
        let window = self.window.as_ref().ok_or_else(|| TomoError::NotFitted {
            estimator: self.name().to_string(),
        })?;
        let estimate = self.estimate.as_ref().ok_or_else(|| TomoError::NotFitted {
            estimator: self.name().to_string(),
        })?;
        use tomo_prob::ProbabilityComputation;
        let batch = tomo_prob::Independence::new(self.config.clone())
            .compute(network, &window.to_observations());
        let mut worst = 0.0f64;
        for l in network.link_ids() {
            let d = (batch.link_congestion_probability(l)
                - estimate.link_congestion_probability(l))
            .abs();
            worst = worst.max(d);
        }
        Ok(worst)
    }

    /// Resets all streaming state (window, caches; the lifetime refit
    /// counters are kept).
    pub fn reset(&mut self) {
        self.window = None;
        self.path_sets.clear();
        self.set_all_good.clear();
        self.path_congested.clear();
        self.structure = None;
        self.estimate = None;
    }

    /// Folds one freshly pushed interval into the counters. Under decay the
    /// previously accumulated weighted counts are scaled by `λ` first (every
    /// older interval just aged by one step); the new interval enters with
    /// weight 1.
    fn add_interval(&mut self, flags: &[bool]) {
        let lambda = self.lambda();
        if lambda < 1.0 {
            for c in &mut self.set_all_good {
                *c *= lambda;
            }
        }
        for (p, &congested) in flags.iter().enumerate() {
            if congested {
                self.path_congested[p] += 1;
            }
        }
        for (i, set) in self.path_sets.iter().enumerate() {
            if set.iter().all(|p| !flags[p.index()]) {
                self.set_all_good[i] += 1.0;
            }
        }
    }

    /// Removes an evicted interval from the counters. At eviction time the
    /// oldest interval carries weight `λ^capacity` (it has aged `capacity`
    /// steps since it was pushed); without decay that is exactly 1.
    fn evict_interval(&mut self, flags: &[bool]) {
        let capacity = self
            .window
            .as_ref()
            .and_then(|w| w.capacity())
            .expect("evictions only happen on bounded windows");
        let weight = self.lambda().powi(capacity as i32);
        for (p, &congested) in flags.iter().enumerate() {
            if congested {
                self.path_congested[p] -= 1;
            }
        }
        for (i, set) in self.path_sets.iter().enumerate() {
            if set.iter().all(|p| !flags[p.index()]) {
                self.set_all_good[i] = (self.set_all_good[i] - weight).max(0.0);
            }
        }
    }

    /// The effective (weighted) sample size the empirical fractions divide
    /// by: the window length without decay, `Σ λ^age` with it.
    fn effective_weight(&self) -> f64 {
        self.window.as_ref().map_or(0.0, |w| w.total_weight())
    }

    /// The clamped empirical `ln P(all paths of the set good)` — identical
    /// to [`tomo_prob::PathSetEstimator::log_all_good_probability`] on the
    /// materialized window when decay is off.
    fn log_all_good(&self, set_index: usize, weight: f64) -> f64 {
        let t = if weight > 0.0 { weight } else { 1.0 };
        let floor = (self.config.estimator.min_virtual_observations / t).min(0.5);
        let fraction = self.set_all_good[set_index] / t;
        fraction.clamp(floor, 1.0).ln()
    }

    /// The right-hand-side vector over the active equations.
    fn rhs(&self, structure: &Structure, weight: f64) -> Vector {
        Vector::from_iter(
            structure
                .active_sets
                .iter()
                .map(|&i| self.log_all_good(i, weight)),
        )
    }

    /// Rebuilds the equation structure after a potentially-congested-set
    /// change, folding the null-space basis row-by-row through Algorithm 2.
    fn rebuild_structure(&mut self, network: &Network) {
        let window = self.window.as_ref().expect("rebuild needs a window");
        let observations = window.to_observations();
        let pc_links = potentially_congested_links(network, &observations);
        if pc_links.is_empty() {
            self.structure = Some(Structure {
                pc_links,
                active_sets: Vec::new(),
                solver: SystemSolver::build(&[], 0, self.config.ridge),
                identifiable: Vec::new(),
                rank: 0,
            });
            return;
        }
        let col_of = |l: LinkId| pc_links.binary_search(&l).ok();

        // Assemble the equation rows in sparse form (sorted column lists —
        // each path set touches a handful of links).
        let mut active_sets = Vec::new();
        let mut rows: Vec<Vec<usize>> = Vec::new();
        for (i, set) in self.path_sets.iter().enumerate() {
            let cols: Vec<usize> = network
                .links_covered(set.iter())
                .into_iter()
                .filter_map(col_of)
                .collect();
            if cols.is_empty() {
                continue;
            }
            rows.push(cols);
            active_sets.push(i);
        }

        let n = pc_links.len();
        let solver = SystemSolver::build(&rows, n, self.config.ridge);
        let (identifiable, rank) = match &solver {
            SystemSolver::Dense { matrix, .. } => {
                // Start from the null space of the empty system (the
                // identity) and fold each sparse equation row in with the
                // incremental update of Algorithm 2, exactly as the paper's
                // path selection does.
                let mut basis = Matrix::identity(n);
                let mut scratch = vec![0.0; n];
                for cols in &rows {
                    for &c in cols {
                        scratch[c] = 1.0;
                    }
                    basis = nullspace_update(&basis, &scratch).into_basis();
                    for &c in cols {
                        scratch[c] = 0.0;
                    }
                }
                // Fallback when the incrementally folded basis degrades: it
                // must still annihilate the assembled matrix.
                if basis.cols() > 0 && matrix.matmul(&basis).max_abs() > 1e-6 {
                    basis = tomo_linalg::nullspace(matrix);
                    self.counts.basis_rebuilds += 1;
                }
                let identifiable: Vec<bool> = (0..n)
                    .map(|i| (0..basis.cols()).all(|j| basis[(i, j)].abs() <= 1e-7))
                    .collect();
                (identifiable, n - basis.cols())
            }
            // At sparse scale the batch solvers run with identifiability
            // reporting off (folding a dense n×n identity basis is exactly
            // the cost wall the CSR path removes), and so does the online
            // form: every unknown is reported identifiable, the rank is the
            // generic bound — the same numbers a batch fit publishes.
            SystemSolver::Sparse(csr) => (vec![true; n], n.min(csr.rows())),
        };

        self.structure = Some(Structure {
            pc_links,
            active_sets,
            solver,
            identifiable,
            rank,
        });
    }

    /// Recomputes the published estimate from the current structure and
    /// counters. `solved` carries the solution vector when the caller
    /// already has one; otherwise the cached solver (or a full least-squares
    /// solve) produces it.
    fn refresh_estimate(&mut self, network: &Network, solved: Option<Vector>) {
        let weight = self.effective_weight();
        let structure = self.structure.as_ref().expect("refresh needs a structure");
        let mut estimate = ProbabilityEstimate::new(self.name(), network.num_links());
        estimate.independence_fallback = true;

        // Links that are observed but not potentially congested are known
        // good (exactly as the batch algorithm reports them).
        let pc: std::collections::BTreeSet<LinkId> = structure.pc_links.iter().copied().collect();
        for l in network.link_ids() {
            if !pc.contains(&l) && !network.paths_through_link(l).is_empty() {
                estimate.set_link(l, 0.0, true);
            }
        }

        if structure.pc_links.is_empty() {
            estimate.diagnostics = EstimateDiagnostics {
                total_targets: 0,
                ..EstimateDiagnostics::default()
            };
            self.estimate = Some(estimate);
            return;
        }

        let b = self.rhs(structure, weight);
        let x = match solved {
            Some(x) => x,
            None => structure.solver.solve_cached(&b, self.config.ridge),
        };

        for (c, &l) in structure.pc_links.iter().enumerate() {
            let good = x[c].exp().clamp(0.0, 1.0);
            estimate.set_link(l, 1.0 - good, structure.identifiable[c]);
        }
        estimate.diagnostics = EstimateDiagnostics {
            num_equations: structure.solver.rows(),
            num_unknowns: structure.pc_links.len(),
            rank: structure.rank,
            identifiable_targets: structure.identifiable.iter().filter(|&&b| b).count(),
            total_targets: structure.pc_links.len(),
        };
        self.estimate = Some(estimate);
    }
}

impl Estimator for OnlineIndependence {
    fn name(&self) -> &'static str {
        "Online-Independence"
    }

    fn assumptions(&self) -> AlgorithmAssumptions {
        AlgorithmAssumptions::independence_step()
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::PROBABILITY
    }

    fn fit(&mut self, network: &Network, observations: &PathObservations) -> Result<(), TomoError> {
        self.reset();
        self.ingest(network, observations)?;
        Ok(())
    }

    fn estimate(&self) -> Option<&ProbabilityEstimate> {
        self.estimate.as_ref()
    }
}

impl OnlineEstimator for OnlineIndependence {
    fn ingest(&mut self, network: &Network, batch: &PathObservations) -> Result<Refit, TomoError> {
        if batch.num_paths() != network.num_paths() {
            return Err(TomoError::InvalidConfig(format!(
                "batch has {} paths but the network has {}",
                batch.num_paths(),
                network.num_paths()
            )));
        }
        if self.window.is_none() {
            self.window = Some(ObservationWindow::with_decay(
                network.num_paths(),
                self.capacity,
                self.decay,
            ));
            self.path_sets = baseline_path_sets(network, batch, self.config.max_pair_equations);
            self.set_all_good = vec![0.0; self.path_sets.len()];
            self.path_congested = vec![0; network.num_paths()];
        }
        if self
            .window
            .as_ref()
            .expect("window just ensured")
            .num_paths()
            != network.num_paths()
        {
            return Err(TomoError::InvalidConfig(
                "network changed shape between ingests; create a fresh estimator".into(),
            ));
        }

        // Fold the batch into the window and the counters, remembering which
        // paths were congested before so a structure change is detectable.
        let was_congested: Vec<bool> = self.path_congested.iter().map(|&c| c > 0).collect();
        for t in 0..batch.num_intervals() {
            let flags: Vec<bool> = (0..batch.num_paths())
                .map(|p| batch.is_congested(PathId(p), t))
                .collect();
            let evicted = self
                .window
                .as_mut()
                .expect("window exists")
                .push_flags(flags.clone());
            self.add_interval(&flags);
            if let Some(old) = evicted {
                self.evict_interval(&old);
            }
        }
        let now_congested: Vec<bool> = self.path_congested.iter().map(|&c| c > 0).collect();

        let structural_change = self.structure.is_none() || was_congested != now_congested;
        if structural_change {
            self.rebuild_structure(network);
            // Solve exactly as the batch algorithm does at rebuild points.
            let structure = self.structure.as_ref().expect("just rebuilt");
            let solved = if structure.pc_links.is_empty() {
                None
            } else {
                let b = self.rhs(structure, self.effective_weight());
                Some(structure.solver.solve_batch(&b, self.config.ridge))
            };
            self.refresh_estimate(network, solved);
            self.counts.full += 1;
            Ok(Refit::Full)
        } else {
            self.refresh_estimate(network, None);
            self.counts.incremental += 1;
            Ok(Refit::Incremental)
        }
    }

    fn window(&self) -> Option<&ObservationWindow> {
        self.window.as_ref()
    }

    fn refit_counts(&self) -> RefitCounts {
        self.counts
    }

    fn restore_total_ingested(&mut self, total: u64) {
        if let Some(window) = self.window.as_mut() {
            window.restore_total_ingested(total);
        }
    }

    fn congested_paths(&self) -> Option<Vec<bool>> {
        self.window
            .as_ref()
            .map(|_| self.path_congested.iter().map(|&c| c > 0).collect())
    }

    fn force_rebuild(&mut self, network: &Network) -> bool {
        match self.window.as_ref() {
            Some(w) if w.num_paths() == network.num_paths() => {}
            _ => return false,
        }
        self.rebuild_structure(network);
        let structure = self.structure.as_ref().expect("just rebuilt");
        let solved = if structure.pc_links.is_empty() {
            None
        } else {
            let b = self.rhs(structure, self.effective_weight());
            Some(structure.solver.solve_batch(&b, self.config.ridge))
        };
        self.refresh_estimate(network, solved);
        self.counts.full += 1;
        true
    }
}

// ---------------------------------------------------------------------------
// OnlineCorrelation
// ---------------------------------------------------------------------------

/// Cached state of [`OnlineCorrelation`] that only changes when the
/// potentially-congested path bitmap changes: the Algorithm-1 selection and
/// assembled system, the ridge pseudo-solver over its columns, and the
/// per-equation (weighted) all-good counters.
struct CorrStructure {
    /// Targets, selection and equation system from `tomo-prob`.
    sys: CorrelationSystem,
    /// The assembled system matrix (rows = equations, columns = subsets
    /// including auxiliaries) with its cached solver: dense + LU factors
    /// for small systems, CSR + CG for sparse ones.
    solver: SystemSolver,
    /// Per equation: (decay-weighted) count of intervals in the window where
    /// every path of the equation's path set was good.
    set_all_good: Vec<f64>,
}

/// Incremental, streaming form of the paper's Correlation-complete
/// Probability Computation algorithm.
///
/// Like [`OnlineIndependence`], it exploits that the expensive part of the
/// batch fit — target enumeration, Algorithm-1 path-set selection and the
/// equation-system assembly — depends on the observations only through
/// which paths have congested within the window. While that bitmap is
/// stable, an ingest only moves the per-equation all-good counters and
/// re-applies the cached solver ([`Refit::Incremental`]); when
/// it changes, targets and selection are rebuilt from the retained window
/// ([`Refit::Full`]). The observable contract is that the estimate always
/// equals — up to solver tolerance — a batch
/// [`tomo_prob::CorrelationComplete`] fit on the retained window (under
/// decay: the window materialized with its `λ^age` weights).
pub struct OnlineCorrelation {
    config: CorrelationCompleteConfig,
    capacity: Option<usize>,
    decay: Option<f64>,
    window: Option<ObservationWindow>,
    /// Per path: intervals in the window where the path was congested
    /// (unweighted presence counts; drives structure-change detection).
    path_congested: Vec<u64>,
    structure: Option<CorrStructure>,
    estimate: Option<ProbabilityEstimate>,
    counts: RefitCounts,
}

impl Default for OnlineCorrelation {
    fn default() -> Self {
        Self::new(CorrelationCompleteConfig::default(), None)
    }
}

impl OnlineCorrelation {
    /// Creates the estimator; `window_capacity` bounds the retained
    /// intervals (`None` keeps the full history).
    pub fn new(config: CorrelationCompleteConfig, window_capacity: Option<usize>) -> Self {
        Self::with_decay(config, window_capacity, None)
    }

    /// Creates the estimator with an exponential reweighting factor
    /// `decay ∈ (0, 1)` on top of (optional) truncation.
    pub fn with_decay(
        config: CorrelationCompleteConfig,
        window_capacity: Option<usize>,
        decay: Option<f64>,
    ) -> Self {
        Self {
            config,
            capacity: window_capacity,
            decay,
            window: None,
            path_congested: Vec::new(),
            structure: None,
            estimate: None,
            counts: RefitCounts::default(),
        }
    }

    fn lambda(&self) -> f64 {
        self.decay.unwrap_or(1.0)
    }

    /// The refit counters (also available through the trait).
    pub fn counts(&self) -> RefitCounts {
        self.counts
    }

    /// Maximum absolute deviation of the current per-link probabilities from
    /// a from-scratch batch fit on the retained window. Under decay the
    /// window materializes with its `λ^age` weights, which the batch
    /// estimator honors.
    pub fn deviation_from_batch(&self, network: &Network) -> Result<f64, TomoError> {
        let window = self.window.as_ref().ok_or_else(|| TomoError::NotFitted {
            estimator: self.name().to_string(),
        })?;
        let estimate = self.estimate.as_ref().ok_or_else(|| TomoError::NotFitted {
            estimator: self.name().to_string(),
        })?;
        use tomo_prob::ProbabilityComputation;
        let batch = CorrelationComplete::new(self.config.clone())
            .compute(network, &window.to_observations());
        let mut worst = 0.0f64;
        for l in network.link_ids() {
            let d = (batch.link_congestion_probability(l)
                - estimate.link_congestion_probability(l))
            .abs();
            worst = worst.max(d);
        }
        Ok(worst)
    }

    /// Resets all streaming state (the lifetime refit counters are kept).
    pub fn reset(&mut self) {
        self.window = None;
        self.path_congested.clear();
        self.structure = None;
        self.estimate = None;
    }

    /// Rebuilds targets, selection, system and counters from the retained
    /// window, and caches the ridge pseudo-solver for the incremental path.
    fn rebuild_structure(&mut self, network: &Network) {
        let window = self.window.as_ref().expect("rebuild needs a window");
        let observations = window.to_observations();
        let sys = CorrelationSystem::build(&self.config, network, &observations);
        // The equations already are the sparse rows (each stores only the
        // columns with coefficient 1); assemble the solver from them.
        let rows: Vec<Vec<usize>> = sys
            .system
            .equations()
            .iter()
            .map(|eq| {
                let mut cols = eq.columns.clone();
                cols.sort_unstable();
                cols.dedup();
                cols
            })
            .collect();
        let solver = SystemSolver::build(&rows, sys.system.index().len(), self.config.ridge);

        // Recompute the per-equation weighted all-good counters from the
        // retained intervals (the equation list just changed shape).
        let mut set_all_good = vec![0.0; sys.system.num_equations()];
        for i in 0..window.len() {
            let flags = window.interval(i);
            let weight = window.interval_weight(i);
            for (e, eq) in sys.system.equations().iter().enumerate() {
                if eq.path_set.iter().all(|p| !flags[p.index()]) {
                    set_all_good[e] += weight;
                }
            }
        }

        self.structure = Some(CorrStructure {
            sys,
            solver,
            set_all_good,
        });
    }

    /// Recomputes the published estimate from the cached structure and
    /// counters. `batch_solve` forces the same least-squares path the batch
    /// algorithm uses (rebuild points); otherwise the cached pseudo-solver
    /// answers.
    fn refresh_estimate(&mut self, network: &Network, batch_solve: bool) {
        let window = self.window.as_ref().expect("refresh needs a window");
        let weight = window.total_weight();
        let structure = self.structure.as_ref().expect("refresh needs a structure");
        if structure.sys.is_empty() {
            self.estimate = Some(
                structure
                    .sys
                    .estimate_from_solution(self.name(), network, &[]),
            );
            return;
        }

        // Weighted empirical right-hand sides, clamped exactly like
        // `PathSetEstimator::log_all_good_probability`.
        let t = if weight > 0.0 { weight } else { 1.0 };
        let floor = (self.config.estimator.min_virtual_observations / t).min(0.5);
        let b = Vector::from_iter(
            structure
                .set_all_good
                .iter()
                .map(|&c| (c / t).clamp(floor, 1.0).ln()),
        );

        let x = if batch_solve {
            structure.solver.solve_batch(&b, self.config.ridge)
        } else {
            structure.solver.solve_cached(&b, self.config.ridge)
        };
        let good: Vec<f64> = x
            .as_slice()
            .iter()
            .map(|&y| y.exp().clamp(0.0, 1.0))
            .collect();
        self.estimate = Some(
            structure
                .sys
                .estimate_from_solution(self.name(), network, &good),
        );
    }
}

impl Estimator for OnlineCorrelation {
    fn name(&self) -> &'static str {
        "Online-Correlation-complete"
    }

    fn assumptions(&self) -> AlgorithmAssumptions {
        AlgorithmAssumptions::correlation_complete()
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::PROBABILITY
    }

    fn fit(&mut self, network: &Network, observations: &PathObservations) -> Result<(), TomoError> {
        self.reset();
        self.ingest(network, observations)?;
        Ok(())
    }

    fn estimate(&self) -> Option<&ProbabilityEstimate> {
        self.estimate.as_ref()
    }
}

impl OnlineEstimator for OnlineCorrelation {
    fn ingest(&mut self, network: &Network, batch: &PathObservations) -> Result<Refit, TomoError> {
        if batch.num_paths() != network.num_paths() {
            return Err(TomoError::InvalidConfig(format!(
                "batch has {} paths but the network has {}",
                batch.num_paths(),
                network.num_paths()
            )));
        }
        if self.window.is_none() {
            self.window = Some(ObservationWindow::with_decay(
                network.num_paths(),
                self.capacity,
                self.decay,
            ));
            self.path_congested = vec![0; network.num_paths()];
        }
        if self
            .window
            .as_ref()
            .expect("window just ensured")
            .num_paths()
            != network.num_paths()
        {
            return Err(TomoError::InvalidConfig(
                "network changed shape between ingests; create a fresh estimator".into(),
            ));
        }

        let was_congested: Vec<bool> = self.path_congested.iter().map(|&c| c > 0).collect();
        let lambda = self.lambda();
        for t in 0..batch.num_intervals() {
            let flags: Vec<bool> = (0..batch.num_paths())
                .map(|p| batch.is_congested(PathId(p), t))
                .collect();
            let evicted = self
                .window
                .as_mut()
                .expect("window exists")
                .push_flags(flags.clone());
            // Fold the interval into the per-equation counters (when a
            // structure is cached — a rebuild recomputes them anyway).
            if let Some(structure) = self.structure.as_mut() {
                if lambda < 1.0 {
                    for c in &mut structure.set_all_good {
                        *c *= lambda;
                    }
                }
                for (e, eq) in structure.sys.system.equations().iter().enumerate() {
                    if eq.path_set.iter().all(|p| !flags[p.index()]) {
                        structure.set_all_good[e] += 1.0;
                    }
                }
            }
            for (p, &congested) in flags.iter().enumerate() {
                if congested {
                    self.path_congested[p] += 1;
                }
            }
            if let Some(old) = evicted {
                let capacity = self
                    .window
                    .as_ref()
                    .and_then(|w| w.capacity())
                    .expect("evictions only happen on bounded windows");
                let weight = lambda.powi(capacity as i32);
                if let Some(structure) = self.structure.as_mut() {
                    for (e, eq) in structure.sys.system.equations().iter().enumerate() {
                        if eq.path_set.iter().all(|p| !old[p.index()]) {
                            structure.set_all_good[e] =
                                (structure.set_all_good[e] - weight).max(0.0);
                        }
                    }
                }
                for (p, &congested) in old.iter().enumerate() {
                    if congested {
                        self.path_congested[p] -= 1;
                    }
                }
            }
        }
        let now_congested: Vec<bool> = self.path_congested.iter().map(|&c| c > 0).collect();

        let structural_change = self.structure.is_none() || was_congested != now_congested;
        if structural_change {
            self.rebuild_structure(network);
            self.refresh_estimate(network, true);
            self.counts.full += 1;
            Ok(Refit::Full)
        } else {
            self.refresh_estimate(network, false);
            self.counts.incremental += 1;
            Ok(Refit::Incremental)
        }
    }

    fn window(&self) -> Option<&ObservationWindow> {
        self.window.as_ref()
    }

    fn refit_counts(&self) -> RefitCounts {
        self.counts
    }

    fn restore_total_ingested(&mut self, total: u64) {
        if let Some(window) = self.window.as_mut() {
            window.restore_total_ingested(total);
        }
    }

    fn congested_paths(&self) -> Option<Vec<bool>> {
        self.window
            .as_ref()
            .map(|_| self.path_congested.iter().map(|&c| c > 0).collect())
    }

    fn force_rebuild(&mut self, network: &Network) -> bool {
        match self.window.as_ref() {
            Some(w) if w.num_paths() == network.num_paths() => {}
            _ => return false,
        }
        self.rebuild_structure(network);
        self.refresh_estimate(network, true);
        self.counts.full += 1;
        true
    }
}

// ---------------------------------------------------------------------------
// BufferedOnline
// ---------------------------------------------------------------------------

/// Gives any registry estimator an online form by buffering a rolling
/// window and re-running the batch fit on every ingest.
///
/// With a decay factor the materialized window carries `λ^age` interval
/// weights, so every estimator that consumes empirical frequencies (the
/// Bayesian and heuristic estimators included) tracks drifting loss rates
/// instead of averaging them away.
pub struct BufferedOnline {
    inner: Box<dyn Estimator + Send>,
    capacity: Option<usize>,
    decay: Option<f64>,
    window: Option<ObservationWindow>,
    counts: RefitCounts,
}

impl BufferedOnline {
    /// Wraps a batch estimator; `window_capacity` bounds the buffered
    /// intervals (`None` keeps everything).
    pub fn new(inner: Box<dyn Estimator + Send>, window_capacity: Option<usize>) -> Self {
        Self::with_decay(inner, window_capacity, None)
    }

    /// Wraps a batch estimator with an exponential reweighting factor
    /// `decay ∈ (0, 1)` on top of (optional) truncation.
    pub fn with_decay(
        inner: Box<dyn Estimator + Send>,
        window_capacity: Option<usize>,
        decay: Option<f64>,
    ) -> Self {
        Self {
            inner,
            capacity: window_capacity,
            decay,
            window: None,
            counts: RefitCounts::default(),
        }
    }
}

impl Estimator for BufferedOnline {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn assumptions(&self) -> AlgorithmAssumptions {
        self.inner.assumptions()
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn fit(&mut self, network: &Network, observations: &PathObservations) -> Result<(), TomoError> {
        self.window = None;
        self.ingest(network, observations)?;
        Ok(())
    }

    fn estimate(&self) -> Option<&ProbabilityEstimate> {
        self.inner.estimate()
    }

    fn infer_interval(
        &self,
        network: &Network,
        congested_paths: &[PathId],
    ) -> Result<Vec<LinkId>, TomoError> {
        self.inner.infer_interval(network, congested_paths)
    }
}

impl OnlineEstimator for BufferedOnline {
    fn ingest(&mut self, network: &Network, batch: &PathObservations) -> Result<Refit, TomoError> {
        if batch.num_paths() != network.num_paths() {
            return Err(TomoError::InvalidConfig(format!(
                "batch has {} paths but the network has {}",
                batch.num_paths(),
                network.num_paths()
            )));
        }
        let window = self.window.get_or_insert_with(|| {
            ObservationWindow::with_decay(network.num_paths(), self.capacity, self.decay)
        });
        for t in 0..batch.num_intervals() {
            let flags: Vec<bool> = (0..batch.num_paths())
                .map(|p| batch.is_congested(PathId(p), t))
                .collect();
            window.push_flags(flags);
        }
        let observations = window.to_observations();
        self.inner.fit(network, &observations)?;
        self.counts.full += 1;
        Ok(Refit::Full)
    }

    fn window(&self) -> Option<&ObservationWindow> {
        self.window.as_ref()
    }

    fn refit_counts(&self) -> RefitCounts {
        self.counts
    }

    fn restore_total_ingested(&mut self, total: u64) {
        if let Some(window) = self.window.as_mut() {
            window.restore_total_ingested(total);
        }
    }

    fn force_rebuild(&mut self, network: &Network) -> bool {
        let observations = match self.window.as_ref() {
            Some(w) if w.num_paths() == network.num_paths() => w.to_observations(),
            _ => return false,
        };
        if self.inner.fit(network, &observations).is_err() {
            return false;
        }
        self.counts.full += 1;
        true
    }
}

/// Constructs an online estimator by registry name.
///
/// `independence` resolves to the incremental [`OnlineIndependence`] and
/// `correlation-complete` to the incremental [`OnlineCorrelation`]; every
/// other registry name is wrapped in [`BufferedOnline`] (correct, but each
/// ingest is a full refit).
///
/// `decay` enables exponential reweighting (`λ ∈ (0, 1)`). The incremental
/// estimators maintain the reweighted counters directly; buffered
/// estimators re-fit from the window, which under decay materializes with
/// `λ^age` interval weights that every frequency-consuming batch algorithm
/// (Bayesian, heuristic, …) honors.
pub fn online_by_name(
    name: &str,
    options: &EstimatorOptions,
    window_capacity: Option<usize>,
    decay: Option<f64>,
) -> Result<Box<dyn OnlineEstimator + Send>, TomoError> {
    if let Some(lambda) = decay {
        if !(lambda > 0.0 && lambda < 1.0) {
            return Err(TomoError::InvalidConfig(format!(
                "decay must lie in (0, 1), got {lambda}"
            )));
        }
    }
    let canonical = crate::registry::canonical(name);
    if canonical == "independence" || canonical == "online-independence" {
        return Ok(Box::new(OnlineIndependence::with_decay(
            IndependenceConfig::default(),
            window_capacity,
            decay,
        )));
    }
    if canonical == "correlation-complete" || canonical == "online-correlation-complete" {
        return Ok(Box::new(OnlineCorrelation::with_decay(
            options.correlation_complete_config(),
            window_capacity,
            decay,
        )));
    }
    let inner = crate::registry::with_options(name, options)?;
    Ok(Box::new(BufferedOnline::with_decay(
        inner,
        window_capacity,
        decay,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::toy;
    use tomo_prob::{Independence, ProbabilityComputation};

    /// Splits observations into consecutive batches of `chunk` intervals.
    fn batches(obs: &PathObservations, chunk: usize) -> Vec<PathObservations> {
        let mut out = Vec::new();
        let mut t = 0;
        while t < obs.num_intervals() {
            let len = chunk.min(obs.num_intervals() - t);
            let mut b = PathObservations::new(obs.num_paths(), len);
            for dt in 0..len {
                for p in 0..obs.num_paths() {
                    b.set_congested(PathId(p), dt, obs.is_congested(PathId(p), t + dt));
                }
            }
            out.push(b);
            t += len;
        }
        out
    }

    /// Deterministic observations on the Fig. 1 toy topology: e1 congested
    /// 20% of the time, e3 25% on a disjoint schedule.
    fn toy_observations(t: usize) -> PathObservations {
        let mut obs = PathObservations::new(3, t);
        for ti in 0..t {
            let e1_bad = ti % 5 == 0;
            let e3_bad = ti % 4 == 1;
            obs.set_congested(PathId(0), ti, e1_bad);
            obs.set_congested(PathId(1), ti, e1_bad || e3_bad);
            obs.set_congested(PathId(2), ti, e3_bad);
        }
        obs
    }

    #[test]
    fn incremental_ingest_matches_batch_fit() {
        let net = toy::fig1_case1();
        let obs = toy_observations(200);
        let mut online = OnlineIndependence::default();
        for batch in batches(&obs, 7) {
            online.ingest(&net, &batch).unwrap();
        }
        let batch_est = Independence::default().compute(&net, &obs);
        let online_est = online.estimate().expect("fitted");
        for l in net.link_ids() {
            let (a, b) = (
                batch_est.link_congestion_probability(l),
                online_est.link_congestion_probability(l),
            );
            assert!((a - b).abs() < 1e-5, "link {l}: batch {a} vs online {b}");
            assert_eq!(
                batch_est.link_is_identifiable(l),
                online_est.link_is_identifiable(l),
                "identifiability of {l}"
            );
        }
        assert!(online.deviation_from_batch(&net).unwrap() < 1e-5);
    }

    #[test]
    fn steady_state_ingests_are_incremental() {
        let net = toy::fig1_case1();
        let obs = toy_observations(300);
        let mut online = OnlineIndependence::default();
        let mut refits = Vec::new();
        for batch in batches(&obs, 20) {
            refits.push(online.ingest(&net, &batch).unwrap());
        }
        // Every path (and hence the pc set) has shown congestion within the
        // first batch, so everything after it rides the incremental path.
        assert_eq!(refits[0], Refit::Full);
        assert!(
            refits[1..].iter().all(|r| *r == Refit::Incremental),
            "{refits:?}"
        );
        let counts = online.refit_counts();
        assert_eq!(counts.full, 1);
        assert_eq!(counts.incremental, refits.len() as u64 - 1);
        assert_eq!(online.intervals_ingested(), 300);
    }

    #[test]
    fn first_congestion_of_a_path_forces_a_full_refit() {
        let net = toy::fig1_case1();
        let mut online = OnlineIndependence::default();
        // First batch: only p1 (= e1/e2) congested.
        let mut b1 = PathObservations::new(3, 10);
        b1.set_congested(PathId(0), 2, true);
        assert_eq!(online.ingest(&net, &b1).unwrap(), Refit::Full);
        // Second batch: same structure -> incremental.
        assert_eq!(online.ingest(&net, &b1).unwrap(), Refit::Incremental);
        // Third batch: p3 congests for the first time -> structure changes.
        let mut b3 = PathObservations::new(3, 10);
        b3.set_congested(PathId(2), 0, true);
        assert_eq!(online.ingest(&net, &b3).unwrap(), Refit::Full);
        assert!(online.deviation_from_batch(&net).unwrap() < 1e-5);
    }

    #[test]
    fn bounded_window_tracks_the_batch_fit_on_retained_intervals() {
        let net = toy::fig1_case1();
        let obs = toy_observations(240);
        let mut online = OnlineIndependence::new(IndependenceConfig::default(), Some(60));
        for batch in batches(&obs, 12) {
            online.ingest(&net, &batch).unwrap();
        }
        assert_eq!(online.window().unwrap().len(), 60);
        assert!(online.window().unwrap().evicted() > 0);
        assert!(online.deviation_from_batch(&net).unwrap() < 1e-5);
    }

    #[test]
    fn all_good_stream_reports_known_good_links() {
        let net = toy::fig1_case1();
        let mut online = OnlineIndependence::default();
        let refit = online.ingest(&net, &PathObservations::new(3, 25)).unwrap();
        assert_eq!(refit, Refit::Full);
        let est = online.estimate().unwrap();
        for l in net.link_ids() {
            assert_eq!(est.link_congestion_probability(l), 0.0);
            assert!(est.link_is_identifiable(l));
        }
    }

    #[test]
    fn fit_resets_and_matches_a_single_ingest() {
        let net = toy::fig1_case1();
        let obs = toy_observations(100);
        let mut online = OnlineIndependence::default();
        // Pollute with unrelated data first; fit must discard it.
        online.ingest(&net, &toy_observations(33)).unwrap();
        online.fit(&net, &obs).unwrap();
        assert_eq!(online.window().unwrap().len(), 100);
        assert!(online.deviation_from_batch(&net).unwrap() < 1e-5);
    }

    #[test]
    fn mismatched_batch_shape_is_rejected() {
        let net = toy::fig1_case1();
        let mut online = OnlineIndependence::default();
        let err = online
            .ingest(&net, &PathObservations::new(5, 4))
            .unwrap_err();
        assert!(matches!(err, TomoError::InvalidConfig(_)));
    }

    #[test]
    fn buffered_online_wraps_any_registry_estimator() {
        let net = toy::fig1_case1();
        let obs = toy_observations(80);
        let mut online = online_by_name(
            "bayesian-correlation",
            &EstimatorOptions::default(),
            None,
            None,
        )
        .unwrap();
        for batch in batches(&obs, 40) {
            assert_eq!(online.ingest(&net, &batch).unwrap(), Refit::Full);
        }
        assert_eq!(online.intervals_ingested(), 80);
        let est = online.estimate().expect("probability capability");
        // Must equal the straight batch fit on the concatenation.
        let mut batch_est = crate::registry::by_name("bayesian-correlation").unwrap();
        batch_est.fit(&net, &obs).unwrap();
        let batch_est = batch_est.estimate().unwrap();
        for l in net.link_ids() {
            assert!(
                (est.link_congestion_probability(l) - batch_est.link_congestion_probability(l))
                    .abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn online_registry_resolves_the_incremental_paths() {
        let online = online_by_name("independence", &EstimatorOptions::default(), Some(50), None);
        assert_eq!(online.unwrap().name(), "Online-Independence");
        let online = online_by_name(
            "correlation-complete",
            &EstimatorOptions::default(),
            None,
            None,
        );
        assert_eq!(online.unwrap().name(), "Online-Correlation-complete");
        assert!(online_by_name("no-such", &EstimatorOptions::default(), None, None).is_err());
        // Buffered estimators accept decay (the window materializes with
        // λ^age weights); factors outside (0, 1) are rejected for everyone.
        assert!(online_by_name("sparsity", &EstimatorOptions::default(), None, Some(0.9)).is_ok());
        assert!(online_by_name(
            "bayesian-independence",
            &EstimatorOptions::default(),
            None,
            Some(1.5)
        )
        .is_err());
        assert!(online_by_name(
            "independence",
            &EstimatorOptions::default(),
            None,
            Some(1.5)
        )
        .is_err());
        assert!(online_by_name(
            "independence",
            &EstimatorOptions::default(),
            None,
            Some(0.9)
        )
        .is_ok());
    }

    // -- OnlineCorrelation ---------------------------------------------------

    /// Observations exercising correlated links on the Fig. 1 topology:
    /// e1 congested 20% of the time, {e2,e3} perfectly correlated at 40%.
    fn correlated_observations(t: usize) -> PathObservations {
        let mut obs = PathObservations::new(3, t);
        for ti in 0..t {
            let e1_bad = ti % 25 < 5;
            let e23_bad = ti % 5 < 2;
            obs.set_congested(PathId(0), ti, e1_bad || e23_bad);
            obs.set_congested(PathId(1), ti, e1_bad || e23_bad);
            obs.set_congested(PathId(2), ti, e23_bad);
        }
        obs
    }

    #[test]
    fn online_correlation_matches_batch_fit() {
        use tomo_prob::ProbabilityComputation;
        let net = toy::fig1_case1();
        let obs = correlated_observations(200);
        let mut online = OnlineCorrelation::default();
        for batch in batches(&obs, 7) {
            online.ingest(&net, &batch).unwrap();
        }
        let batch_est = CorrelationComplete::default().compute(&net, &obs);
        let online_est = online.estimate().expect("fitted");
        for l in net.link_ids() {
            let (a, b) = (
                batch_est.link_congestion_probability(l),
                online_est.link_congestion_probability(l),
            );
            assert!((a - b).abs() < 1e-5, "link {l}: batch {a} vs online {b}");
            assert_eq!(
                batch_est.link_is_identifiable(l),
                online_est.link_is_identifiable(l),
                "identifiability of {l}"
            );
        }
        // Subset (pair) probabilities survive the incremental path too.
        for (subset, good) in batch_est.estimated_subsets() {
            let links: Vec<_> = subset.iter().copied().collect();
            let online_joint = online_est.subset_good_probability(&links);
            assert!(
                online_joint.is_some(),
                "subset {subset:?} missing from online estimate"
            );
            assert!((online_joint.unwrap() - good).abs() < 1e-5, "{subset:?}");
        }
        assert!(online.deviation_from_batch(&net).unwrap() < 1e-5);
    }

    #[test]
    fn online_correlation_steady_state_is_incremental() {
        let net = toy::fig1_case1();
        let obs = correlated_observations(300);
        let mut online = OnlineCorrelation::default();
        let mut refits = Vec::new();
        for batch in batches(&obs, 25) {
            refits.push(online.ingest(&net, &batch).unwrap());
        }
        assert_eq!(refits[0], Refit::Full);
        assert!(
            refits[1..].iter().all(|r| *r == Refit::Incremental),
            "{refits:?}"
        );
        let counts = online.refit_counts();
        assert_eq!(counts.full, 1);
        assert_eq!(counts.incremental, refits.len() as u64 - 1);
        assert_eq!(online.intervals_ingested(), 300);
        assert!(online.deviation_from_batch(&net).unwrap() < 1e-5);
    }

    #[test]
    fn online_correlation_bounded_window_tracks_batch() {
        let net = toy::fig1_case1();
        let obs = correlated_observations(240);
        let mut online = OnlineCorrelation::new(CorrelationCompleteConfig::default(), Some(75));
        for batch in batches(&obs, 12) {
            online.ingest(&net, &batch).unwrap();
        }
        assert_eq!(online.window().unwrap().len(), 75);
        assert!(online.window().unwrap().evicted() > 0);
        assert!(online.deviation_from_batch(&net).unwrap() < 1e-5);
    }

    #[test]
    fn online_correlation_structure_change_forces_full_refit() {
        let net = toy::fig1_case1();
        let mut online = OnlineCorrelation::default();
        let mut b1 = PathObservations::new(3, 10);
        b1.set_congested(PathId(0), 2, true);
        assert_eq!(online.ingest(&net, &b1).unwrap(), Refit::Full);
        assert_eq!(online.ingest(&net, &b1).unwrap(), Refit::Incremental);
        let mut b3 = PathObservations::new(3, 10);
        b3.set_congested(PathId(2), 0, true);
        assert_eq!(online.ingest(&net, &b3).unwrap(), Refit::Full);
        assert!(online.deviation_from_batch(&net).unwrap() < 1e-5);
    }

    // -- Decay ---------------------------------------------------------------

    /// A drifting stream: `path` congested at `before` rate for the first
    /// `t_drift` intervals, then at `after` rate.
    fn drifting_flags(t: usize, t_drift: usize, before: usize, after: usize) -> PathObservations {
        let mut obs = PathObservations::new(3, t);
        for ti in 0..t {
            let period = if ti < t_drift { before } else { after };
            let bad = ti % period == 0;
            obs.set_congested(PathId(0), ti, bad);
            obs.set_congested(PathId(1), ti, bad || ti % 4 == 1);
            obs.set_congested(PathId(2), ti, ti % 4 == 1);
        }
        obs
    }

    #[test]
    fn decayed_window_tracks_drift_faster_than_truncation() {
        let net = toy::fig1_case1();
        // e1's congestion rate jumps from 10% to 50% at t = 300; both
        // estimators then see 60 post-drift intervals.
        let obs = drifting_flags(360, 300, 10, 2);
        let mut truncating = OnlineIndependence::new(IndependenceConfig::default(), Some(200));
        let mut decayed =
            OnlineIndependence::with_decay(IndependenceConfig::default(), Some(200), Some(0.95));
        for batch in batches(&obs, 20) {
            truncating.ingest(&net, &batch).unwrap();
            decayed.ingest(&net, &batch).unwrap();
        }
        let post_drift_rate = 0.5;
        let e1 = tomo_graph::toy::E1;
        let trunc_err = (truncating
            .estimate()
            .unwrap()
            .link_congestion_probability(e1)
            - post_drift_rate)
            .abs();
        let decay_err =
            (decayed.estimate().unwrap().link_congestion_probability(e1) - post_drift_rate).abs();
        // The truncating window still averages 140 pre-drift intervals into
        // the rate; the decayed window has all but forgotten them.
        assert!(
            decay_err < trunc_err,
            "decayed {decay_err} should beat truncating {trunc_err}"
        );
        assert!(decay_err < 0.1, "decayed error too large: {decay_err}");
        // The incremental decayed estimate still matches a batch fit on the
        // weighted window (the window materializes its λ^age weights).
        assert!(decayed.deviation_from_batch(&net).unwrap() < 1e-5);
    }

    #[test]
    fn decayed_bayesian_fit_tracks_drift_faster_than_truncation() {
        // The --decay knob must reach the buffered (Bayesian/heuristic)
        // estimators through the weighted observation window: after e1's
        // congestion rate jumps from 10% to 50%, the decayed Bayesian fit
        // must sit closer to the post-drift rate than the truncating one.
        let net = toy::fig1_case1();
        let obs = drifting_flags(360, 300, 10, 2);
        let mut truncating = online_by_name(
            "bayesian-independence",
            &EstimatorOptions::default(),
            Some(200),
            None,
        )
        .unwrap();
        let mut decayed = online_by_name(
            "bayesian-independence",
            &EstimatorOptions::default(),
            Some(200),
            Some(0.95),
        )
        .unwrap();
        for batch in batches(&obs, 20) {
            truncating.ingest(&net, &batch).unwrap();
            decayed.ingest(&net, &batch).unwrap();
        }
        let post_drift_rate = 0.5;
        let e1 = tomo_graph::toy::E1;
        let trunc_err = (truncating
            .estimate()
            .expect("bayesian fits probabilities")
            .link_congestion_probability(e1)
            - post_drift_rate)
            .abs();
        let decay_err = (decayed
            .estimate()
            .expect("bayesian fits probabilities")
            .link_congestion_probability(e1)
            - post_drift_rate)
            .abs();
        assert!(
            decay_err < trunc_err,
            "decayed bayesian {decay_err} should beat truncating {trunc_err}"
        );
        assert!(
            decay_err < 0.1,
            "decayed bayesian error too large: {decay_err}"
        );
    }

    #[test]
    fn decay_without_drift_agrees_with_the_stationary_rate() {
        let net = toy::fig1_case1();
        let obs = toy_observations(400);
        let mut decayed =
            OnlineIndependence::with_decay(IndependenceConfig::default(), None, Some(0.99));
        for batch in batches(&obs, 20) {
            decayed.ingest(&net, &batch).unwrap();
        }
        // Stationary stream: the reweighted estimate still recovers the true
        // rate (e1 congested 20% of intervals), just with a shorter memory.
        let p = decayed
            .estimate()
            .unwrap()
            .link_congestion_probability(tomo_graph::toy::E1);
        assert!((p - 0.2).abs() < 0.1, "{p}");
    }
}
