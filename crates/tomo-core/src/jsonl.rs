//! Shared JSON-lines helpers.
//!
//! Two subsystems speak JSON lines — the sweep engine renders one record per
//! line into report files, and the `tomo-serve` daemon frames every wire
//! message as one JSON object per line. Both go through this module so the
//! framing rules live in exactly one place:
//!
//! * one compact JSON value per line, terminated by `\n`;
//! * no embedded newlines inside a line (the serializer escapes them);
//! * blank lines are ignored on decode (tolerant of trailing newlines and
//!   hand-edited files).

use serde::{Deserialize, Serialize};

use crate::error::TomoError;

/// Encodes one value as a single compact JSON line (no trailing newline).
pub fn encode_line<T: Serialize + ?Sized>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

/// Encodes a sequence of values as JSON lines, one per value, each terminated
/// by `\n`.
pub fn encode_lines<'a, T, I>(values: I) -> String
where
    T: Serialize + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let mut out = String::new();
    for value in values {
        out.push_str(&encode_line(value));
        out.push('\n');
    }
    out
}

/// Decodes one JSON line into `T`. The line may carry a trailing newline.
pub fn decode_line<T: Deserialize>(line: &str) -> Result<T, TomoError> {
    serde_json::from_str(line.trim_end_matches(['\r', '\n']))
        .map_err(|e| TomoError::Serde(format!("invalid JSON line: {e}")))
}

/// Decodes a whole JSON-lines document, skipping blank lines. Fails on the
/// first malformed line, reporting its (1-based) line number.
pub fn decode_lines<T: Deserialize>(text: &str) -> Result<Vec<T>, TomoError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            serde_json::from_str(line)
                .map_err(|e| TomoError::Serde(format!("invalid JSON on line {}: {e}", i + 1)))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
    struct Record {
        name: String,
        value: f64,
    }

    fn records() -> Vec<Record> {
        vec![
            Record {
                name: "a".into(),
                value: 0.5,
            },
            Record {
                name: "b\nwith newline".into(),
                value: 1.0,
            },
        ]
    }

    #[test]
    fn round_trips_one_record_per_line() {
        let text = encode_lines(&records());
        assert_eq!(text.lines().count(), 2, "{text:?}");
        let back: Vec<Record> = decode_lines(&text).unwrap();
        assert_eq!(back, records());
    }

    #[test]
    fn embedded_newlines_are_escaped() {
        let line = encode_line(&records()[1]);
        assert!(!line.contains('\n'));
        let back: Record = decode_line(&line).unwrap();
        assert_eq!(back, records()[1]);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!(
            "\n{}\n\n{}\n\n",
            encode_line(&records()[0]),
            encode_line(&records()[1])
        );
        let back: Vec<Record> = decode_lines(&text).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        let text = format!("{}\nnot json\n", encode_line(&records()[0]));
        let err = decode_lines::<Record>(&text).unwrap_err();
        assert!(matches!(err, TomoError::Serde(_)));
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn decode_line_tolerates_trailing_newline() {
        let line = format!("{}\r\n", encode_line(&records()[0]));
        let back: Record = decode_line(&line).unwrap();
        assert_eq!(back, records()[0]);
    }
}
