//! Unified estimation API for the network-tomography workspace.
//!
//! The paper evaluates six algorithms — three Boolean-Inference baselines
//! (§3) and three Probability-Computation algorithms (§5) — over the same
//! networks, scenarios and observations. This crate provides the single
//! surface through which all of them run:
//!
//! * [`Estimator`] — the unified trait: a learning phase ([`Estimator::fit`])
//!   plus optional capabilities (probability estimate, per-interval
//!   inference) subsuming both `ProbabilityComputation` and
//!   `BooleanInference`;
//! * [`Pipeline`] / [`Experiment`] — the builder owning the
//!   simulate → observe → estimate → score loop
//!   (`Pipeline::on(network).scenario(cfg).intervals(t).seed(s).run(est)`);
//! * [`estimators`] — the string-keyed registry
//!   (`estimators::by_name("correlation-complete")`) so binaries and
//!   configuration select algorithms by name;
//! * [`TomoError`] — the typed error replacing panics at the API boundary;
//! * [`score`] — the figure-level metrics (per-link / per-subset absolute
//!   error, detection and false-positive rates);
//! * [`online`] — the streaming extension: [`OnlineEstimator`] adds
//!   `ingest(batch)` on top of [`Estimator`], with an incremental
//!   linear-system implementation ([`OnlineIndependence`]) and a
//!   buffer-and-refit adapter ([`BufferedOnline`]) for every registry
//!   algorithm;
//! * [`jsonl`] — the shared JSON-lines framing used by sweep reports and the
//!   `tomo-serve` wire protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod estimator;
pub mod jsonl;
pub mod online;
pub mod pipeline;
pub mod registry;
pub mod score;
pub mod session;

/// The string-keyed estimator registry, under the name binaries use:
/// `estimators::by_name("correlation-complete")`.
pub use registry as estimators;

pub use error::TomoError;
pub use estimator::{Capabilities, Estimator, InferenceEstimator, ProbEstimator};
pub use online::{BufferedOnline, OnlineCorrelation, OnlineEstimator, OnlineIndependence, Refit};
pub use pipeline::{run_batch, Experiment, Pipeline, PipelineTask, RunOutcome};
pub use registry::EstimatorOptions;
pub use session::{
    SessionAck, SessionConfig, SessionEstimate, SessionSnapshot, SessionStats, TomographySession,
};
// Drift types live in `tomo-topo`; re-exported here because `SessionConfig`
// and `SessionStats` embed them.
pub use tomo_topo::{DriftCounters, DriftEvent, DriftKind, RebuildPolicy};

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_sim::{MeasurementMode, ScenarioConfig};

    /// The whole surface in one breath: all six registry estimators run
    /// through the same pipeline on the toy topology.
    #[test]
    fn all_six_estimators_run_through_one_pipeline() {
        let experiment = Pipeline::on(tomo_graph::toy::fig1_case1())
            .scenario(ScenarioConfig::no_independence())
            .intervals(100)
            .seed(3)
            .measurement(MeasurementMode::Ideal)
            .simulate()
            .expect("valid experiment");
        for mut est in estimators::all() {
            let outcome = experiment.evaluate(est.as_mut()).expect("evaluates");
            let caps = est.capabilities();
            assert_eq!(outcome.estimate.is_some(), caps.probability);
            assert_eq!(outcome.inferred.is_some(), caps.interval_inference);
        }
    }
}
