//! The unified [`Estimator`] abstraction.
//!
//! The paper evaluates two families of algorithms over the same experiments:
//! *Probability Computation* (§5, [`tomo_prob::ProbabilityComputation`]) and
//! *Boolean Inference* (§3, [`tomo_inference::BooleanInference`]). They share
//! a learning phase over the whole observation history and differ in what
//! they can answer afterwards — a congestion-probability estimate, a
//! per-interval congested-link set, or both. [`Estimator`] models exactly
//! that: `fit` + optional capabilities, so one pipeline, one registry and one
//! experiment harness drive all six algorithms.

use tomo_graph::{LinkId, Network, PathId};
use tomo_inference::BooleanInference;
use tomo_prob::{AlgorithmAssumptions, ProbabilityComputation, ProbabilityEstimate};
use tomo_sim::PathObservations;

use crate::error::TomoError;

/// What an estimator can answer after [`Estimator::fit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capabilities {
    /// Produces a [`ProbabilityEstimate`] (congestion probabilities of links
    /// and correlation subsets).
    pub probability: bool,
    /// Infers the congested-link set of individual intervals.
    pub interval_inference: bool,
}

impl Capabilities {
    /// Probability estimate only.
    pub const PROBABILITY: Capabilities = Capabilities {
        probability: true,
        interval_inference: false,
    };
    /// Per-interval inference only.
    pub const INFERENCE: Capabilities = Capabilities {
        probability: false,
        interval_inference: true,
    };
    /// Both capabilities.
    pub const BOTH: Capabilities = Capabilities {
        probability: true,
        interval_inference: true,
    };
}

/// A congestion estimator: the single interface under which every algorithm
/// of the paper runs through the [`crate::Pipeline`].
pub trait Estimator {
    /// Short human-readable name (used in reports and figures).
    fn name(&self) -> &'static str;

    /// The assumptions / conditions / approximations the algorithm relies on
    /// (one column of Table 2 of the paper).
    fn assumptions(&self) -> AlgorithmAssumptions;

    /// What this estimator can answer after fitting.
    fn capabilities(&self) -> Capabilities;

    /// Learning phase: consume the whole observation history. Must be called
    /// before [`Estimator::estimate`] or [`Estimator::infer_interval`].
    fn fit(&mut self, network: &Network, observations: &PathObservations) -> Result<(), TomoError>;

    /// The fitted probability estimate, when the estimator supports the
    /// probability capability and `fit` has run.
    fn estimate(&self) -> Option<&ProbabilityEstimate> {
        None
    }

    /// Infers the congested links of one interval from that interval's
    /// congested paths.
    ///
    /// Errors with [`TomoError::UnsupportedCapability`] when the estimator
    /// does not implement per-interval inference.
    fn infer_interval(
        &self,
        _network: &Network,
        _congested_paths: &[PathId],
    ) -> Result<Vec<LinkId>, TomoError> {
        Err(TomoError::UnsupportedCapability {
            estimator: self.name().to_string(),
            capability: "per-interval inference",
        })
    }
}

/// Adapter presenting a [`ProbabilityComputation`] algorithm as an
/// [`Estimator`]. `fit` runs the computation and stores the estimate.
#[derive(Clone, Debug)]
pub struct ProbEstimator<A> {
    algorithm: A,
    fitted: Option<ProbabilityEstimate>,
}

impl<A: ProbabilityComputation> ProbEstimator<A> {
    /// Wraps a Probability-Computation algorithm.
    pub fn new(algorithm: A) -> Self {
        Self {
            algorithm,
            fitted: None,
        }
    }

    /// The wrapped algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }
}

impl<A: ProbabilityComputation> Estimator for ProbEstimator<A> {
    fn name(&self) -> &'static str {
        self.algorithm.name()
    }

    fn assumptions(&self) -> AlgorithmAssumptions {
        self.algorithm.assumptions()
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::PROBABILITY
    }

    fn fit(&mut self, network: &Network, observations: &PathObservations) -> Result<(), TomoError> {
        self.fitted = Some(self.algorithm.compute(network, observations));
        Ok(())
    }

    fn estimate(&self) -> Option<&ProbabilityEstimate> {
        self.fitted.as_ref()
    }
}

/// Adapter presenting a [`BooleanInference`] algorithm as an [`Estimator`].
/// `fit` runs the learning phase; the Bayesian algorithms additionally expose
/// the probability estimate their learning phase computes.
#[derive(Clone, Debug)]
pub struct InferenceEstimator<A> {
    algorithm: A,
    fitted: bool,
}

impl<A: BooleanInference> InferenceEstimator<A> {
    /// Wraps a Boolean-Inference algorithm.
    pub fn new(algorithm: A) -> Self {
        Self {
            algorithm,
            fitted: false,
        }
    }

    /// The wrapped algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }
}

impl<A: BooleanInference> Estimator for InferenceEstimator<A> {
    fn name(&self) -> &'static str {
        self.algorithm.name()
    }

    fn assumptions(&self) -> AlgorithmAssumptions {
        self.algorithm.assumptions()
    }

    fn capabilities(&self) -> Capabilities {
        if self.algorithm.computes_probabilities() {
            Capabilities::BOTH
        } else {
            Capabilities::INFERENCE
        }
    }

    fn fit(&mut self, network: &Network, observations: &PathObservations) -> Result<(), TomoError> {
        self.algorithm.learn(network, observations);
        self.fitted = true;
        Ok(())
    }

    fn estimate(&self) -> Option<&ProbabilityEstimate> {
        self.algorithm.probability_estimate()
    }

    fn infer_interval(
        &self,
        network: &Network,
        congested_paths: &[PathId],
    ) -> Result<Vec<LinkId>, TomoError> {
        if !self.fitted {
            return Err(TomoError::NotFitted {
                estimator: self.name().to_string(),
            });
        }
        Ok(self.algorithm.infer_interval(network, congested_paths))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::toy;
    use tomo_inference::{BayesianIndependence, Sparsity};
    use tomo_prob::CorrelationComplete;

    fn toy_observations() -> PathObservations {
        let mut obs = PathObservations::new(3, 60);
        for t in 0..60 {
            obs.set_congested(PathId(0), t, t % 3 == 0);
            obs.set_congested(PathId(1), t, t % 4 == 0);
        }
        obs
    }

    #[test]
    fn prob_estimator_fits_and_reports() {
        let net = toy::fig1_case1();
        let obs = toy_observations();
        let mut est = ProbEstimator::new(CorrelationComplete::default());
        assert!(est.estimate().is_none());
        assert_eq!(est.capabilities(), Capabilities::PROBABILITY);
        est.fit(&net, &obs).unwrap();
        let e = est.estimate().expect("fitted");
        assert_eq!(e.num_links(), net.num_links());
        // No inference capability.
        let err = est.infer_interval(&net, &[PathId(0)]).unwrap_err();
        assert!(matches!(err, TomoError::UnsupportedCapability { .. }));
    }

    #[test]
    fn inference_estimator_requires_fit() {
        let net = toy::fig1_case1();
        let mut est = InferenceEstimator::new(Sparsity::new());
        let err = est.infer_interval(&net, &[PathId(0)]).unwrap_err();
        assert!(matches!(err, TomoError::NotFitted { .. }));
        est.fit(&net, &toy_observations()).unwrap();
        let links = est.infer_interval(&net, &[PathId(0)]).unwrap();
        assert!(!links.is_empty());
        // Sparsity learns nothing, so no probability estimate.
        assert!(est.estimate().is_none());
    }

    #[test]
    fn bayesian_estimators_expose_their_learned_probabilities() {
        let net = toy::fig1_case1();
        let obs = toy_observations();
        let mut est = InferenceEstimator::new(BayesianIndependence::new());
        est.fit(&net, &obs).unwrap();
        assert!(est.estimate().is_some());
        assert!(est.capabilities().interval_inference);
    }
}
