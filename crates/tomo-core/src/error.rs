//! The typed error of the unified estimation API.
//!
//! Every fallible entry point of the pipeline layer returns [`TomoError`]
//! instead of panicking, so binaries, services and tests can react to bad
//! configuration, unknown estimator names or capability mismatches without
//! unwinding.

use std::fmt;

use tomo_graph::GraphError;

/// Errors produced by the unified estimation API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TomoError {
    /// `estimators::by_name` was given a name no estimator registers.
    UnknownEstimator {
        /// The unresolved name.
        name: String,
    },
    /// An estimator was asked for a capability it does not implement (e.g.
    /// per-interval inference from a pure Probability-Computation
    /// algorithm).
    UnsupportedCapability {
        /// The estimator's name.
        estimator: String,
        /// The missing capability.
        capability: &'static str,
    },
    /// An estimator was queried before [`crate::Estimator::fit`] ran.
    NotFitted {
        /// The estimator's name.
        estimator: String,
    },
    /// Network construction or validation failed.
    Graph(GraphError),
    /// A pipeline or experiment configuration is invalid.
    InvalidConfig(String),
    /// A batch/sweep task panicked while running on a worker thread. The
    /// panic is caught at the task boundary so one bad task cannot poison a
    /// whole pool of workers.
    TaskPanic {
        /// Index of the task that panicked.
        task: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// JSON (de)serialization failed — a malformed wire message, snapshot or
    /// report line.
    Serde(String),
    /// An I/O operation (socket, snapshot file, report file) failed.
    Io(String),
}

impl fmt::Display for TomoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TomoError::UnknownEstimator { name } => {
                write!(
                    f,
                    "unknown estimator `{name}` (available: {})",
                    crate::registry::names().join(", ")
                )
            }
            TomoError::UnsupportedCapability {
                estimator,
                capability,
            } => {
                write!(f, "estimator `{estimator}` does not support {capability}")
            }
            TomoError::NotFitted { estimator } => {
                write!(f, "estimator `{estimator}` was used before `fit`")
            }
            TomoError::Graph(e) => write!(f, "network error: {e}"),
            TomoError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TomoError::TaskPanic { task, message } => {
                write!(f, "task {task} panicked: {message}")
            }
            TomoError::Serde(msg) => write!(f, "serialization error: {msg}"),
            TomoError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for TomoError {}

impl From<GraphError> for TomoError {
    fn from(e: GraphError) -> Self {
        TomoError::Graph(e)
    }
}

impl From<std::io::Error> for TomoError {
    fn from(e: std::io::Error) -> Self {
        TomoError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_available_estimators() {
        let e = TomoError::UnknownEstimator {
            name: "nope".into(),
        };
        let text = e.to_string();
        assert!(text.contains("nope"));
        assert!(text.contains("correlation-complete"));
    }

    #[test]
    fn graph_errors_convert() {
        let e: TomoError = GraphError::EmptyNetwork.into();
        assert!(matches!(e, TomoError::Graph(GraphError::EmptyNetwork)));
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "refused");
        let e: TomoError = io.into();
        assert!(matches!(e, TomoError::Io(_)));
        assert!(e.to_string().contains("refused"));
        assert!(TomoError::Serde("bad".into()).to_string().contains("bad"));
    }
}
