//! The [`Pipeline`] builder and [`Experiment`] runner.
//!
//! A [`Pipeline`] describes one experiment — a network, a congestion
//! scenario, a measurement setup and a seed — and owns the
//! simulate → observe → estimate → score loop the paper's evaluation
//! repeats for every figure:
//!
//! ```
//! use tomo_core::{estimators, Pipeline};
//! use tomo_sim::ScenarioConfig;
//!
//! let network = tomo_graph::toy::fig1_case1();
//! let mut algorithm = estimators::by_name("correlation-complete")?;
//! let outcome = Pipeline::on(network)
//!     .scenario(ScenarioConfig::random_congestion())
//!     .intervals(120)
//!     .seed(7)
//!     .run(algorithm.as_mut())?;
//! let estimate = outcome.estimate.expect("probability capability");
//! assert!(estimate.num_links() > 0);
//! # Ok::<(), tomo_core::TomoError>(())
//! ```
//!
//! To evaluate several estimators on the *same* simulated data (as every
//! figure does), split the run: [`Pipeline::simulate`] produces an
//! [`Experiment`], and [`Experiment::evaluate`] scores each estimator
//! against it.
//!
//! For batch and sweep execution, [`Pipeline::into_task`] defers the run
//! into a self-contained, `Send` [`PipelineTask`] that can be shipped to a
//! worker thread and executed there (see the `tomo-sweep` crate).

use tomo_graph::{LinkId, Network};
use tomo_metrics::{AbsoluteErrorStats, InferenceScore};
use tomo_prob::ProbabilityEstimate;
use tomo_sim::{
    LossModel, MeasurementMode, PathObservations, ScenarioConfig, SimulationConfig,
    SimulationOutput, Simulator,
};

use crate::error::TomoError;
use crate::estimator::Estimator;
use crate::score;

/// Builder for one experiment over a network.
#[derive(Clone, Debug)]
pub struct Pipeline {
    network: Network,
    scenario: ScenarioConfig,
    num_intervals: usize,
    seed: u64,
    loss: LossModel,
    measurement: MeasurementMode,
}

impl Pipeline {
    /// Starts a pipeline over the given network, with the paper's *Random
    /// Congestion* scenario, 300 intervals, seed 0 and the default loss /
    /// measurement models.
    pub fn on(network: Network) -> Self {
        Self {
            network,
            scenario: ScenarioConfig::random_congestion(),
            num_intervals: 300,
            seed: 0,
            loss: LossModel::default(),
            measurement: MeasurementMode::default(),
        }
    }

    /// Sets the congestion scenario.
    pub fn scenario(mut self, scenario: ScenarioConfig) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the number of measurement intervals `T`.
    pub fn intervals(mut self, num_intervals: usize) -> Self {
        self.num_intervals = num_intervals;
        self
    }

    /// Sets the simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the link-level loss model.
    pub fn loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the measurement mode (ideal monitoring or packet probing).
    pub fn measurement(mut self, measurement: MeasurementMode) -> Self {
        self.measurement = measurement;
        self
    }

    /// The network under measurement.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Runs the simulation, producing an [`Experiment`] ready to evaluate
    /// estimators on.
    pub fn simulate(self) -> Result<Experiment, TomoError> {
        if self.num_intervals == 0 {
            return Err(TomoError::InvalidConfig(
                "an experiment needs at least one measurement interval".into(),
            ));
        }
        if let MeasurementMode::PacketProbes {
            packets_per_interval,
        } = self.measurement
        {
            if packets_per_interval == 0 {
                return Err(TomoError::InvalidConfig(
                    "packet probing needs at least one probe per interval".into(),
                ));
            }
        }
        let config = SimulationConfig {
            num_intervals: self.num_intervals,
            scenario: self.scenario,
            loss: self.loss,
            measurement: self.measurement,
            seed: self.seed,
        };
        let output = Simulator::new(config).run(&self.network);
        Ok(Experiment {
            network: self.network,
            output,
        })
    }

    /// Simulates and evaluates a single estimator: the one-call form of the
    /// simulate → observe → estimate → score loop.
    pub fn run(self, estimator: &mut dyn Estimator) -> Result<RunOutcome, TomoError> {
        self.simulate()?.evaluate(estimator)
    }

    /// Defers this pipeline into a self-contained [`PipelineTask`] that
    /// constructs the named registry estimator when executed. The task owns
    /// all of its inputs and is `Send`, so batch runners (see the
    /// `tomo-sweep` crate) can fan tasks across worker threads.
    pub fn into_task(self, estimator: impl Into<String>) -> PipelineTask {
        PipelineTask {
            pipeline: self,
            estimator: estimator.into(),
            options: crate::registry::EstimatorOptions::default(),
        }
    }
}

/// A deferred pipeline run: a [`Pipeline`] plus the registry name (and
/// options) of the estimator to evaluate on it. Unlike
/// [`Pipeline::run`], which borrows a live estimator, a task carries only
/// owned data — it can be queued, cloned, serialized into a work list, and
/// executed on any thread.
#[derive(Clone, Debug)]
pub struct PipelineTask {
    pipeline: Pipeline,
    estimator: String,
    options: crate::registry::EstimatorOptions,
}

impl PipelineTask {
    /// Overrides the estimator construction options (the §4 resource knobs).
    pub fn with_options(mut self, options: crate::registry::EstimatorOptions) -> Self {
        self.options = options;
        self
    }

    /// The registry name of the estimator this task will run.
    pub fn estimator(&self) -> &str {
        &self.estimator
    }

    /// The pipeline this task will execute.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Executes the task: resolves the estimator from the registry, runs the
    /// simulate → observe → estimate → score loop, and returns the outcome.
    pub fn run(&self) -> Result<RunOutcome, TomoError> {
        let mut estimator = crate::registry::with_options(&self.estimator, &self.options)?;
        self.pipeline.clone().run(estimator.as_mut())
    }
}

/// Runs a batch of tasks sequentially, collecting every outcome. The
/// parallel counterpart lives in the `tomo-sweep` crate; this entry point is
/// for callers that want batch semantics (uniform error collection, outcome
/// order matching task order) without threads.
pub fn run_batch(tasks: &[PipelineTask]) -> Vec<Result<RunOutcome, TomoError>> {
    tasks.iter().map(PipelineTask::run).collect()
}

/// A simulated experiment: the network, what the monitor observed, and the
/// ground truth. Evaluate any number of estimators against it.
#[derive(Clone, Debug)]
pub struct Experiment {
    network: Network,
    output: SimulationOutput,
}

impl Experiment {
    /// Wraps an externally produced simulation (e.g. replayed traces).
    pub fn from_parts(network: Network, output: SimulationOutput) -> Self {
        Self { network, output }
    }

    /// The network under measurement.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The full simulation output (observations + ground truth).
    pub fn output(&self) -> &SimulationOutput {
        &self.output
    }

    /// The per-interval path observations the estimators consume.
    pub fn observations(&self) -> &PathObservations {
        &self.output.observations
    }

    /// Streams the observations through a [`TomographySession`] in chunks of
    /// `chunk` intervals (as a daemon tenant would receive them) and scores
    /// the *final* estimate exactly like [`Experiment::evaluate`]. This is
    /// the sweep engine's streaming mode: it exercises the incremental
    /// ingest paths instead of one batch fit.
    pub fn evaluate_streaming(
        &self,
        session: &mut crate::session::TomographySession,
        chunk: usize,
    ) -> Result<RunOutcome, TomoError> {
        self.evaluate_streaming_with_reactions(session, chunk, None)
            .map(|(outcome, _)| outcome)
    }

    /// Like [`Experiment::evaluate_streaming`], but additionally samples the
    /// session's estimate after every chunk and scores how it *reacted* to
    /// the fault events the simulation injected: per-fault detection
    /// latency, time-to-reconverge into the configured band, and the
    /// mid-fault error integral (see [`tomo_metrics::reaction`]).
    ///
    /// The report is `None` when no reaction scoring applies: `reaction` not
    /// requested, an estimator without the probability capability, or a run
    /// that injected no faults.
    pub fn evaluate_streaming_with_reactions(
        &self,
        session: &mut crate::session::TomographySession,
        chunk: usize,
        reaction: Option<tomo_metrics::ReactionConfig>,
    ) -> Result<(RunOutcome, Option<tomo_metrics::ReactionReport>), TomoError> {
        if chunk == 0 {
            return Err(TomoError::InvalidConfig(
                "streaming chunk must be at least one interval".into(),
            ));
        }
        if session.network().num_paths() != self.output.observations.num_paths() {
            return Err(TomoError::InvalidConfig(format!(
                "session monitors {} paths but the experiment observed {}",
                session.network().num_paths(),
                self.output.observations.num_paths()
            )));
        }
        let sample_reactions = reaction.is_some()
            && session.estimator().capabilities().probability
            && !self.output.fault_events.is_empty();
        let mut samples: Vec<tomo_metrics::EstimateSample> = Vec::new();
        let observations = &self.output.observations;
        let mut t = 0;
        while t < observations.num_intervals() {
            let len = chunk.min(observations.num_intervals() - t);
            let intervals: Vec<Vec<usize>> = (t..t + len)
                .map(|ti| {
                    observations
                        .congested_paths(ti)
                        .into_iter()
                        .map(|p| p.index())
                        .collect()
                })
                .collect();
            session.observe(&intervals)?;
            t += len;
            if sample_reactions {
                let estimate = session.query()?;
                samples.push(tomo_metrics::EstimateSample {
                    intervals: t,
                    probabilities: estimate.probabilities,
                });
            }
        }

        let report = if sample_reactions {
            let truth: Vec<(usize, &[f64])> = self
                .output
                .ground_truth
                .epoch_marginals()
                .iter()
                .map(|e| (e.start, e.marginals.as_slice()))
                .collect();
            Some(tomo_metrics::score_reactions(
                &self.output.fault_events,
                &samples,
                &truth,
                reaction.unwrap_or_default(),
            ))
        } else {
            None
        };
        let outcome = self.score_streamed_session(session)?;
        Ok((outcome, report))
    }

    fn score_streamed_session(
        &self,
        session: &mut crate::session::TomographySession,
    ) -> Result<RunOutcome, TomoError> {
        let observations = &self.output.observations;

        let capabilities = session.estimator().capabilities();
        let (estimate, link_errors) =
            if capabilities.probability {
                let estimate = session.estimator().estimate().cloned().ok_or_else(|| {
                    TomoError::NotFitted {
                        estimator: session.estimator().name().to_string(),
                    }
                })?;
                let errors = score::link_error_stats(&self.network, &self.output, &estimate);
                (Some(estimate), Some(errors))
            } else {
                (None, None)
            };
        let (inferred, inference_score) = if capabilities.interval_inference {
            let per_interval: Vec<Vec<LinkId>> = (0..observations.num_intervals())
                .map(|ti| {
                    session
                        .estimator()
                        .infer_interval(&self.network, &observations.congested_paths(ti))
                })
                .collect::<Result<_, _>>()?;
            let score = score::inference_score(&self.output, &per_interval);
            (Some(per_interval), Some(score))
        } else {
            (None, None)
        };
        Ok(RunOutcome {
            estimator: session.estimator().name().to_string(),
            estimate,
            link_errors,
            inferred,
            inference_score,
        })
    }

    /// Fits one estimator on the observations and scores every capability it
    /// offers against the ground truth.
    pub fn evaluate(&self, estimator: &mut dyn Estimator) -> Result<RunOutcome, TomoError> {
        estimator.fit(&self.network, &self.output.observations)?;
        let capabilities = estimator.capabilities();

        let (estimate, link_errors) = if capabilities.probability {
            let estimate = estimator
                .estimate()
                .cloned()
                .ok_or_else(|| TomoError::NotFitted {
                    estimator: estimator.name().to_string(),
                })?;
            let errors = score::link_error_stats(&self.network, &self.output, &estimate);
            (Some(estimate), Some(errors))
        } else {
            (None, None)
        };

        let (inferred, inference_score) = if capabilities.interval_inference {
            let per_interval: Vec<Vec<LinkId>> = (0..self.output.observations.num_intervals())
                .map(|t| {
                    estimator
                        .infer_interval(&self.network, &self.output.observations.congested_paths(t))
                })
                .collect::<Result<_, _>>()?;
            let score = score::inference_score(&self.output, &per_interval);
            (Some(per_interval), Some(score))
        } else {
            (None, None)
        };

        Ok(RunOutcome {
            estimator: estimator.name().to_string(),
            estimate,
            link_errors,
            inferred,
            inference_score,
        })
    }
}

/// Everything one estimator produced on one experiment.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The estimator's name.
    pub estimator: String,
    /// The probability estimate (estimators with the probability
    /// capability).
    pub estimate: Option<ProbabilityEstimate>,
    /// Absolute error of the per-link probabilities against the ground-truth
    /// frequencies, over the potentially congested links.
    pub link_errors: Option<AbsoluteErrorStats>,
    /// Per-interval inferred congested-link sets (estimators with the
    /// inference capability).
    pub inferred: Option<Vec<Vec<LinkId>>>,
    /// Detection / false-positive rates of the per-interval inference.
    pub inference_score: Option<InferenceScore>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use tomo_graph::toy;

    fn toy_pipeline() -> Pipeline {
        Pipeline::on(toy::fig1_case1())
            .scenario(ScenarioConfig::no_independence())
            .intervals(150)
            .seed(11)
            .measurement(MeasurementMode::Ideal)
    }

    #[test]
    fn zero_intervals_is_a_config_error() {
        let err = Pipeline::on(toy::fig1_case1())
            .intervals(0)
            .simulate()
            .unwrap_err();
        assert!(matches!(err, TomoError::InvalidConfig(_)));
        let err = Pipeline::on(toy::fig1_case1())
            .measurement(MeasurementMode::PacketProbes {
                packets_per_interval: 0,
            })
            .simulate()
            .unwrap_err();
        assert!(matches!(err, TomoError::InvalidConfig(_)));
    }

    #[test]
    fn probability_estimators_produce_estimates_and_errors() {
        let experiment = toy_pipeline().simulate().unwrap();
        let mut est = registry::by_name("correlation-complete").unwrap();
        let outcome = experiment.evaluate(est.as_mut()).unwrap();
        let estimate = outcome.estimate.expect("probability capability");
        assert_eq!(estimate.num_links(), experiment.network().num_links());
        assert!(outcome.link_errors.is_some());
        assert!(outcome.inferred.is_none());
        assert!(outcome.inference_score.is_none());
    }

    #[test]
    fn inference_estimators_produce_per_interval_explanations() {
        let experiment = toy_pipeline().simulate().unwrap();
        let mut est = registry::by_name("sparsity").unwrap();
        let outcome = experiment.evaluate(est.as_mut()).unwrap();
        assert!(outcome.estimate.is_none());
        let inferred = outcome.inferred.expect("inference capability");
        assert_eq!(inferred.len(), 150);
        let score = outcome.inference_score.expect("scored");
        assert_eq!(score.num_intervals(), 150);
    }

    #[test]
    fn bayesian_estimators_produce_both() {
        let experiment = toy_pipeline().simulate().unwrap();
        let mut est = registry::by_name("bayesian-correlation").unwrap();
        let outcome = experiment.evaluate(est.as_mut()).unwrap();
        assert!(outcome.estimate.is_some());
        assert!(outcome.inferred.is_some());
    }

    #[test]
    fn tasks_are_send_and_match_direct_runs() {
        fn assert_send<T: Send>() {}
        assert_send::<PipelineTask>();

        let task = toy_pipeline().into_task("independence");
        assert_eq!(task.estimator(), "independence");
        let from_task = task.run().unwrap();
        let mut est = registry::by_name("independence").unwrap();
        let direct = toy_pipeline().run(est.as_mut()).unwrap();
        let (ea, eb) = (from_task.estimate.unwrap(), direct.estimate.unwrap());
        for l in toy::fig1_case1().link_ids() {
            assert_eq!(
                ea.link_congestion_probability(l),
                eb.link_congestion_probability(l)
            );
        }
    }

    #[test]
    fn run_batch_preserves_order_and_collects_errors() {
        let tasks = vec![
            toy_pipeline().into_task("sparsity"),
            toy_pipeline().into_task("no-such-estimator"),
            toy_pipeline().into_task("correlation-complete"),
        ];
        let outcomes = run_batch(&tasks);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].as_ref().unwrap().estimator, "Sparsity");
        assert!(matches!(
            outcomes[1],
            Err(TomoError::UnknownEstimator { .. })
        ));
        assert_eq!(
            outcomes[2].as_ref().unwrap().estimator,
            "Correlation-complete"
        );
    }

    #[test]
    fn streaming_reactions_are_scored_for_chaos_runs() {
        let net = toy::fig1_case1();
        let mut scenario = ScenarioConfig::flapping_links();
        scenario.congestible_fraction = 1.0;
        let experiment = Pipeline::on(net.clone())
            .scenario(scenario)
            .intervals(400)
            .seed(9)
            .measurement(MeasurementMode::Ideal)
            .simulate()
            .unwrap();
        let faults = &experiment.output().fault_events;
        assert!(!faults.is_empty(), "flapping must inject faults");

        let mut session =
            crate::session::TomographySession::new(net, crate::session::SessionConfig::default())
                .unwrap();
        let (outcome, report) = experiment
            .evaluate_streaming_with_reactions(
                &mut session,
                10,
                Some(tomo_metrics::ReactionConfig::default()),
            )
            .unwrap();
        assert!(outcome.estimate.is_some());
        let report = report.expect("probability estimator on a chaos run");
        let scoreable = faults.iter().filter(|f| f.interval > 0).count();
        assert_eq!(report.num_faults(), scoreable);
        assert!(report.total_mid_fault_error() > 0.0);
    }

    #[test]
    fn reaction_report_is_absent_without_faults_or_probabilities() {
        // Stationary run: no faults, so no report even when requested.
        let experiment = toy_pipeline().simulate().unwrap();
        let mut session = crate::session::TomographySession::new(
            toy::fig1_case1(),
            crate::session::SessionConfig::default(),
        )
        .unwrap();
        let (_, report) = experiment
            .evaluate_streaming_with_reactions(
                &mut session,
                10,
                Some(tomo_metrics::ReactionConfig::default()),
            )
            .unwrap();
        assert!(report.is_none());
    }

    /// The chaos acceptance criterion: an estimator with exponential decay
    /// reacts to injected faults measurably faster than the same estimator
    /// with equal weights, because old pre-fault evidence stops outvoting
    /// the post-fault regime.
    #[test]
    fn decay_reconverges_faster_than_equal_weights_under_chaos() {
        let net = toy::fig1_case1();
        let mut scenario = ScenarioConfig::flapping_links();
        scenario.congestible_fraction = 1.0;
        let experiment = Pipeline::on(net.clone())
            .scenario(scenario)
            .intervals(600)
            .seed(21)
            .measurement(MeasurementMode::Ideal)
            .simulate()
            .unwrap();

        let run = |decay: Option<f64>| {
            let config = crate::session::SessionConfig {
                decay,
                ..Default::default()
            };
            let mut session = crate::session::TomographySession::new(net.clone(), config).unwrap();
            experiment
                .evaluate_streaming_with_reactions(
                    &mut session,
                    5,
                    Some(tomo_metrics::ReactionConfig::default()),
                )
                .unwrap()
                .1
                .expect("reaction report")
        };
        let plain = run(None);
        let decayed = run(Some(0.9));

        assert!(
            decayed.total_mid_fault_error() < plain.total_mid_fault_error(),
            "decay must shrink the mid-fault error integral: {} vs {}",
            decayed.total_mid_fault_error(),
            plain.total_mid_fault_error()
        );
        assert!(
            decayed.num_reconverged() >= plain.num_reconverged(),
            "decay must reconverge from at least as many faults"
        );
        let (d, p) = (
            decayed.mean_reconverge_latency(),
            plain.mean_reconverge_latency(),
        );
        if let (Some(d), Some(p)) = (d, p) {
            assert!(d <= p, "decay reconverge latency {d} vs equal-weight {p}");
        }
    }

    #[test]
    fn one_call_run_matches_split_form() {
        let mut a = registry::by_name("independence").unwrap();
        let mut b = registry::by_name("independence").unwrap();
        let one = toy_pipeline().run(a.as_mut()).unwrap();
        let split = toy_pipeline()
            .simulate()
            .unwrap()
            .evaluate(b.as_mut())
            .unwrap();
        let (ea, eb) = (one.estimate.unwrap(), split.estimate.unwrap());
        for l in toy::fig1_case1().link_ids() {
            assert_eq!(
                ea.link_congestion_probability(l),
                eb.link_congestion_probability(l)
            );
        }
    }
}
