//! Benchmarks of the online (streaming) estimation path: steady-state
//! incremental ingest vs. the full batch refit a naive daemon would run per
//! observation batch, plus the structural-rebuild cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tomo_core::online::{OnlineEstimator, OnlineIndependence};
use tomo_graph::Network;
use tomo_prob::{Independence, ProbabilityComputation};
use tomo_sim::{MeasurementMode, PathObservations, ScenarioConfig, SimulationConfig, Simulator};
use tomo_topology::{BriteConfig, BriteGenerator};

const WARMUP_INTERVALS: usize = 400;
const BATCH_INTERVALS: usize = 10;

/// A BRITE-style instance with enough paths for the equation system to have
/// real size (~60 paths, ~hundreds of links).
fn network() -> Network {
    BriteGenerator::new(BriteConfig::tiny(7))
        .generate()
        .expect("tiny instance generates")
}

/// Simulates a drifting-loss stream and splits off the trailing batch.
fn simulate(network: &Network) -> (PathObservations, PathObservations) {
    let config = SimulationConfig {
        num_intervals: WARMUP_INTERVALS + BATCH_INTERVALS,
        scenario: ScenarioConfig::drifting_loss(),
        loss: tomo_sim::LossModel::default(),
        measurement: MeasurementMode::Ideal,
        seed: 3,
    };
    let output = Simulator::new(config).run(network);
    let all = &output.observations;
    let mut warmup = PathObservations::new(all.num_paths(), WARMUP_INTERVALS);
    let mut batch = PathObservations::new(all.num_paths(), BATCH_INTERVALS);
    for t in 0..WARMUP_INTERVALS {
        for p in 0..all.num_paths() {
            let id = tomo_graph::PathId(p);
            warmup.set_congested(id, t, all.is_congested(id, t));
        }
    }
    for t in 0..BATCH_INTERVALS {
        for p in 0..all.num_paths() {
            let id = tomo_graph::PathId(p);
            batch.set_congested(id, t, all.is_congested(id, t + WARMUP_INTERVALS));
        }
    }
    (warmup, batch)
}

fn bench_online(c: &mut Criterion) {
    let network = network();
    let (warmup, batch) = simulate(&network);

    let mut warmed = OnlineIndependence::default();
    warmed
        .ingest(&network, &warmup)
        .expect("warmup ingest succeeds");

    let mut group = c.benchmark_group("online");
    group.sample_size(20);

    // Steady state: the pc set is stable after warmup, so every further
    // batch rides the cached-solver path. This is the daemon's hot loop.
    group.bench_function("incremental_ingest_10", |b| {
        let mut online = warmed.clone();
        b.iter(|| {
            online
                .ingest(&network, &batch)
                .expect("steady-state ingest")
        })
    });

    // What a daemon without the online path would do per batch: re-fit the
    // batch estimator on the whole accumulated window.
    let full_window = {
        let mut online = warmed.clone();
        online.ingest(&network, &batch).expect("ingest");
        online.window().expect("warmed window").to_observations()
    };
    group.bench_function("full_batch_refit", |b| {
        let algorithm = Independence::default();
        b.iter(|| algorithm.compute(&network, &full_window))
    });

    // Structural rebuild: fit from scratch through the online path (one
    // Full refit folding every equation through Algorithm 2).
    group.bench_function("structural_rebuild", |b| {
        b.iter(|| {
            let mut online = OnlineIndependence::default();
            online.ingest(&network, &warmup).expect("rebuild ingest")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
