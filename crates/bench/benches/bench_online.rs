//! Benchmarks of the online (streaming) estimation path, driven through
//! the serving surface (`TomographySession` — the handle every daemon
//! tenant ingests through): steady-state incremental ingest vs. the full
//! batch refit a naive daemon would run per observation batch, plus the
//! structural-rebuild cost. Bench names are stable across the session-API
//! redesign so the committed baselines keep gating regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use tomo_core::{SessionConfig, TomographySession};
use tomo_graph::Network;
use tomo_prob::{Independence, ProbabilityComputation};
use tomo_sim::{MeasurementMode, PathObservations, ScenarioConfig, SimulationConfig, Simulator};
use tomo_topology::{BriteConfig, BriteGenerator};

const WARMUP_INTERVALS: usize = 400;
const BATCH_INTERVALS: usize = 10;

/// A BRITE-style instance with enough paths for the equation system to have
/// real size (~60 paths, ~hundreds of links).
fn network() -> Network {
    BriteGenerator::new(BriteConfig::tiny(7))
        .generate()
        .expect("tiny instance generates")
}

/// Simulates a drifting-loss stream, returning (warmup, trailing batch) in
/// the sparse congested-path form the serving surface ingests.
fn simulate(network: &Network) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let config = SimulationConfig {
        num_intervals: WARMUP_INTERVALS + BATCH_INTERVALS,
        scenario: ScenarioConfig::drifting_loss(),
        loss: tomo_sim::LossModel::default(),
        measurement: MeasurementMode::Ideal,
        seed: 3,
    };
    let output = Simulator::new(config).run(network);
    let all: Vec<Vec<usize>> = (0..output.observations.num_intervals())
        .map(|t| {
            output
                .observations
                .congested_paths(t)
                .into_iter()
                .map(|p| p.index())
                .collect()
        })
        .collect();
    let batch = all[WARMUP_INTERVALS..].to_vec();
    let mut warmup = all;
    warmup.truncate(WARMUP_INTERVALS);
    (warmup, batch)
}

fn session(network: &Network) -> TomographySession {
    TomographySession::new(network.clone(), SessionConfig::default()).expect("independence session")
}

fn bench_online(c: &mut Criterion) {
    let network = network();
    let (warmup, batch) = simulate(&network);

    let mut warmed = session(&network);
    warmed.observe(&warmup).expect("warmup ingest succeeds");

    let mut group = c.benchmark_group("online");
    group.sample_size(20);

    // Steady state: the pc set is stable after warmup, so every further
    // batch rides the cached-solver path. This is the daemon's hot loop,
    // including the sparse-to-dense conversion the wire form pays.
    group.bench_function("incremental_ingest_10", |b| {
        // Sessions own their estimator; rebuild one per bench run by
        // replaying the warmup (cheap relative to the measured loop).
        let mut online = session(&network);
        online.observe(&warmup).expect("warmup");
        b.iter(|| online.observe(&batch).expect("steady-state ingest"))
    });

    // What a daemon without the online path would do per batch: re-fit the
    // batch estimator on the whole accumulated window.
    let full_window = {
        let mut online = session(&network);
        online.observe(&warmup).expect("warmup");
        online.observe(&batch).expect("ingest");
        let mut obs = PathObservations::new(network.num_paths(), warmup.len() + batch.len());
        for (t, congested) in warmup.iter().chain(batch.iter()).enumerate() {
            for &p in congested {
                obs.set_congested(tomo_graph::PathId(p), t, true);
            }
        }
        obs
    };
    group.bench_function("full_batch_refit", |b| {
        let algorithm = Independence::default();
        b.iter(|| algorithm.compute(&network, &full_window))
    });

    // Structural rebuild: fit from scratch through the online path (one
    // Full refit folding every equation through Algorithm 2).
    group.bench_function("structural_rebuild", |b| {
        b.iter(|| {
            let mut online = session(&network);
            online.observe(&warmup).expect("rebuild ingest")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
