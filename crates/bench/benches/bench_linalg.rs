//! Micro-benchmarks of the linear-algebra substrate at sizes representative
//! of the tomography systems (hundreds of unknowns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tomo_linalg::{
    least_squares, nullspace, nullspace_update, sparse_least_squares, LstsqOptions, Matrix,
    SparseMatrix, Vector,
};
use tomo_prob::{Independence, IndependenceConfig, ProbabilityComputation};
use tomo_sim::{LossModel, MeasurementMode, ScenarioConfig, SimulationConfig, Simulator};
use tomo_topology::{BriteConfig, BriteGenerator};

/// A random sparse binary matrix like the path-set / subset incidence
/// matrices (about 4 non-zeros per row).
fn binary_system(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen_bool((4.0 / cols as f64).min(1.0)) {
            1.0
        } else {
            0.0
        }
    })
}

fn bench_nullspace(c: &mut Criterion) {
    let mut group = c.benchmark_group("nullspace");
    group.sample_size(10);
    for &n in &[100usize, 200, 400] {
        let m = binary_system(n / 2, n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| nullspace(m))
        });
    }
    group.finish();
}

fn bench_nullspace_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("nullspace_update_alg2");
    group.sample_size(20);
    for &n in &[200usize, 400, 800] {
        let m = binary_system(n / 4, n, 2);
        let basis = nullspace(&m);
        let mut rng = StdRng::seed_from_u64(3);
        let row: Vec<f64> = (0..n)
            .map(|_| if rng.gen_bool(0.02) { 1.0 } else { 0.0 })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| nullspace_update(&basis, &row))
        });
    }
    group.finish();
}

fn bench_least_squares(c: &mut Criterion) {
    let mut group = c.benchmark_group("least_squares");
    group.sample_size(10);
    for &n in &[100usize, 200, 400] {
        let a = binary_system(n + n / 2, n, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let b_vec = Vector::from_iter((0..a.rows()).map(|_| -rng.gen_range(0.0f64..2.0)));
        let opts = LstsqOptions::without_identifiability();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| least_squares(&a, &b_vec, &opts))
        });
    }
    group.finish();
}

fn bench_sparse_least_squares(c: &mut Criterion) {
    // The same systems as `least_squares/{100,200,400}`, solved through the
    // CSR + conjugate-gradient fast path that `should_use_sparse` dispatches
    // to at these shapes — the speedup over the dense group above is the
    // contract the sparse representation exists for.
    let mut group = c.benchmark_group("sparse_least_squares");
    group.sample_size(10);
    for &n in &[100usize, 200, 400] {
        let a = binary_system(n + n / 2, n, 4);
        let csr = SparseMatrix::from_dense(&a);
        let mut rng = StdRng::seed_from_u64(5);
        let b_vec = Vector::from_iter((0..a.rows()).map(|_| -rng.gen_range(0.0f64..2.0)));
        let opts = LstsqOptions::without_identifiability();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| sparse_least_squares(&csr, &b_vec, &opts))
        });
    }
    group.finish();
}

fn bench_brite_large_fit(c: &mut Criterion) {
    // End-to-end acceptance bench: an Independence fit over the ≥5k-link
    // sweep topology must stay interactive (< 1 s) in release. This is the
    // workload the sparse path exists for — the dense solver's O(n³) on
    // ~5.5k unknowns is minutes.
    let network = BriteGenerator::new(BriteConfig::large(1))
        .generate()
        .expect("large Brite generation");
    let config = SimulationConfig {
        num_intervals: 60,
        scenario: ScenarioConfig::no_independence(),
        loss: LossModel::default(),
        measurement: MeasurementMode::Ideal,
        seed: 11,
    };
    let output = Simulator::new(config).run(&network);
    let algo = Independence::new(IndependenceConfig {
        compute_identifiability: false,
        ..IndependenceConfig::default()
    });
    let mut group = c.benchmark_group("brite_large_fit");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("independence_{}links", network.num_links())),
        &network,
        |b, net| b.iter(|| algo.compute(net, &output.observations)),
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_nullspace,
    bench_nullspace_update,
    bench_least_squares,
    bench_sparse_least_squares,
    bench_brite_large_fit
);
criterion_main!(benches);
