//! Benchmarks of Algorithm 1 (path-set selection) — experiment E9: the §5.3
//! complexity claim `O(n1^3 + n1^2 · 2^{n2} · n3)`. The parameter swept here
//! is the topology size, which drives `n1` (number of potentially congested
//! correlation subsets) and `n3` (nullity of the seed system).

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tomo_graph::LinkId;
use tomo_prob::{
    path_selection::select_path_sets_reference, potentially_congested_subsets, select_path_sets,
    subsets::potentially_congested_links, PathSelectionConfig,
};
use tomo_sim::{LossModel, MeasurementMode, ScenarioConfig, SimulationConfig, Simulator};
use tomo_topology::{BriteConfig, BriteGenerator, SparseConfig, SparseGenerator};

fn prepare(
    network: &tomo_graph::Network,
    seed: u64,
) -> (
    tomo_sim::PathObservations,
    Vec<tomo_graph::CorrelationSubset>,
    BTreeSet<LinkId>,
) {
    let config = SimulationConfig {
        num_intervals: 120,
        scenario: ScenarioConfig::no_independence(),
        loss: LossModel::default(),
        measurement: MeasurementMode::Ideal,
        seed,
    };
    let output = Simulator::new(config).run(network);
    let targets = potentially_congested_subsets(network, &output.observations, 2);
    let pc: BTreeSet<LinkId> = potentially_congested_links(network, &output.observations)
        .into_iter()
        .collect();
    (output.observations, targets, pc)
}

fn bench_selection_brite(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_path_selection_brite");
    group.sample_size(10);
    for &ases in &[8usize, 16, 24] {
        let mut cfg = BriteConfig::tiny(1);
        cfg.num_ases = ases;
        cfg.routers_per_as = 6;
        cfg.num_paths = ases * 20;
        let network = BriteGenerator::new(cfg).generate().unwrap();
        let (obs, targets, pc) = prepare(&network, 5);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ases}ases_{}targets", targets.len())),
            &network,
            |b, net| {
                b.iter(|| {
                    select_path_sets(net, &obs, &targets, &pc, &PathSelectionConfig::default())
                })
            },
        );
    }
    group.finish();
}

fn bench_selection_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_path_selection_sparse");
    group.sample_size(10);
    for &ases in &[30usize, 60] {
        let mut cfg = SparseConfig::tiny(1);
        cfg.num_ases = ases;
        cfg.num_traceroutes = ases * 3;
        let network = SparseGenerator::new(cfg).generate().unwrap();
        let (obs, targets, pc) = prepare(&network, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ases}ases_{}targets", targets.len())),
            &network,
            |b, net| {
                b.iter(|| {
                    select_path_sets(net, &obs, &targets, &pc, &PathSelectionConfig::default())
                })
            },
        );
    }
    group.finish();
}

fn bench_selection_reference(c: &mut Criterion) {
    // The element-wise oracle on the largest fixtures of the two groups
    // above. `select_path_sets` (the bitmap fast path) and this entry solve
    // the identical instance, so the ratio between them is the measured
    // speedup of the bitmap representation — and the property suite pins
    // their outcomes to be identical.
    let mut group = c.benchmark_group("algorithm1_path_selection_reference");
    group.sample_size(10);

    let mut bcfg = BriteConfig::tiny(1);
    bcfg.num_ases = 24;
    bcfg.routers_per_as = 6;
    bcfg.num_paths = 24 * 20;
    let brite = BriteGenerator::new(bcfg).generate().unwrap();
    let (obs, targets, pc) = prepare(&brite, 5);
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("brite_24ases_{}targets", targets.len())),
        &brite,
        |b, net| {
            b.iter(|| {
                select_path_sets_reference(
                    net,
                    &obs,
                    &targets,
                    &pc,
                    &PathSelectionConfig::default(),
                )
            })
        },
    );

    let mut scfg = SparseConfig::tiny(1);
    scfg.num_ases = 60;
    scfg.num_traceroutes = 60 * 3;
    let sparse = SparseGenerator::new(scfg).generate().unwrap();
    let (obs, targets, pc) = prepare(&sparse, 7);
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("sparse_60ases_{}targets", targets.len())),
        &sparse,
        |b, net| {
            b.iter(|| {
                select_path_sets_reference(
                    net,
                    &obs,
                    &targets,
                    &pc,
                    &PathSelectionConfig::default(),
                )
            })
        },
    );

    group.finish();
}

criterion_group!(
    benches,
    bench_selection_brite,
    bench_selection_sparse,
    bench_selection_reference
);
criterion_main!(benches);
