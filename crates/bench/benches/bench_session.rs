//! Benchmarks of the multi-tenant serving layer: per-tenant ingest
//! throughput through the sharded `EngineRegistry` (enqueue + drain +
//! incremental refit per tenant) at 1 shard vs 8 shards, and the
//! tenant-lookup + query path. The shard contrast gates the dispatch
//! overhead of the sharded map (hash, per-shard lock) — on a
//! multi-core box it additionally buys lock independence, which a
//! single-threaded bench cannot show.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tomo_core::{SessionConfig, TomographySession};
use tomo_serve::{EngineRegistry, RegistryConfig, TenantEntry, TenantId};

const TENANTS: usize = 8;
const WARMUP_INTERVALS: usize = 100;
const BATCH_INTERVALS: usize = 10;

/// A deterministic toy-topology stream: paths congest on disjoint
/// schedules so the incremental path engages after the first batch.
fn intervals(n: usize, offset: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|t| {
            let t = t + offset;
            let mut congested = Vec::new();
            if t.is_multiple_of(5) {
                congested.extend([0, 1]);
            }
            if t % 4 == 1 {
                congested.push(2);
            }
            congested
        })
        .collect()
}

/// A registry with `TENANTS` warmed toy tenants on `shards` shards.
fn fleet(shards: usize) -> (EngineRegistry, Vec<Arc<TenantEntry>>) {
    let registry = EngineRegistry::new(RegistryConfig {
        num_shards: shards,
        ..RegistryConfig::default()
    });
    let mut entries = Vec::new();
    for i in 0..TENANTS {
        let session =
            TomographySession::new(tomo_graph::toy::fig1_case1(), SessionConfig::default())
                .expect("toy session");
        let entry = registry
            .create(TenantId::new(format!("as-{i}")).expect("valid id"), session)
            .expect("fresh tenant");
        registry.observe(&entry, intervals(WARMUP_INTERVALS, i));
        registry.flush(&entry);
        entries.push(entry);
    }
    (registry, entries)
}

fn bench_session(c: &mut Criterion) {
    let batch = intervals(BATCH_INTERVALS, 17);
    let mut group = c.benchmark_group("session");
    group.sample_size(20);

    // Round-robin one batch into each of the 8 tenants through the
    // registry (enqueue + inline drain + incremental refit), at both shard
    // counts. Per-iteration work = 8 tenants × 10 intervals.
    for shards in [1usize, 8] {
        let (registry, entries) = fleet(shards);
        group.bench_function(format!("ingest_round_robin_{shards}shard"), |b| {
            b.iter(|| {
                for entry in &entries {
                    let response = registry.observe(entry, batch.clone());
                    assert!(
                        matches!(response, tomo_serve::Response::Accepted { .. }),
                        "{response:?}"
                    );
                }
            })
        });
    }

    // The read path: tenant lookup by id + estimate assembly.
    let (registry, _entries) = fleet(8);
    let ids: Vec<TenantId> = (0..TENANTS)
        .map(|i| TenantId::new(format!("as-{i}")).expect("valid id"))
        .collect();
    group.bench_function("lookup_and_query_8tenants", |b| {
        b.iter(|| {
            for id in &ids {
                let entry = registry.lookup(id).expect("tenant exists");
                let response = registry.query(&entry);
                assert!(
                    matches!(response, tomo_serve::Response::Estimate(_)),
                    "{response:?}"
                );
            }
        })
    });

    // Server-side dispatch latency, reported from the registry's own
    // log-bucketed histograms instead of wall-clock around the call: the
    // p95 of per-batch ingest drains (enqueue → estimator refit) for 40
    // batches of 500 intervals on brite-tiny. The large batch keeps the
    // p95 comfortably above the regression gate's 250µs noise floor, and
    // gating the p95 — not the median — catches tail regressions the
    // other entries cannot see.
    group.bench_function("ingest_dispatch_p95_brite500", |b| {
        let registry = EngineRegistry::new(RegistryConfig::default());
        let network = tomo_serve::resolve_topology("brite-tiny", 7).expect("brite topology");
        let session = TomographySession::new(network, SessionConfig::default()).expect("session");
        let entry = registry
            .create(TenantId::new("bench").expect("valid id"), session)
            .expect("fresh tenant");
        for round in 0..40 {
            let response = registry.observe(&entry, intervals(500, round * 500));
            assert!(
                matches!(response, tomo_serve::Response::Accepted { .. }),
                "{response:?}"
            );
            registry.flush(&entry);
        }
        let report = registry.metrics(None);
        b.report_ns(report.per_tenant[0].ingest.p95_ns as f64);
    });

    group.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
