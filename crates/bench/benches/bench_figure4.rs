//! Benchmark behind Figure 4 (experiments E3–E6): the cost of each
//! Probability-Computation algorithm on reduced-size Brite and Sparse
//! topologies under the correlated ("No Independence") scenario.
//!
//! Run the `figure4a`–`figure4d` binaries of `tomo-experiments` to regenerate
//! the figure's rows; this bench tracks the runtime of the algorithms that
//! produce them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tomo_prob::{CorrelationComplete, CorrelationHeuristic, Independence, ProbabilityComputation};
use tomo_sim::{LossModel, MeasurementMode, ScenarioConfig, SimulationConfig, Simulator};
use tomo_topology::{BriteConfig, BriteGenerator, SparseConfig, SparseGenerator};

fn simulate(network: &tomo_graph::Network, seed: u64) -> tomo_sim::SimulationOutput {
    let config = SimulationConfig {
        num_intervals: 150,
        scenario: ScenarioConfig::no_independence().with_nonstationary(50),
        loss: LossModel::default(),
        measurement: MeasurementMode::PacketProbes {
            packets_per_interval: 200,
        },
        seed,
    };
    Simulator::new(config).run(network)
}

fn algorithms() -> Vec<(&'static str, Box<dyn ProbabilityComputation>)> {
    vec![
        ("Independence", Box::new(Independence::default())),
        (
            "Correlation-heuristic",
            Box::new(CorrelationHeuristic::default()),
        ),
        (
            "Correlation-complete",
            Box::new(CorrelationComplete::default()),
        ),
    ]
}

fn bench_on_brite(c: &mut Criterion) {
    let mut cfg = BriteConfig::tiny(1);
    cfg.num_ases = 14;
    cfg.routers_per_as = 6;
    cfg.num_paths = 220;
    let network = BriteGenerator::new(cfg).generate().unwrap();
    let output = simulate(&network, 5);

    let mut group = c.benchmark_group("figure4_probability_brite");
    group.sample_size(10);
    for (name, algo) in algorithms() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| algo.compute(&network, &output.observations))
        });
    }
    group.finish();
}

fn bench_on_sparse(c: &mut Criterion) {
    let mut cfg = SparseConfig::tiny(1);
    cfg.num_ases = 80;
    cfg.num_traceroutes = 260;
    let network = SparseGenerator::new(cfg).generate().unwrap();
    let output = simulate(&network, 7);

    let mut group = c.benchmark_group("figure4_probability_sparse");
    group.sample_size(10);
    for (name, algo) in algorithms() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| algo.compute(&network, &output.observations))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_on_brite, bench_on_sparse);
criterion_main!(benches);
