//! Benchmarks of the chaos subsystem's hot paths: adversarial scenario
//! simulation (Gilbert–Elliott bursts, SRLG cascades), per-fault reaction
//! scoring, and the line-oriented chaos proxy's forwarding loop.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tomo_chaos::{ChaosConfig, ChaosProxy, FaultEvent, FaultKind};
use tomo_metrics::{score_reactions, EstimateSample, ReactionConfig};
use tomo_sim::{LossModel, MeasurementMode, ScenarioConfig, SimulationConfig, Simulator};
use tomo_topology::{BriteConfig, BriteGenerator};

fn network() -> tomo_graph::Network {
    BriteGenerator::new(BriteConfig::tiny(7))
        .generate()
        .unwrap()
}

/// Full adversarial simulations: model evolution, fault-event emission,
/// and the ground-truth epoch timeline all run in the loop, so this is the
/// cost a chaos sweep pays per (scenario, seed) cell before any estimator
/// sees a byte.
fn bench_chaos_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos");
    group.sample_size(10);
    let network = network();
    for (label, scenario) in [
        ("simulate_bursty_loss_200", ScenarioConfig::bursty_loss()),
        ("simulate_link_cascade_200", ScenarioConfig::link_cascade()),
        ("simulate_flapping_200", ScenarioConfig::flapping_links()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &scenario, |b, s| {
            b.iter(|| {
                Simulator::new(SimulationConfig {
                    num_intervals: 200,
                    scenario: s.clone(),
                    loss: LossModel::default(),
                    measurement: MeasurementMode::Ideal,
                    seed: 17,
                })
                .run(&network)
            })
        });
    }
    group.finish();
}

/// Reaction scoring over a synthetic drill: 100 faults, 400 estimate
/// samples, 64 links. This is the post-processing cost per (tenant, run)
/// in `probe-client chaos` and per sweep cell in the `chaos` grid.
fn bench_reaction_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos");
    group.sample_size(20);
    let links = 64usize;
    let faults: Vec<FaultEvent> = (1..=100)
        .map(|i| FaultEvent {
            kind: if i % 2 == 0 {
                FaultKind::BurstEnd
            } else {
                FaultKind::BurstStart
            },
            interval: i * 20,
            epoch: i,
            links: vec![i % links],
        })
        .collect();
    let truth: Vec<(usize, Vec<f64>)> = (0..101)
        .map(|i| {
            let level = if i % 2 == 0 { 0.05 } else { 0.85 };
            (i * 20, vec![level; links])
        })
        .collect();
    let truth_refs: Vec<(usize, &[f64])> = truth.iter().map(|(s, m)| (*s, m.as_slice())).collect();
    let samples: Vec<EstimateSample> = (1..=400)
        .map(|i| EstimateSample {
            intervals: i * 5,
            probabilities: vec![0.05 + (i % 7) as f64 * 0.1; links],
        })
        .collect();
    group.bench_function("score_reactions_100_faults", |b| {
        b.iter(|| score_reactions(&faults, &samples, &truth_refs, ReactionConfig::default()))
    });
    group.finish();
}

/// Round-trips 500 request lines through the chaos proxy to a line-echo
/// upstream with every fault rate at zero: the pure forwarding overhead a
/// drill adds on top of the daemon itself.
fn bench_proxy_forwarding(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos");
    group.sample_size(10);

    // Echo upstream: one "ok" line back per request line, per connection.
    let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
    let upstream_addr = upstream.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for conn in upstream.incoming() {
            let Ok(conn) = conn else { break };
            std::thread::spawn(move || {
                let mut writer = conn.try_clone().unwrap();
                let reader = BufReader::new(conn);
                for line in reader.lines() {
                    if line.is_err() || writer.write_all(b"ok\n").is_err() {
                        break;
                    }
                }
            });
        }
    });

    let proxy = ChaosProxy::start(
        upstream_addr,
        ChaosConfig {
            seed: 1,
            ..ChaosConfig::default()
        },
    )
    .unwrap();
    let proxy_addr = proxy.local_addr();

    group.bench_function("proxy_echo_500_lines", |b| {
        b.iter(|| {
            let stream = TcpStream::connect(proxy_addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            for i in 0..500u32 {
                writer
                    .write_all(format!("{{\"line\":{i}}}\n").as_bytes())
                    .unwrap();
            }
            for _ in 0..500 {
                line.clear();
                assert!(reader.read_line(&mut line).unwrap() > 0);
            }
        })
    });
    group.finish();
    proxy.shutdown();
}

criterion_group!(
    benches,
    bench_chaos_simulation,
    bench_reaction_scoring,
    bench_proxy_forwarding
);
criterion_main!(benches);
