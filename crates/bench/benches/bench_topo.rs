//! Benchmarks of the topology lifecycle subsystem (`tomo-topo`): the
//! structural checker + canonical hash an inline upload pays once per
//! document, the identifiability-driven alias analysis behind
//! `TopologyInfo`, the per-batch drift scan every ingest drain pays, and
//! the auto-rebuild path a drift event triggers under `"rebuild":"auto"`.

use criterion::{criterion_group, criterion_main, Criterion};
use tomo_core::{RebuildPolicy, SessionConfig, TomographySession};
use tomo_graph::Network;
use tomo_topo::{AliasAnalysis, DriftMonitor, TopologyDoc};
use tomo_topology::{BriteConfig, BriteGenerator};

/// The same BRITE-style instance the online benches use (~60 paths,
/// hundreds of links) so numbers are comparable across suites.
fn network() -> Network {
    BriteGenerator::new(BriteConfig::tiny(7))
        .generate()
        .expect("tiny instance generates")
}

fn bench_topo(c: &mut Criterion) {
    let network = network();
    let mut group = c.benchmark_group("topo");
    group.sample_size(20);

    // Upload cost: referential-integrity checks, coverage report and the
    // canonical FNV dedup hash over the whole document.
    group.bench_function("validate_brite_tiny", |b| {
        let doc = TopologyDoc::from_network(network.clone());
        b.iter(|| doc.validate().expect("generated topology validates"))
    });

    // TopologyInfo cost: fold the routing matrix through Algorithm 2,
    // orthonormalize the null-space basis and extract alias groups.
    group.bench_function("alias_analysis_brite_tiny", |b| {
        b.iter(|| AliasAnalysis::analyze(&network))
    });

    // Steady-state drift scan: what every ingest drain pays per batch when
    // nothing drifts (the active-link diff over the congested-path union).
    group.bench_function("drift_scan_brite_tiny", |b| {
        let active: Vec<bool> = (0..network.num_paths()).map(|p| p % 3 == 0).collect();
        let mut monitor = DriftMonitor::default();
        monitor.observe(&network, &active, 0);
        let mut t = 1;
        b.iter(|| {
            t += 1;
            monitor.observe(&network, &active, t)
        })
    });

    // Auto-rebuild on drift: alternate between two congested-path sets so
    // every batch flips the active-link set and triggers a full structural
    // rebuild through the session. The window holds exactly one batch so
    // the previous pattern fully evicts each iteration (presence counters
    // decay only on eviction) and the refit size stays constant.
    group.bench_function("auto_rebuild_on_drift", |b| {
        let mut session = TomographySession::new(
            network.clone(),
            SessionConfig {
                window_capacity: Some(10),
                rebuild: RebuildPolicy::Auto,
                ..SessionConfig::default()
            },
        )
        .expect("auto-rebuild session");
        let narrow: Vec<Vec<usize>> = vec![vec![0, 1]; 10];
        let wide: Vec<Vec<usize>> =
            vec![(0..network.num_paths()).step_by(2).collect::<Vec<_>>(); 10];
        session.observe(&narrow).expect("prime");
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let batch = if flip { &wide } else { &narrow };
            session.observe(batch).expect("drifting ingest")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_topo);
criterion_main!(benches);
