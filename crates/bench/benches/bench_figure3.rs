//! Benchmark behind Figure 3 (experiments E1/E2): the cost of running each
//! Boolean-Inference algorithm over a full (reduced-size) experiment —
//! learning phase plus per-interval inference.
//!
//! Run `cargo run --release -p tomo-experiments --bin figure3` to regenerate
//! the figure's actual rows; this bench tracks the runtime of the pipeline
//! that produces them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tomo_inference::{
    infer_all_intervals, BayesianCorrelation, BayesianIndependence, BooleanInference, Sparsity,
};
use tomo_sim::{LossModel, MeasurementMode, ScenarioConfig, SimulationConfig, Simulator};
use tomo_topology::{BriteConfig, BriteGenerator};

fn experiment() -> (tomo_graph::Network, tomo_sim::SimulationOutput) {
    let mut cfg = BriteConfig::tiny(1);
    cfg.num_ases = 12;
    cfg.routers_per_as = 6;
    cfg.num_paths = 180;
    let network = BriteGenerator::new(cfg).generate().unwrap();
    let config = SimulationConfig {
        num_intervals: 120,
        scenario: ScenarioConfig::no_independence(),
        loss: LossModel::default(),
        measurement: MeasurementMode::PacketProbes {
            packets_per_interval: 200,
        },
        seed: 3,
    };
    let output = Simulator::new(config).run(&network);
    (network, output)
}

fn bench_inference_algorithms(c: &mut Criterion) {
    let (network, output) = experiment();
    let mut group = c.benchmark_group("figure3_inference_pipeline");
    group.sample_size(10);
    type Factory = fn() -> Box<dyn BooleanInference>;
    let make: Vec<(&str, Factory)> = vec![
        ("Sparsity", || Box::new(Sparsity::new())),
        ("Bayesian-Independence", || {
            Box::new(BayesianIndependence::new())
        }),
        ("Bayesian-Correlation", || {
            Box::new(BayesianCorrelation::new())
        }),
    ];
    for (name, factory) in make {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let mut algo = factory();
                infer_all_intervals(algo.as_mut(), &network, &output.observations)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference_algorithms);
criterion_main!(benches);
