//! Benchmarks of the congestion/measurement simulator (the substrate behind
//! every figure): topology generation and per-interval simulation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tomo_sim::{LossModel, MeasurementMode, ScenarioConfig, SimulationConfig, Simulator};
use tomo_topology::{BriteConfig, BriteGenerator, SparseConfig, SparseGenerator};

fn bench_topology_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_generation");
    group.sample_size(10);
    group.bench_function("brite_tiny", |b| {
        b.iter(|| {
            BriteGenerator::new(BriteConfig::tiny(1))
                .generate()
                .unwrap()
        })
    });
    group.bench_function("sparse_tiny", |b| {
        b.iter(|| {
            SparseGenerator::new(SparseConfig::tiny(1))
                .generate()
                .unwrap()
        })
    });
    let mut medium = BriteConfig::tiny(2);
    medium.num_ases = 36;
    medium.routers_per_as = 9;
    medium.num_paths = 700;
    group.bench_function("brite_medium", |b| {
        let cfg = medium.clone();
        b.iter(|| BriteGenerator::new(cfg.clone()).generate().unwrap())
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_100_intervals");
    group.sample_size(10);
    let network = BriteGenerator::new(BriteConfig::tiny(3))
        .generate()
        .unwrap();
    for (label, measurement) in [
        ("ideal", MeasurementMode::Ideal),
        (
            "probes_300",
            MeasurementMode::PacketProbes {
                packets_per_interval: 300,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &measurement, |b, m| {
            b.iter(|| {
                let config = SimulationConfig {
                    num_intervals: 100,
                    scenario: ScenarioConfig::no_independence(),
                    loss: LossModel::default(),
                    measurement: *m,
                    seed: 9,
                };
                Simulator::new(config).run(&network)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topology_generation, bench_simulation);
criterion_main!(benches);
