//! Benchmarks of the parallel sweep engine: the same small grid at several
//! thread counts (scheduler overhead + scaling on multi-core hosts) and the
//! JSON-lines rendering of the report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tomo_sim::ScenarioKind;
use tomo_sweep::{SweepGrid, SweepRunner, TopologySpec};
use tomo_topology::BriteConfig;

/// A 24-task grid that exercises topology generation, both estimator
/// capability families, and result collection.
fn bench_grid() -> SweepGrid {
    SweepGrid::new()
        .topology(TopologySpec::Toy)
        .topology(TopologySpec::Brite(BriteConfig::tiny(1)))
        .scenario(ScenarioKind::RandomCongestion)
        .scenario(ScenarioKind::NoIndependence)
        .estimator("sparsity")
        .estimator("independence")
        .estimator("correlation-complete")
        .interval_count(40)
        .seed_axis(0)
        .seed_axis(1)
}

fn bench_sweep_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    let grid = bench_grid();
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let runner = SweepRunner::new().threads(threads);
                b.iter(|| runner.run(&grid).expect("sweep runs"))
            },
        );
    }
    group.finish();
}

fn bench_sweep_report(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_report");
    group.sample_size(20);
    let report = SweepRunner::new()
        .threads(1)
        .run(&bench_grid())
        .expect("sweep runs");
    group.bench_function("to_jsonl", |b| b.iter(|| report.to_jsonl()));
    group.finish();
}

criterion_group!(benches, bench_sweep_threads, bench_sweep_report);
criterion_main!(benches);
