//! C10K serving benchmark: sustained ingest throughput and query latency
//! against a live event-driven daemon while ~1k idle monitor connections
//! stay parked on it.
//!
//! The point of the event-driven connection layer is that idle
//! connections are (nearly) free: they occupy a pollfd slot, not a
//! thread. These benches gate that property end-to-end over real loopback
//! TCP — if idle connections ever regress to costing scheduler or
//! per-request work, the medians move.
//!
//! Units are sized to clear the regression gate's noise floor: the ingest
//! bench pushes 100 intervals (10 batches + flush) per iteration and the
//! query bench does 25 query round trips per iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use tomo_core::{SessionConfig, TomographySession};
use tomo_serve::protocol::Request;
use tomo_serve::{Client, EngineRegistry, RegistryConfig, Server, TenantId};

const IDLE_CONNS: usize = 1000;
const HOT_TENANTS: usize = 4;
const BATCH: usize = 10;
const BATCHES_PER_ITER: usize = 10;
const QUERIES_PER_ITER: usize = 25;

/// A deterministic toy-topology stream.
fn intervals(n: usize, offset: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|t| {
            let t = t + offset;
            let mut congested = Vec::new();
            if t.is_multiple_of(5) {
                congested.extend([0, 1]);
            }
            if t % 4 == 1 {
                congested.push(2);
            }
            congested
        })
        .collect()
}

struct LiveDaemon {
    addr: String,
    /// Parked monitor connections; dropped (closed) on teardown.
    _monitors: Vec<Client>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl LiveDaemon {
    /// Boots a daemon with warmed hot tenants and parks ~1k attached idle
    /// connections on it.
    fn start() -> Self {
        let _ = tomo_net::raise_nofile_limit(IDLE_CONNS as u64 + 512);
        let registry = EngineRegistry::new(RegistryConfig::default());
        for k in 0..HOT_TENANTS {
            let session = TomographySession::new(
                tomo_serve::resolve_topology("toy", 0).expect("toy topology"),
                SessionConfig::default(),
            )
            .expect("toy session");
            let entry = registry
                .create(
                    TenantId::new(format!("hot-{k}")).expect("valid id"),
                    session,
                )
                .expect("fresh tenant");
            registry.observe(&entry, intervals(100, k));
            registry.flush(&entry);
        }
        let server = Server::bind("127.0.0.1:0", Arc::new(registry), 4).expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let handle = std::thread::spawn(move || server.run().expect("daemon runs"));

        let mut monitors = Vec::with_capacity(IDLE_CONNS);
        for j in 0..IDLE_CONNS {
            let mut client = match Client::connect(&addr) {
                Ok(c) => c,
                Err(e) => {
                    // An fd-limited environment still benches, just with a
                    // thinner idle tier — report, don't abort.
                    eprintln!("bench_c10k: stopped at {j} idle conns: {e}");
                    break;
                }
            };
            client.set_tenant(format!("hot-{}", j % HOT_TENANTS));
            match client.call(&Request::Attach) {
                Ok(_) => monitors.push(client),
                Err(e) => {
                    eprintln!("bench_c10k: attach failed at {j} idle conns: {e}");
                    break;
                }
            }
        }
        Self {
            addr,
            _monitors: monitors,
            handle: Some(handle),
        }
    }
}

impl Drop for LiveDaemon {
    fn drop(&mut self) {
        if let Ok(mut admin) = Client::connect(&self.addr) {
            let _ = admin.call(&Request::Shutdown);
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn bench_c10k(c: &mut Criterion) {
    let daemon = LiveDaemon::start();
    let mut group = c.benchmark_group("c10k");
    group.sample_size(10);

    let mut hot = Client::connect(&daemon.addr).expect("hot client");
    hot.set_tenant("hot-0");
    let batch = intervals(BATCH, 37);
    group.bench_function("ingest_100_intervals_with_1k_idle_conns", |b| {
        b.iter(|| {
            for _ in 0..BATCHES_PER_ITER {
                while !hot.observe_batch(batch.clone()).expect("observe") {
                    hot.flush().expect("flush");
                }
            }
            hot.flush().expect("flush")
        })
    });

    let mut querier = Client::connect(&daemon.addr).expect("query client");
    querier.set_tenant("hot-1");
    group.bench_function("query_25_round_trips_with_1k_idle_conns", |b| {
        b.iter(|| {
            let mut last = 0u64;
            for _ in 0..QUERIES_PER_ITER {
                last = querier.query().expect("query").intervals;
            }
            last
        })
    });

    group.finish();
    drop(daemon);
}

criterion_group!(benches, bench_c10k);
criterion_main!(benches);
