//! Topology lifecycle subsystem for the serving stack.
//!
//! The paper treats the monitored topology as *given*; a long-running
//! tomography service cannot. This crate owns the three stages of a
//! topology's life in the daemon:
//!
//! * **Ingestion** — [`TopologyDoc`]: a validated inline `Network` document
//!   (links, paths, optional link metadata) with a structural checker
//!   (path/link referential integrity through [`tomo_graph::NetworkBuilder`],
//!   a coverage report, and a canonical dedup hash), so tenants can be
//!   created from measured traceroute maps without a daemon restart.
//! * **Learning** — [`AliasAnalysis`]: extracts mergeable link groups (alias
//!   sets) from the identifiability null-space basis of the routing matrix,
//!   folded row-by-row with [`tomo_linalg::nullspace_update`] (Algorithm 2 of
//!   the paper). Two links are aliased exactly when no probe path can ever
//!   tell them apart under the current path set — equivalently, when their
//!   path-incidence columns coincide — and each group carries the probe that
//!   would split it.
//! * **Drift detection** — [`DriftMonitor`]: a per-tenant monitor fed from
//!   the online estimator's congested-path bitmap that flags link
//!   appearance/disappearance and path-set change mid-stream as typed
//!   [`DriftEvent`]s, with lifetime [`DriftCounters`] the serving layer
//!   surfaces through `Stats`/`Metrics`. The opt-in [`RebuildPolicy::Auto`]
//!   lets a session force a structural rebuild through the existing
//!   Algorithm-2 fold whenever drift fires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod doc;
pub mod drift;

pub use alias::{ground_truth_alias_sets, AliasAnalysis, AliasGroup};
pub use doc::{report_of, LinkMetadata, TopoError, TopologyDoc, TopologyReport};
pub use drift::{DriftCounters, DriftEvent, DriftKind, DriftMonitor, RebuildPolicy};
