//! Mid-stream topology drift detection.
//!
//! A long-running tenant's topology is not static: links come and go, and
//! the measured path set changes as routes move. The [`DriftMonitor`] here
//! watches the *observable* footprint of the topology — which links are
//! touched by currently-congested paths, and which paths exist at all —
//! and flags three kinds of change as typed [`DriftEvent`]s:
//!
//! * [`DriftKind::LinkAppeared`] — a link that had never carried congestion
//!   inside the observation window starts to;
//! * [`DriftKind::LinkDisappeared`] — a link that used to carry congestion
//!   ages entirely out of the window;
//! * [`DriftKind::PathSetChanged`] — the set of measurement paths itself
//!   changed size (routes added or withdrawn).
//!
//! The monitor is deliberately estimator-agnostic: it is fed the
//! congested-path bitmap the online estimators already maintain, so it adds
//! O(paths + links) work per batch and no extra linear algebra. When a
//! session opts into [`RebuildPolicy::Auto`], drift events trigger a
//! structural rebuild through the existing Algorithm-2 fold instead of a
//! full refit.

use serde::{Deserialize, Serialize, Value};

use tomo_graph::Network;

/// The kind of a drift event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftKind {
    /// A link entered the active (congestion-carrying) set.
    LinkAppeared,
    /// A link left the active set entirely (aged out of the window).
    LinkDisappeared,
    /// The measurement path set changed size.
    PathSetChanged,
}

impl DriftKind {
    /// Stable lowercase label used in metrics and logs.
    pub fn label(self) -> &'static str {
        match self {
            DriftKind::LinkAppeared => "link_appeared",
            DriftKind::LinkDisappeared => "link_disappeared",
            DriftKind::PathSetChanged => "path_set_changed",
        }
    }
}

/// One detected drift occurrence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftEvent {
    /// What changed.
    pub kind: DriftKind,
    /// Links involved (appeared or disappeared), sorted ascending. Empty
    /// for path-set changes.
    pub links: Vec<usize>,
    /// Path count after the change (path-set events), or number of active
    /// paths at detection time (link events).
    pub paths: usize,
    /// Tenant-local interval index at which the change was detected.
    pub at_interval: u64,
}

/// Lifetime drift counters, mergeable across tenants/shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriftCounters {
    /// Links that newly entered the active set.
    pub links_appeared: u64,
    /// Links that aged out of the active set.
    pub links_disappeared: u64,
    /// Path-set size changes.
    pub path_set_changes: u64,
    /// Structural rebuilds triggered by [`RebuildPolicy::Auto`].
    pub auto_rebuilds: u64,
}

impl DriftCounters {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &DriftCounters) {
        self.links_appeared += other.links_appeared;
        self.links_disappeared += other.links_disappeared;
        self.path_set_changes += other.path_set_changes;
        self.auto_rebuilds += other.auto_rebuilds;
    }

    /// Total number of drift events observed.
    pub fn total_events(&self) -> u64 {
        self.links_appeared + self.links_disappeared + self.path_set_changes
    }
}

/// What a session does when drift fires.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RebuildPolicy {
    /// Record the event; leave the estimator untouched (default).
    #[default]
    Manual,
    /// Force a structural rebuild (Algorithm-2 refold + solver refresh) on
    /// every drift event.
    Auto,
}

impl RebuildPolicy {
    /// Wire label ("manual" / "auto").
    pub fn label(self) -> &'static str {
        match self {
            RebuildPolicy::Manual => "manual",
            RebuildPolicy::Auto => "auto",
        }
    }
}

// Wire form is a plain string so the v2 envelope reads
// `"rebuild": "auto"`; absent/null keeps the Manual default so snapshots
// from before this field existed still restore.
impl Serialize for RebuildPolicy {
    fn to_value(&self) -> Value {
        Value::Str(self.label().to_string())
    }
}

impl Deserialize for RebuildPolicy {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::Null => Ok(RebuildPolicy::Manual),
            Value::Str(s) => match s.to_ascii_lowercase().as_str() {
                "manual" => Ok(RebuildPolicy::Manual),
                "auto" => Ok(RebuildPolicy::Auto),
                other => Err(serde::Error::msg(format!(
                    "unknown rebuild policy `{other}` (expected \"manual\" or \"auto\")"
                ))),
            },
            other => Err(serde::Error::expected("rebuild policy string", other)),
        }
    }
}

/// Per-tenant drift monitor.
///
/// Feed it once per ingested batch with the network and the estimator's
/// congested-path bitmap (`active_paths[p]` = path `p` has congestion
/// inside the observation window). The first call primes the baseline and
/// never reports; later calls diff against the baseline and return the
/// events detected in that batch. The monitor keeps lifetime counters and
/// a bounded ring of recent events for `TopologyInfo`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DriftMonitor {
    primed: bool,
    /// Active-link bitmap as of the previous observation.
    active_links: Vec<bool>,
    /// Path count as of the previous observation.
    num_paths: usize,
    counters: DriftCounters,
    recent: Vec<DriftEvent>,
}

/// Bound on the recent-event ring kept for `TopologyInfo`.
const RECENT_CAP: usize = 32;

impl Default for DriftMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl DriftMonitor {
    /// Creates an unprimed monitor.
    pub fn new() -> Self {
        Self {
            primed: false,
            active_links: Vec::new(),
            num_paths: 0,
            counters: DriftCounters::default(),
            recent: Vec::new(),
        }
    }

    /// Observes the current state and returns the drift events it implies.
    ///
    /// `active_paths` must have one flag per path of `network`;
    /// `at_interval` is the tenant's total ingested-interval count, stamped
    /// into the events.
    pub fn observe(
        &mut self,
        network: &Network,
        active_paths: &[bool],
        at_interval: u64,
    ) -> Vec<DriftEvent> {
        let mut active_links = vec![false; network.num_links()];
        let mut active_path_count = 0usize;
        for (p, &active) in active_paths.iter().enumerate() {
            if !active || p >= network.num_paths() {
                continue;
            }
            active_path_count += 1;
            for l in &network.path(tomo_graph::PathId(p)).links {
                active_links[l.index()] = true;
            }
        }

        if !self.primed {
            self.primed = true;
            self.active_links = active_links;
            self.num_paths = network.num_paths();
            return Vec::new();
        }

        let mut events = Vec::new();
        if network.num_paths() != self.num_paths {
            self.counters.path_set_changes += 1;
            events.push(DriftEvent {
                kind: DriftKind::PathSetChanged,
                links: Vec::new(),
                paths: network.num_paths(),
                at_interval,
            });
        }

        let prev = &self.active_links;
        let mut appeared = Vec::new();
        let mut disappeared = Vec::new();
        for (l, &is) in active_links.iter().enumerate() {
            let was = prev.get(l).copied().unwrap_or(false);
            match (was, is) {
                (false, true) => appeared.push(l),
                (true, false) => disappeared.push(l),
                _ => {}
            }
        }
        // Links beyond the new network's size that used to be active.
        for (l, &was) in prev.iter().enumerate().skip(active_links.len()) {
            if was {
                disappeared.push(l);
            }
        }
        if !appeared.is_empty() {
            self.counters.links_appeared += appeared.len() as u64;
            events.push(DriftEvent {
                kind: DriftKind::LinkAppeared,
                links: appeared,
                paths: active_path_count,
                at_interval,
            });
        }
        if !disappeared.is_empty() {
            self.counters.links_disappeared += disappeared.len() as u64;
            events.push(DriftEvent {
                kind: DriftKind::LinkDisappeared,
                links: disappeared,
                paths: active_path_count,
                at_interval,
            });
        }

        self.active_links = active_links;
        self.num_paths = network.num_paths();
        for event in &events {
            if self.recent.len() == RECENT_CAP {
                self.recent.remove(0);
            }
            self.recent.push(event.clone());
        }
        events
    }

    /// Records an auto-rebuild triggered by drift.
    pub fn record_auto_rebuild(&mut self) {
        self.counters.auto_rebuilds += 1;
    }

    /// Lifetime counters.
    pub fn counters(&self) -> DriftCounters {
        self.counters
    }

    /// The bounded ring of recent events, oldest first.
    pub fn recent_events(&self) -> &[DriftEvent] {
        &self.recent
    }

    /// Whether the baseline has been primed.
    pub fn is_primed(&self) -> bool {
        self.primed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::{AsId, NetworkBuilder, NodeId};

    fn chain(paths: &[&[usize]], num_links: usize) -> Network {
        let mut b = NetworkBuilder::new();
        let links: Vec<_> = (0..num_links)
            .map(|i| b.add_link(NodeId(i), NodeId(i + 1), AsId(0)))
            .collect();
        for p in paths {
            let pl: Vec<_> = p.iter().map(|&i| links[i]).collect();
            let src = NodeId(p[0]);
            let dst = NodeId(p[p.len() - 1] + 1);
            b.add_path(src, dst, pl);
        }
        b.build().unwrap()
    }

    #[test]
    fn first_observation_primes_without_events() {
        let net = chain(&[&[0, 1], &[2]], 3);
        let mut monitor = DriftMonitor::new();
        assert!(!monitor.is_primed());
        let events = monitor.observe(&net, &[true, false], 1);
        assert!(events.is_empty());
        assert!(monitor.is_primed());
        assert_eq!(monitor.counters().total_events(), 0);
    }

    #[test]
    fn link_appearance_and_disappearance_are_flagged() {
        let net = chain(&[&[0, 1], &[2]], 3);
        let mut monitor = DriftMonitor::new();
        monitor.observe(&net, &[true, false], 1);

        // Path 1 (over link 2) starts carrying congestion: link appears.
        let events = monitor.observe(&net, &[true, true], 2);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, DriftKind::LinkAppeared);
        assert_eq!(events[0].links, vec![2]);
        assert_eq!(events[0].at_interval, 2);

        // Path 0 ages out: links 0 and 1 disappear together.
        let events = monitor.observe(&net, &[false, true], 3);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, DriftKind::LinkDisappeared);
        assert_eq!(events[0].links, vec![0, 1]);

        let counters = monitor.counters();
        assert_eq!(counters.links_appeared, 1);
        assert_eq!(counters.links_disappeared, 2);
        assert_eq!(counters.total_events(), 3);
    }

    #[test]
    fn path_set_change_is_flagged_once() {
        let before = chain(&[&[0, 1]], 3);
        let after = chain(&[&[0, 1], &[2]], 3);
        let mut monitor = DriftMonitor::new();
        monitor.observe(&before, &[true], 1);
        let events = monitor.observe(&after, &[true, false], 2);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, DriftKind::PathSetChanged);
        assert_eq!(events[0].paths, 2);
        assert_eq!(monitor.counters().path_set_changes, 1);
    }

    #[test]
    fn recent_ring_is_bounded() {
        let net = chain(&[&[0], &[1]], 2);
        let mut monitor = DriftMonitor::new();
        monitor.observe(&net, &[false, false], 0);
        for i in 0..(RECENT_CAP as u64 + 10) {
            let flip = i % 2 == 0;
            monitor.observe(&net, &[flip, !flip], i + 1);
        }
        assert_eq!(monitor.recent_events().len(), RECENT_CAP);
        // Oldest-first: the last event must carry the newest interval.
        let last = monitor.recent_events().last().unwrap();
        assert_eq!(last.at_interval, RECENT_CAP as u64 + 10);
    }

    #[test]
    fn rebuild_policy_wire_forms() {
        assert_eq!(
            serde_json::to_string(&RebuildPolicy::Auto).unwrap(),
            "\"auto\""
        );
        let p: RebuildPolicy = serde_json::from_str("\"AUTO\"").unwrap();
        assert_eq!(p, RebuildPolicy::Auto);
        let p: RebuildPolicy = serde_json::from_str("null").unwrap();
        assert_eq!(p, RebuildPolicy::Manual);
        assert!(serde_json::from_str::<RebuildPolicy>("\"sometimes\"").is_err());
        assert_eq!(RebuildPolicy::default(), RebuildPolicy::Manual);
    }

    #[test]
    fn monitor_round_trips_through_snapshots() {
        let net = chain(&[&[0, 1], &[2]], 3);
        let mut monitor = DriftMonitor::new();
        monitor.observe(&net, &[true, false], 1);
        monitor.observe(&net, &[true, true], 2);
        monitor.record_auto_rebuild();
        let json = serde_json::to_string(&monitor).unwrap();
        let back: DriftMonitor = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counters(), monitor.counters());
        assert_eq!(back.recent_events(), monitor.recent_events());
        assert!(back.is_primed());
    }

    #[test]
    fn drift_counters_merge() {
        let mut a = DriftCounters {
            links_appeared: 1,
            links_disappeared: 2,
            path_set_changes: 3,
            auto_rebuilds: 4,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.links_appeared, 2);
        assert_eq!(a.auto_rebuilds, 8);
        assert_eq!(a.total_events(), 12);
    }
}
