//! Identifiability-driven link merging (alias sets).
//!
//! Two links are *aliased* when no probe path in the current path set can
//! ever tell them apart: every path traverses both or neither, so their
//! columns in the routing matrix coincide and the difference of their
//! indicator vectors lies in the null space of the routing matrix. The
//! analysis here recovers those groups directly from the identifiability
//! null-space basis the estimators already maintain — folded row-by-row
//! with [`tomo_linalg::nullspace_update`] (Algorithm 2 of the paper) — so
//! the answer is consistent with what the online estimator can and cannot
//! resolve, and it comes with the probe that would split each group.

use serde::{Deserialize, Serialize};
use tomo_linalg::{nullspace, nullspace_update, Matrix};

use tomo_graph::Network;

/// Numerical tolerance for membership of `e_i - e_j` in the null space.
const TOL: f64 = 1e-6;

/// A maximal set of mutually indistinguishable links.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AliasGroup {
    /// Links in the group, sorted ascending. Always at least two.
    pub links: Vec<usize>,
    /// Whether the group is traversed by any path at all. An unobserved
    /// group (no path covers it) can only be split by a probe that reaches
    /// it in the first place.
    pub observed: bool,
    /// Links a single additional probe path should traverse to split the
    /// group: any probe covering a proper non-empty subset of `links`
    /// breaks the tie, and the suggested subset here is the first link
    /// alone.
    pub split_probe: Vec<usize>,
}

/// Result of the alias analysis over one network.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AliasAnalysis {
    /// Number of links analysed.
    pub num_links: usize,
    /// Rank of the routing matrix (paths that add information).
    pub rank: usize,
    /// Dimension of the identifiability null space.
    pub nullspace_dim: usize,
    /// Links whose loss rate is uniquely determined by the path set.
    pub identifiable_links: usize,
    /// Maximal alias groups (size >= 2), sorted by their first link.
    pub groups: Vec<AliasGroup>,
}

impl AliasAnalysis {
    /// Runs the analysis: folds the routing rows through Algorithm 2 from
    /// the identity basis, orthonormalizes the resulting null-space basis,
    /// and groups links whose indicator difference lies inside it.
    pub fn analyze(network: &Network) -> Self {
        let n = network.num_links();
        let rows = network.routing_matrix();
        let mut basis = Matrix::identity(n);
        for row in &rows {
            basis = nullspace_update(&basis, row).into_basis();
        }
        let a = (!rows.is_empty()).then(|| {
            let mut a = Matrix::zeros(rows.len(), n);
            for (i, row) in rows.iter().enumerate() {
                for (j, &x) in row.iter().enumerate() {
                    a[(i, j)] = x;
                }
            }
            a
        });
        // Same safety net the online estimator uses: if the incremental
        // fold drifted, fall back to the batch null space.
        if let Some(a) = &a {
            if basis.cols() > 0 && a.matmul(&basis).max_abs() > TOL {
                basis = nullspace(a);
            }
        }
        let mut q = orthonormalize(&basis);
        if q.cols() < basis.cols() {
            // Gram-Schmidt collapsed a column below tolerance: the folded
            // basis is numerically degenerate, and `n - q.cols()` would
            // overstate the rank. Recompute from the batch null space,
            // whose basis columns each carry a unit entry in a distinct
            // free-variable row and therefore survive orthonormalization.
            if let Some(a) = &a {
                basis = nullspace(a);
                q = orthonormalize(&basis);
            }
        }
        let k = q.cols();
        let rank = n - k;

        // Row i of Q is Q^T e_i; ||e_i - e_j||^2 = 2 and its projection
        // onto span(Q) has squared norm ||row_i - row_j||^2, so the
        // difference lies in the null space exactly when that hits 2.
        let row_dist2 =
            |i: usize, j: usize| -> f64 { (0..k).map(|c| (q[(i, c)] - q[(j, c)]).powi(2)).sum() };
        let identifiable = (0..n)
            .filter(|&i| (0..k).all(|c| q[(i, c)].abs() <= TOL))
            .count();

        let mut grouped = vec![false; n];
        let mut groups = Vec::new();
        for i in 0..n {
            if grouped[i] {
                continue;
            }
            let mut members = vec![i];
            #[allow(clippy::needless_range_loop)]
            for j in (i + 1)..n {
                if !grouped[j] && row_dist2(i, j) >= 2.0 - TOL {
                    members.push(j);
                }
            }
            if members.len() >= 2 {
                for &m in &members {
                    grouped[m] = true;
                }
                let observed = !network.paths_through_link(tomo_graph::LinkId(i)).is_empty();
                groups.push(AliasGroup {
                    split_probe: vec![members[0]],
                    links: members,
                    observed,
                });
            }
        }
        Self {
            num_links: n,
            rank,
            nullspace_dim: k,
            identifiable_links: identifiable,
            groups,
        }
    }

    /// The alias groups as plain sorted link-index sets (test/CLI helper).
    pub fn group_sets(&self) -> Vec<Vec<usize>> {
        self.groups.iter().map(|g| g.links.clone()).collect()
    }
}

/// Ground truth the analysis must reproduce: group links by their exact
/// path-incidence column, i.e. by the set of paths that traverse them.
/// Groups of size >= 2 only, each sorted, ordered by first link.
pub fn ground_truth_alias_sets(network: &Network) -> Vec<Vec<usize>> {
    use std::collections::HashMap;
    let mut by_column: HashMap<Vec<usize>, Vec<usize>> = HashMap::new();
    for link in network.link_ids() {
        let column: Vec<usize> = network
            .paths_through_link(link)
            .iter()
            .map(|p| p.index())
            .collect();
        by_column.entry(column).or_default().push(link.index());
    }
    let mut groups: Vec<Vec<usize>> = by_column
        .into_values()
        .filter(|g| g.len() >= 2)
        .map(|mut g| {
            g.sort_unstable();
            g
        })
        .collect();
    groups.sort();
    groups
}

/// Modified Gram-Schmidt over the columns of `basis`, dropping columns that
/// collapse below tolerance. Returns an n x k matrix with orthonormal
/// columns spanning the same space.
fn orthonormalize(basis: &Matrix) -> Matrix {
    let n = basis.rows();
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for c in 0..basis.cols() {
        let mut v: Vec<f64> = (0..n).map(|r| basis[(r, c)]).collect();
        for q in &cols {
            let proj: f64 = q.iter().zip(&v).map(|(a, b)| a * b).sum();
            for (vi, qi) in v.iter_mut().zip(q) {
                *vi -= proj * qi;
            }
        }
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-9 {
            for vi in &mut v {
                *vi /= norm;
            }
            cols.push(v);
        }
    }
    let mut q = Matrix::zeros(n, cols.len());
    for (c, col) in cols.iter().enumerate() {
        for (r, &x) in col.iter().enumerate() {
            q[(r, c)] = x;
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::{toy, AsId, LinkId, NetworkBuilder, NodeId};

    #[test]
    fn toy_network_is_fully_identifiable() {
        let net = toy::fig1_case1();
        let analysis = AliasAnalysis::analyze(&net);
        assert_eq!(analysis.num_links, 4);
        assert_eq!(analysis.nullspace_dim, 1);
        // e1 covered alone by p1, e4 by (p1,p2,p3) uniquely... compute via
        // ground truth instead of hand-deriving.
        assert_eq!(analysis.group_sets(), ground_truth_alias_sets(&net));
    }

    #[test]
    fn serial_links_alias_until_a_probe_splits_them() {
        // One path over two serial links: they are indistinguishable.
        let mut b = NetworkBuilder::new();
        let e0 = b.add_link(NodeId(0), NodeId(1), AsId(0));
        let e1 = b.add_link(NodeId(1), NodeId(2), AsId(0));
        b.add_path(NodeId(0), NodeId(2), vec![e0, e1]);
        let net = b.build().unwrap();
        let analysis = AliasAnalysis::analyze(&net);
        assert_eq!(analysis.rank, 1);
        assert_eq!(analysis.nullspace_dim, 1);
        assert_eq!(analysis.identifiable_links, 0);
        assert_eq!(analysis.groups.len(), 1);
        let g = &analysis.groups[0];
        assert_eq!(g.links, vec![0, 1]);
        assert!(g.observed);
        assert_eq!(g.split_probe, vec![0]);
        assert_eq!(analysis.group_sets(), ground_truth_alias_sets(&net));

        // Adding the splitting probe dissolves the group.
        let mut b = NetworkBuilder::new();
        let e0 = b.add_link(NodeId(0), NodeId(1), AsId(0));
        let e1 = b.add_link(NodeId(1), NodeId(2), AsId(0));
        b.add_path(NodeId(0), NodeId(2), vec![e0, e1]);
        b.add_path(NodeId(0), NodeId(1), vec![e0]);
        let net = b.build().unwrap();
        let analysis = AliasAnalysis::analyze(&net);
        assert!(analysis.groups.is_empty());
        assert_eq!(analysis.identifiable_links, 2);
        assert!(ground_truth_alias_sets(&net).is_empty());
    }

    #[test]
    fn unobserved_links_form_an_unobserved_group() {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_link(NodeId(0), NodeId(1), AsId(0));
        let _e1 = b.add_link(NodeId(1), NodeId(2), AsId(0));
        let _e2 = b.add_link(NodeId(2), NodeId(3), AsId(0));
        b.add_path(NodeId(0), NodeId(1), vec![e0]);
        let net = b.build().unwrap();
        let analysis = AliasAnalysis::analyze(&net);
        assert_eq!(analysis.groups.len(), 1);
        let g = &analysis.groups[0];
        assert_eq!(g.links, vec![1, 2]);
        assert!(!g.observed);
        assert_eq!(analysis.group_sets(), ground_truth_alias_sets(&net));
    }

    #[test]
    fn ground_truth_ignores_singletons() {
        let net = toy::fig1_case2();
        for group in ground_truth_alias_sets(&net) {
            assert!(group.len() >= 2);
        }
        let _ = LinkId(0);
    }
}
