//! Validated inline topology documents.
//!
//! A [`TopologyDoc`] is what a tenant uploads over the wire: an inline
//! [`Network`] (links, paths, correlation sets) plus optional link metadata
//! and a display name. Because `Network` derives `Deserialize`, raw JSON
//! decoding **bypasses** every invariant [`tomo_graph::NetworkBuilder`]
//! enforces — a hand-written document can reference links that do not exist,
//! contain looping paths, or assign one link to two correlation sets. The
//! checker here routes the document back through the builder, so a document
//! that validates produces a `Network` indistinguishable from a
//! generator-built one, and the serving layer never instantiates an
//! unchecked topology.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

use tomo_graph::{Network, NetworkBuilder};

/// Errors of topology ingestion: parse failures and structural violations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopoError {
    /// The document is not syntactically a topology document.
    Parse(String),
    /// The document parsed but violates a model invariant.
    Invalid(String),
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::Parse(m) => write!(f, "topology document does not parse: {m}"),
            TopoError::Invalid(m) => write!(f, "invalid topology: {m}"),
        }
    }
}

impl std::error::Error for TopoError {}

/// Optional per-link annotation carried alongside the structure (interface
/// names, capacities — anything the operator wants to keep with the link).
/// Metadata never participates in the dedup hash: two uploads of the same
/// structure deduplicate even when their labels differ.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkMetadata {
    /// Index of the annotated link.
    pub link: usize,
    /// Free-form label.
    pub label: String,
}

/// An inline topology document: the network structure plus optional
/// metadata.
///
/// On the wire a document is accepted in two shapes: the full form
/// `{"name": ..., "network": {...}, "link_metadata": [...]}` and, for
/// convenience, a bare `Network` object (exactly what
/// `serde_json::to_string(&network)` produces — so a file written from a
/// generator round-trips without wrapping).
#[derive(Clone, Debug, PartialEq)]
pub struct TopologyDoc {
    /// Optional display name.
    pub name: Option<String>,
    /// The uploaded structure, as parsed (NOT yet validated — call
    /// [`TopologyDoc::validate`] or [`TopologyDoc::to_network`]).
    pub network: Network,
    /// Optional per-link annotations.
    pub link_metadata: Vec<LinkMetadata>,
}

impl Serialize for TopologyDoc {
    fn to_value(&self) -> Value {
        let mut fields = Vec::with_capacity(3);
        if let Some(name) = &self.name {
            fields.push(("name".to_string(), name.to_value()));
        }
        fields.push(("network".to_string(), self.network.to_value()));
        if !self.link_metadata.is_empty() {
            fields.push(("link_metadata".to_string(), self.link_metadata.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for TopologyDoc {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::Object(_) if v.get("network").is_some() => Ok(Self {
                name: serde::object_field(v, "name")?,
                network: serde::object_field(v, "network")?,
                link_metadata: serde::object_field::<Option<Vec<LinkMetadata>>>(
                    v,
                    "link_metadata",
                )?
                .unwrap_or_default(),
            }),
            // Bare `Network` form.
            Value::Object(_) => Ok(Self {
                name: None,
                network: Network::from_value(v)?,
                link_metadata: Vec::new(),
            }),
            other => Err(serde::Error::expected("topology document object", other)),
        }
    }
}

/// What the structural checker reports about a validated document: size,
/// coverage, and the canonical dedup hash.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologyReport {
    /// Number of links.
    pub links: usize,
    /// Number of measurement paths.
    pub paths: usize,
    /// Number of correlation sets.
    pub correlation_sets: usize,
    /// Links no path traverses (they can never be observed).
    pub unobserved_links: usize,
    /// Mean links per path.
    pub mean_path_length: f64,
    /// Mean paths per link (the density indicator sparse topologies score
    /// low on).
    pub mean_paths_per_link: f64,
    /// Canonical structure hash (`fnv1a:<16 hex digits>`): identical for any
    /// two documents with the same links/paths/correlation structure,
    /// regardless of name or metadata. The registry deduplicates uploads on
    /// it.
    pub hash: String,
}

impl TopologyDoc {
    /// Wraps an already-built network (used by clients uploading a
    /// generator topology, and by tests).
    pub fn from_network(network: Network) -> Self {
        Self {
            name: None,
            network,
            link_metadata: Vec::new(),
        }
    }

    /// Parses a document from JSON text (full or bare-network form).
    pub fn parse(json: &str) -> Result<Self, TopoError> {
        serde_json::from_str(json).map_err(|e| TopoError::Parse(e.to_string()))
    }

    /// Runs the structural checker and returns the coverage report.
    ///
    /// Checks, in order: link and path ids are dense and in positional
    /// order; metadata references existing links; and the whole structure
    /// survives a rebuild through [`NetworkBuilder`] (non-empty, loop-free
    /// paths over existing links, the correlation sets partition the links).
    pub fn validate(&self) -> Result<TopologyReport, TopoError> {
        let network = self.to_network()?;
        Ok(report_of(&network))
    }

    /// Validates the document and returns the rebuilt, invariant-checked
    /// [`Network`] — the only `Network` the serving layer should
    /// instantiate from an upload.
    pub fn to_network(&self) -> Result<Network, TopoError> {
        for (i, link) in self.network.links().iter().enumerate() {
            if link.id.index() != i {
                return Err(TopoError::Invalid(format!(
                    "link at position {i} declares id {} (link ids must be dense and in order)",
                    link.id
                )));
            }
        }
        for (i, path) in self.network.paths().iter().enumerate() {
            if path.id.index() != i {
                return Err(TopoError::Invalid(format!(
                    "path at position {i} declares id {} (path ids must be dense and in order)",
                    path.id
                )));
            }
        }
        for meta in &self.link_metadata {
            if meta.link >= self.network.num_links() {
                return Err(TopoError::Invalid(format!(
                    "link_metadata references link {} but the document has {} links",
                    meta.link,
                    self.network.num_links()
                )));
            }
        }
        let mut builder = NetworkBuilder::new();
        for link in self.network.links() {
            builder.add_link_with_routers(link.from, link.to, link.asn, link.router_links.clone());
        }
        for path in self.network.paths() {
            builder.add_path(path.src, path.dst, path.links.clone());
        }
        builder.correlation_sets(
            self.network
                .correlation_sets()
                .iter()
                .map(|s| s.links.clone())
                .collect(),
        );
        builder
            .build()
            .map_err(|e| TopoError::Invalid(e.to_string()))
    }

    /// The canonical dedup hash of the document's structure (equal to the
    /// validated report's [`TopologyReport::hash`]).
    pub fn dedup_hash(&self) -> String {
        canonical_hash(&self.network)
    }
}

/// Builds the coverage report of an (already validated) network. Callers
/// holding a builder-produced `Network` (a generator topology, a validated
/// upload, a restored session) use this to derive the report without paying
/// for a second rebuild through [`NetworkBuilder`].
pub fn report_of(network: &Network) -> TopologyReport {
    TopologyReport {
        links: network.num_links(),
        paths: network.num_paths(),
        correlation_sets: network.correlation_sets().len(),
        unobserved_links: network.unobserved_links().len(),
        mean_path_length: network.mean_path_length(),
        mean_paths_per_link: network.mean_paths_per_link(),
        hash: canonical_hash(network),
    }
}

/// FNV-1a 64-bit over a canonical rendering of the structure: every link's
/// endpoints/AS/router-links, every path's endpoints and link sequence, and
/// the correlation partition (sets are stored sorted+deduped, so the
/// rendering is canonical without re-sorting). Names and metadata are
/// excluded by construction.
fn canonical_hash(network: &Network) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut fold = |n: usize| {
        for byte in (n as u64).to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    fold(network.num_links());
    for link in network.links() {
        fold(link.from.index());
        fold(link.to.index());
        fold(link.asn.index());
        fold(link.router_links.len());
        for r in &link.router_links {
            fold(r.index());
        }
    }
    fold(network.num_paths());
    for path in network.paths() {
        fold(path.src.index());
        fold(path.dst.index());
        fold(path.links.len());
        for l in &path.links {
            fold(l.index());
        }
    }
    fold(network.correlation_sets().len());
    for set in network.correlation_sets() {
        fold(set.links.len());
        for l in &set.links {
            fold(l.index());
        }
    }
    format!("fnv1a:{h:016x}")
}

/// Convenience: reads, parses and validates a topology file, returning the
/// rebuilt network and its report.
pub fn load_and_validate(path: &str) -> Result<(Network, TopologyReport), TopoError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| TopoError::Parse(format!("cannot read `{path}`: {e}")))?;
    let doc = TopologyDoc::parse(&text)?;
    let network = doc.to_network()?;
    let report = report_of(&network);
    Ok((network, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_graph::{toy, AsId, NodeId};

    fn toy_doc() -> TopologyDoc {
        TopologyDoc::from_network(toy::fig1_case1())
    }

    #[test]
    fn valid_document_rebuilds_the_same_structure() {
        let doc = toy_doc();
        let report = doc.validate().expect("toy validates");
        assert_eq!(report.links, 4);
        assert_eq!(report.paths, 3);
        assert_eq!(report.unobserved_links, 0);
        let rebuilt = doc.to_network().unwrap();
        assert_eq!(rebuilt.num_links(), doc.network.num_links());
        assert_eq!(rebuilt.paths(), doc.network.paths());
        assert_eq!(rebuilt.correlation_sets(), doc.network.correlation_sets());
    }

    #[test]
    fn wire_round_trip_full_and_bare_forms() {
        let mut doc = toy_doc();
        doc.name = Some("fig1".into());
        doc.link_metadata = vec![LinkMetadata {
            link: 0,
            label: "AS1 uplink".into(),
        }];
        let json = serde_json::to_string(&doc).unwrap();
        let back = TopologyDoc::parse(&json).unwrap();
        assert_eq!(back, doc);

        // A bare Network JSON (what `gen --dump-topology` writes) parses too.
        let bare = serde_json::to_string(&toy::fig1_case1()).unwrap();
        let from_bare = TopologyDoc::parse(&bare).unwrap();
        assert_eq!(from_bare.name, None);
        assert_eq!(from_bare.network.num_links(), 4);
        assert!(from_bare.validate().is_ok());
    }

    #[test]
    fn hash_ignores_names_and_metadata_but_not_structure() {
        let plain = toy_doc();
        let mut labelled = toy_doc();
        labelled.name = Some("prod".into());
        labelled.link_metadata = vec![LinkMetadata {
            link: 1,
            label: "x".into(),
        }];
        assert_eq!(plain.dedup_hash(), labelled.dedup_hash());

        let other = TopologyDoc::from_network(toy::fig1_case2());
        assert_ne!(plain.dedup_hash(), other.dedup_hash());
        assert!(plain.dedup_hash().starts_with("fnv1a:"));
    }

    #[test]
    fn checker_rejects_what_raw_serde_accepts() {
        // A path referencing a link that does not exist: `Network`'s serde
        // derive happily decodes it; the checker must not.
        let mut json = serde_json::to_string(&toy::fig1_case1()).unwrap();
        json = json.replace("\"links\":[0,1]", "\"links\":[0,99]");
        let doc = TopologyDoc::parse(&json).expect("raw decode succeeds");
        let err = doc.validate().unwrap_err();
        assert!(matches!(err, TopoError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("e99"), "{err}");
    }

    #[test]
    fn checker_rejects_non_dense_ids_and_bad_metadata() {
        let net = toy::fig1_case1();
        let mut doc = TopologyDoc::from_network(net);
        doc.link_metadata = vec![LinkMetadata {
            link: 9,
            label: "ghost".into(),
        }];
        assert!(doc.validate().is_err());
    }

    #[test]
    fn empty_network_is_invalid() {
        // Builder-level emptiness surfaces as Invalid, not a panic.
        let mut b = NetworkBuilder::new();
        b.add_link(NodeId(0), NodeId(1), AsId(0));
        // No paths: builder rejects; simulate via a doc with a path-less
        // network is impossible through the builder, so go through JSON.
        let json = r#"{"links":[{"id":0,"from":0,"to":1,"asn":0,"router_links":[]}],"paths":[],"correlation_sets":[{"id":0,"links":[0]}],"link_paths":[[]],"link_set":[0]}"#;
        let doc = TopologyDoc::parse(json).unwrap();
        assert!(matches!(doc.validate(), Err(TopoError::Invalid(_))));
    }

    #[test]
    fn load_and_validate_reads_files() {
        let dir = std::env::temp_dir().join("tomo-topo-doc-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.json");
        std::fs::write(&path, serde_json::to_string(&toy::fig1_case1()).unwrap()).unwrap();
        let (net, report) = load_and_validate(path.to_str().unwrap()).unwrap();
        assert_eq!(net.num_links(), 4);
        assert_eq!(report.paths, 3);
        assert!(load_and_validate("/nonexistent/topo.json").is_err());
    }

    #[test]
    fn link_id_is_used_in_checker_errors() {
        // Dense-id violation names the offender.
        let json = serde_json::to_string(&toy::fig1_case1())
            .unwrap()
            .replacen("\"id\":0", "\"id\":3", 1);
        let doc = TopologyDoc::parse(&json).unwrap();
        let err = doc.to_network().unwrap_err().to_string();
        assert!(err.contains("position 0"), "{err}");
    }
}
