//! Property: alias sets recovered from the identifiability null-space basis
//! exactly match the ground-truth indistinguishable groups — links sharing
//! identical path-incidence columns — on generated Brite/Sparse topologies
//! and on arbitrary random networks.

use proptest::prelude::*;
use tomo_graph::{AsId, LinkId, Network, NetworkBuilder, NodeId};
use tomo_topo::{ground_truth_alias_sets, AliasAnalysis};
use tomo_topology::{BriteConfig, BriteGenerator, SparseConfig, SparseGenerator};

fn assert_alias_sets_match(net: &Network) {
    let analysis = AliasAnalysis::analyze(net);
    let truth = ground_truth_alias_sets(net);
    assert_eq!(
        analysis.group_sets(),
        truth,
        "alias analysis disagrees with path-incidence grouping \
         ({} links, {} paths, nullspace dim {})",
        net.num_links(),
        net.num_paths(),
        analysis.nullspace_dim
    );
    // Sanity on the accompanying facts: rank + nullity = num links, the
    // nullity agrees with the batch null space of the routing matrix (the
    // incremental fold and its orthonormalization must not silently drop
    // dimensions), and no identifiable link can sit in an alias group.
    assert_eq!(analysis.rank + analysis.nullspace_dim, net.num_links());
    let rows = net.routing_matrix();
    let mut a = tomo_linalg::Matrix::zeros(rows.len(), net.num_links());
    for (i, row) in rows.iter().enumerate() {
        for (j, &x) in row.iter().enumerate() {
            a[(i, j)] = x;
        }
    }
    assert_eq!(
        analysis.nullspace_dim,
        tomo_linalg::nullspace(&a).cols(),
        "nullity disagrees with the batch null space"
    );
    let aliased: usize = analysis.groups.iter().map(|g| g.links.len()).sum();
    assert!(analysis.identifiable_links + aliased <= net.num_links());
    for g in &analysis.groups {
        assert!(g.links.len() >= 2);
        assert!(!g.split_probe.is_empty());
        assert!(g.split_probe.iter().all(|l| g.links.contains(l)));
    }
}

/// Random small networks in the same style as tomo-graph's proptests.
fn arb_network(max_links: usize, max_paths: usize) -> impl Strategy<Value = Network> {
    (2..=max_links, 1..=max_paths)
        .prop_flat_map(|(n_links, n_paths)| {
            let paths = proptest::collection::vec(
                proptest::collection::btree_set(0..n_links, 1..=n_links.min(4)),
                n_paths,
            );
            (Just(n_links), paths)
        })
        .prop_map(|(n_links, paths)| {
            let mut b = NetworkBuilder::new();
            for i in 0..n_links {
                b.add_link(NodeId(i), NodeId(i + 1), AsId(i % 3));
            }
            for (pi, links) in paths.iter().enumerate() {
                let link_ids: Vec<LinkId> = links.iter().map(|&l| LinkId(l)).collect();
                b.add_path(NodeId(pi), NodeId(pi + 1000), link_ids);
            }
            b.build().expect("generated networks are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alias_sets_match_ground_truth_on_random_networks(
        net in arb_network(10, 8)
    ) {
        assert_alias_sets_match(&net);
    }

    #[test]
    fn alias_sets_match_ground_truth_on_brite(seed in 0u64..1024) {
        let net = BriteGenerator::new(BriteConfig::tiny(seed))
            .generate()
            .expect("brite generation succeeds");
        assert_alias_sets_match(&net);
    }

    #[test]
    fn alias_sets_match_ground_truth_on_sparse(seed in 0u64..1024) {
        let net = SparseGenerator::new(SparseConfig::tiny(seed))
            .generate()
            .expect("sparse generation succeeds");
        assert_alias_sets_match(&net);
    }
}
