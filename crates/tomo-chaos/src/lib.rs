//! Fault injection for the tomography stack.
//!
//! Production tomography monitors are judged on how fast they *notice*
//! regime changes, not only on terminal accuracy. This crate is the shared
//! vocabulary and the wire-level tooling for causing such regime changes on
//! purpose:
//!
//! * [`fault`] — the [`FaultKind`] / [`FaultEvent`] taxonomy. The simulator
//!   dynamics in `tomo-sim` (Gilbert–Elliott bursts, SRLG cascades, flapping
//!   links, diurnal load) emit these events as they mutate the congestion
//!   model, and the reaction-scoring module in `tomo-metrics` consumes them
//!   to compute per-event detection latency, time-to-reconverge and the
//!   mid-fault error integral. Events use plain `usize` link indices so this
//!   crate stays dependency-light and both sides can depend on it.
//! * [`proxy`] — [`ChaosProxy`], a line-oriented TCP proxy that sits between
//!   `probe-client` and a daemon/router and injects observation-line loss,
//!   reordering, duplication, delay jitter and mid-stream connection resets
//!   at configurable rates. All injection decisions come from a
//!   splitmix-derived generator seeded per connection, never from timing, so
//!   a chaos run's injected fault pattern is reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod proxy;

pub use fault::{FaultEvent, FaultKind};
pub use proxy::{ChaosConfig, ChaosCounters, ChaosProxy};
