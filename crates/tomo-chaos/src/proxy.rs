//! A deterministic line-oriented chaos proxy.
//!
//! [`ChaosProxy`] listens on a loopback port and forwards each accepted
//! connection to a fixed upstream address (a `tomo-serve` daemon or router).
//! Client → upstream traffic is treated as a stream of newline-delimited
//! request lines and mutated per line: dropped, reordered (held back one
//! line), duplicated, delayed, or the whole connection reset mid-stream.
//! Upstream → client traffic passes through untouched, so daemon responses
//! are never corrupted by the proxy itself — any framing damage a chaos run
//! observes was caused by the *daemon* mishandling the mutated input, which
//! is exactly what the chaos tests are after.
//!
//! Lines are only ever forwarded whole (never split mid-line), so the
//! mutations model a lossy, reordering transport above the framing layer —
//! the failure mode a tomography monitor actually faces when observation
//! streams cross a WAN.
//!
//! Every injection decision is drawn from a splitmix64 stream seeded by
//! `hash(config.seed, connection_index)`: the injected pattern depends only
//! on the seed and on each connection's line sequence, never on timing.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Injection rates and the seed of a [`ChaosProxy`]. All rates are
/// per-line probabilities in `[0, 1]`; a default config injects nothing.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Seed of the per-connection decision streams.
    pub seed: u64,
    /// Probability of dropping a client line (observation-line loss).
    pub drop_rate: f64,
    /// Probability of holding a client line back and delivering it after
    /// its successor (adjacent reordering).
    pub reorder_rate: f64,
    /// Probability of delivering a client line twice.
    pub dup_rate: f64,
    /// Probability of delaying a client line.
    pub delay_rate: f64,
    /// Maximum delay jitter applied to a delayed line, in milliseconds
    /// (the actual delay is drawn uniformly from `0..=delay_ms`).
    pub delay_ms: u64,
    /// Probability of resetting the connection at a line boundary.
    pub reset_rate: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            drop_rate: 0.0,
            reorder_rate: 0.0,
            dup_rate: 0.0,
            delay_rate: 0.0,
            delay_ms: 0,
            reset_rate: 0.0,
        }
    }
}

impl ChaosConfig {
    /// Validates that every rate is a probability.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("drop_rate", self.drop_rate),
            ("reorder_rate", self.reorder_rate),
            ("dup_rate", self.dup_rate),
            ("delay_rate", self.delay_rate),
            ("reset_rate", self.reset_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        Ok(())
    }
}

/// Counts of what the proxy injected, as one serializable snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosCounters {
    /// Connections accepted.
    pub connections: u64,
    /// Client lines forwarded upstream (duplicate copies included).
    pub forwarded: u64,
    /// Client lines dropped.
    pub dropped: u64,
    /// Client lines held back and delivered out of order.
    pub reordered: u64,
    /// Client lines delivered twice.
    pub duplicated: u64,
    /// Client lines delayed.
    pub delayed: u64,
    /// Connections reset mid-stream.
    pub resets: u64,
}

#[derive(Default)]
struct AtomicCounters {
    connections: AtomicU64,
    forwarded: AtomicU64,
    dropped: AtomicU64,
    reordered: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    resets: AtomicU64,
}

impl AtomicCounters {
    fn snapshot(&self) -> ChaosCounters {
        ChaosCounters {
            connections: self.connections.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
        }
    }
}

/// SplitMix64 step — the same generator family the sweep engine derives
/// seeds with, so chaos decisions share the workspace's determinism story.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from the top 53 bits.
fn uniform(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn chance(state: &mut u64, rate: f64) -> bool {
    rate > 0.0 && uniform(state) < rate
}

struct Inner {
    config: ChaosConfig,
    upstream: String,
    counters: AtomicCounters,
    stopping: AtomicBool,
    conn_seq: AtomicU64,
}

/// A running chaos proxy. Dropping the handle leaves the accept thread
/// running until [`ChaosProxy::shutdown`] (or process exit); smoke harnesses
/// hold it for the duration of the run.
pub struct ChaosProxy {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds a loopback listener and starts proxying to `upstream`.
    pub fn start(upstream: impl Into<String>, config: ChaosConfig) -> std::io::Result<ChaosProxy> {
        config
            .validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            config,
            upstream: upstream.into(),
            counters: AtomicCounters::default(),
            stopping: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_inner.stopping.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = stream else { continue };
                let conn_index = accept_inner.conn_seq.fetch_add(1, Ordering::SeqCst);
                accept_inner
                    .counters
                    .connections
                    .fetch_add(1, Ordering::Relaxed);
                let conn_inner = Arc::clone(&accept_inner);
                std::thread::spawn(move || handle_connection(client, conn_index, conn_inner));
            }
        });
        Ok(ChaosProxy {
            addr,
            inner,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address (point probe clients here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the injection counters.
    pub fn counters(&self) -> ChaosCounters {
        self.inner.counters.snapshot()
    }

    /// Stops accepting new connections and joins the accept thread.
    /// Established connections keep draining until their endpoints close.
    pub fn shutdown(mut self) -> ChaosCounters {
        self.inner.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.inner.counters.snapshot()
    }
}

/// Pumps one proxied connection: responses pass through verbatim, request
/// lines run the injection gauntlet.
fn handle_connection(client: TcpStream, conn_index: u64, inner: Arc<Inner>) {
    let Ok(upstream) = TcpStream::connect(&inner.upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let (Ok(client_read), Ok(upstream_read)) = (client.try_clone(), upstream.try_clone()) else {
        return;
    };

    // Upstream → client: verbatim pass-through on its own thread.
    let mut client_write = client;
    std::thread::spawn(move || {
        let mut reader = BufReader::new(upstream_read);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    if client_write.write_all(line.as_bytes()).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = client_write.shutdown(Shutdown::Both);
    });

    // Client → upstream: the mutating direction.
    let cfg = inner.config;
    let mut decisions = cfg.seed ^ conn_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut reader = BufReader::new(client_read);
    let mut upstream_write = upstream;
    let mut held: Option<String> = None;
    let mut line = String::new();
    loop {
        line.clear();
        let n = match reader.read_line(&mut line) {
            Ok(n) => n,
            Err(_) => break,
        };
        if n == 0 {
            // Client closed: flush any held line, then close upstream.
            if let Some(h) = held.take() {
                forward(&mut upstream_write, &h, &inner);
            }
            break;
        }
        if chance(&mut decisions, cfg.reset_rate) {
            inner.counters.resets.fetch_add(1, Ordering::Relaxed);
            let _ = upstream_write.shutdown(Shutdown::Both);
            return;
        }
        if chance(&mut decisions, cfg.drop_rate) {
            inner.counters.dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if chance(&mut decisions, cfg.delay_rate) && cfg.delay_ms > 0 {
            inner.counters.delayed.fetch_add(1, Ordering::Relaxed);
            let jitter = splitmix64(&mut decisions) % (cfg.delay_ms + 1);
            std::thread::sleep(Duration::from_millis(jitter));
        }
        if held.is_none() && chance(&mut decisions, cfg.reorder_rate) {
            // Hold this line back; it goes out after the next one.
            inner.counters.reordered.fetch_add(1, Ordering::Relaxed);
            held = Some(std::mem::take(&mut line));
            continue;
        }
        let dup = chance(&mut decisions, cfg.dup_rate);
        if !forward(&mut upstream_write, &line, &inner) {
            break;
        }
        if dup {
            inner.counters.duplicated.fetch_add(1, Ordering::Relaxed);
            if !forward(&mut upstream_write, &line, &inner) {
                break;
            }
        }
        if let Some(h) = held.take() {
            if !forward(&mut upstream_write, &h, &inner) {
                break;
            }
        }
    }
    let _ = upstream_write.shutdown(Shutdown::Write);
}

/// Forwards one whole line upstream; returns false when the upstream side
/// is gone.
fn forward(upstream: &mut TcpStream, line: &str, inner: &Inner) -> bool {
    if upstream.write_all(line.as_bytes()).is_err() {
        return false;
    }
    inner.counters.forwarded.fetch_add(1, Ordering::Relaxed);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_stream_is_deterministic() {
        let mut a = 7u64;
        let mut b = 7u64;
        for _ in 0..100 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
            let u = uniform(&mut a);
            let _ = uniform(&mut b);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rates_are_validated() {
        let mut cfg = ChaosConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.drop_rate = 1.5;
        assert!(cfg.validate().is_err());
        cfg.drop_rate = 0.5;
        cfg.reset_rate = -0.1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_rates_never_fire() {
        let mut state = 3u64;
        for _ in 0..1000 {
            assert!(!chance(&mut state, 0.0));
        }
    }
}
