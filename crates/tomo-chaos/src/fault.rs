//! The fault taxonomy: what kinds of injected faults exist and the
//! machine-readable per-event record every injector emits.

use serde::{Deserialize, Serialize};

/// Every fault the chaos subsystem can inject.
///
/// The first seven are *model-level* faults: the simulator's adversarial
/// [`ProbabilityEvolution`](https://docs.rs/) variants emit them as they
/// mutate the congestion model between epochs. The last five are
/// *wire-level* faults injected by the [`ChaosProxy`](crate::ChaosProxy)
/// between a probe client and a daemon.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A Gilbert–Elliott driver transitioned good → bad: its links entered
    /// a loss burst.
    BurstStart,
    /// A Gilbert–Elliott driver transitioned bad → good: the burst ended.
    BurstEnd,
    /// A shared-risk link group failed: every member link's congestion
    /// probability jumped to the cascade's down level simultaneously.
    GroupFail,
    /// A shared-risk link group recovered to a fresh operating point.
    GroupRecover,
    /// A flapping link's duty cycle took it down.
    FlapDown,
    /// A flapping link's duty cycle brought it back up.
    FlapUp,
    /// A diurnal load curve crossed its peak or trough: congestion
    /// probabilities swung to the opposite phase of the cycle.
    LoadSwing,
    /// Wire: an observation line was dropped by the chaos proxy.
    LineDrop,
    /// Wire: an observation line was held back and delivered after its
    /// successor (reordering).
    LineReorder,
    /// Wire: an observation line was delivered twice.
    LineDupe,
    /// Wire: an observation line was delayed by a jittered amount.
    LineDelay,
    /// Wire: the proxied connection was reset mid-stream.
    ConnReset,
}

impl FaultKind {
    /// The model-level fault kinds (emitted by simulator dynamics).
    pub fn model_level() -> [FaultKind; 7] {
        [
            FaultKind::BurstStart,
            FaultKind::BurstEnd,
            FaultKind::GroupFail,
            FaultKind::GroupRecover,
            FaultKind::FlapDown,
            FaultKind::FlapUp,
            FaultKind::LoadSwing,
        ]
    }

    /// The wire-level fault kinds (injected by the chaos proxy).
    pub fn wire_level() -> [FaultKind; 5] {
        [
            FaultKind::LineDrop,
            FaultKind::LineReorder,
            FaultKind::LineDupe,
            FaultKind::LineDelay,
            FaultKind::ConnReset,
        ]
    }

    /// A short stable label for tables and JSONL reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::BurstStart => "burst-start",
            FaultKind::BurstEnd => "burst-end",
            FaultKind::GroupFail => "group-fail",
            FaultKind::GroupRecover => "group-recover",
            FaultKind::FlapDown => "flap-down",
            FaultKind::FlapUp => "flap-up",
            FaultKind::LoadSwing => "load-swing",
            FaultKind::LineDrop => "line-drop",
            FaultKind::LineReorder => "line-reorder",
            FaultKind::LineDupe => "line-dupe",
            FaultKind::LineDelay => "line-delay",
            FaultKind::ConnReset => "conn-reset",
        }
    }
}

/// One injected fault: what happened, when, and which links it touched.
///
/// Model-level events are stamped with the first measurement interval
/// governed by the post-fault model and the index of the epoch that begins
/// there; the affected links are plain indices (`LinkId::index()` values) so
/// consumers need no graph types.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// What was injected.
    pub kind: FaultKind,
    /// First measurement interval at which the fault is in effect.
    pub interval: usize,
    /// Epoch index the fault begins (0 = the initial epoch).
    pub epoch: usize,
    /// Affected link indices (empty for wire-level faults, which hit the
    /// transport rather than specific links).
    pub links: Vec<usize>,
}

impl FaultEvent {
    /// A model-level event.
    pub fn model(kind: FaultKind, interval: usize, epoch: usize, links: Vec<usize>) -> Self {
        Self {
            kind,
            interval,
            epoch,
            links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for kind in FaultKind::model_level()
            .into_iter()
            .chain(FaultKind::wire_level())
        {
            assert!(!kind.label().is_empty());
            assert!(
                seen.insert(kind.label()),
                "duplicate label {}",
                kind.label()
            );
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn events_round_trip_through_json() {
        let e = FaultEvent::model(FaultKind::GroupFail, 40, 2, vec![3, 7]);
        let json = serde_json::to_string(&e).unwrap();
        let back: FaultEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.kind.label(), "group-fail");
    }
}
