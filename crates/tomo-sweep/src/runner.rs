//! Executes a [`SweepGrid`] across the thread pool and renders the results
//! as JSON lines.

use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use tomo_core::{Pipeline, TomoError};
use tomo_graph::Network;
use tomo_metrics::{FaultReaction, ReactionConfig};

use crate::grid::{SweepGrid, SweepTask};
use crate::pool::parallel_map;
use crate::spec::EstimatorSpec;

/// The scored result of one sweep cell — one JSON line of the report.
///
/// Metric fields are `null` when the estimator lacks the capability (e.g.
/// the Boolean-Inference baselines produce no probability error, the pure
/// Probability-Computation algorithms no detection rate).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepRecord {
    /// Task index in the grid's canonical order.
    pub task: usize,
    /// Topology label (`Toy` / `Brite` / `Sparse`).
    pub topology: String,
    /// Scenario label, as in the paper's figures.
    pub scenario: String,
    /// Estimator display name.
    pub estimator: String,
    /// Number of measurement intervals.
    pub intervals: usize,
    /// Seed-axis value of the cell.
    pub seed: u64,
    /// Derived simulation seed (`hash(base_seed, sim_cell)`; shared by the
    /// cells that differ only in estimator).
    pub sim_seed: u64,
    /// Number of measured links in the generated instance.
    pub links: usize,
    /// Number of measurement paths in the generated instance.
    pub paths: usize,
    /// Mean absolute error of the per-link congestion probabilities
    /// (probability capability only).
    pub mean_abs_error: Option<f64>,
    /// Maximum absolute error (probability capability only).
    pub max_abs_error: Option<f64>,
    /// Per-interval detection rate (inference capability only).
    pub detection_rate: Option<f64>,
    /// Per-interval false-positive rate (inference capability only).
    pub false_positive_rate: Option<f64>,
    /// The scenario's dynamics label (`"stationary"`, `"redraw"`,
    /// `"gilbert-elliott(0.1,0.3)"`, ...) — what actually evolved the
    /// congestion process in this cell. `Option` only so records written
    /// before the field existed still parse.
    pub evolution: Option<String>,
    /// Per-fault reaction timeline (streaming cells with reaction scoring on
    /// a fault-injecting scenario only): detection latency, reconvergence
    /// latency and mid-fault error integral per injected `FaultEvent`.
    pub reactions: Option<Vec<FaultReaction>>,
    /// p50 of the detection latencies over detected faults, in intervals.
    pub detection_p50: Option<usize>,
    /// p95 of the detection latencies over detected faults, in intervals.
    pub detection_p95: Option<usize>,
    /// p50 of the reconvergence latencies over reconverged faults.
    pub reconverge_p50: Option<usize>,
    /// p95 of the reconvergence latencies over reconverged faults.
    pub reconverge_p95: Option<usize>,
    /// Total mid-fault L∞ error integral over all scored faults.
    pub mid_fault_error: Option<f64>,
}

impl SweepRecord {
    /// Renders the record as one compact JSON line.
    pub fn to_json_line(&self) -> String {
        tomo_core::jsonl::encode_line(self)
    }
}

/// Everything a sweep produced: per-cell records in task order, plus timing
/// metadata (kept out of the JSON-lines rendering so the report bytes stay
/// identical across thread counts).
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// One record per grid cell, in task order.
    pub records: Vec<SweepRecord>,
    /// Thread count the sweep ran with.
    pub threads: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl SweepReport {
    /// Renders the report as JSON lines (one record per line, task order)
    /// via the shared [`tomo_core::jsonl`] framing. This rendering is
    /// byte-identical across thread counts for a fixed grid and base seed.
    pub fn to_jsonl(&self) -> String {
        tomo_core::jsonl::encode_lines(&self.records)
    }

    /// A one-line human summary (includes timing, so not deterministic).
    pub fn summary(&self) -> String {
        let secs = self.elapsed.as_secs_f64();
        let rate = if secs > 0.0 {
            self.records.len() as f64 / secs
        } else {
            f64::INFINITY
        };
        format!(
            "{} tasks on {} thread(s) in {:.2}s ({:.1} tasks/s)",
            self.records.len(),
            self.threads,
            secs,
            rate
        )
    }
}

/// Runs sweep grids over the chunked work-stealing pool.
#[derive(Clone, Debug)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner sized to the machine's available parallelism.
    pub fn new() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker-thread count.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Validates the grid and runs every cell, returning records in task
    /// order. Fails fast on the first cell error; a panicking cell surfaces
    /// as [`TomoError::TaskPanic`].
    pub fn run(&self, grid: &SweepGrid) -> Result<SweepReport, TomoError> {
        grid.validate()?;
        let tasks = grid.tasks();
        let start = Instant::now();
        // Generate each distinct (topology, axis-seed) instance exactly once
        // (in parallel): every cell differing only in scenario, estimator or
        // interval count reuses the same network instead of regenerating it.
        let combos: Vec<(usize, u64)> = (0..grid.topologies.len())
            .flat_map(|t| grid.seeds.iter().map(move |&s| (t, s)))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let generated = parallel_map(&combos, self.threads, |_, &(t, s)| {
            grid.topologies[t].generate(s)
        })?;
        let networks: HashMap<(usize, u64), Network> = combos.into_iter().zip(generated).collect();
        let records = parallel_map(&tasks, self.threads, |_, task| {
            run_task(grid, task, &networks[&(task.topology, task.seed)])
        })?;
        Ok(SweepReport {
            records,
            threads: self.threads,
            elapsed: start.elapsed(),
        })
    }
}

/// Executes one grid cell: simulate the scenario on the (pre-generated)
/// network, evaluate the estimator, and flatten the outcome into a
/// [`SweepRecord`].
fn run_task(
    grid: &SweepGrid,
    task: &SweepTask,
    network: &Network,
) -> Result<SweepRecord, TomoError> {
    let (links, paths) = (network.num_links(), network.num_paths());
    let sim_seed = task.sim_seed(grid.base_seed);
    let scenario = grid.scenario_config(task.scenario);
    let evolution = scenario.evolution_label();
    let spec = EstimatorSpec::parse(&task.estimator)?;

    let pipeline = Pipeline::on(network.clone())
        .scenario(scenario)
        .intervals(task.intervals)
        .measurement(grid.measurement)
        .seed(sim_seed);
    let (outcome, reactions) = match grid.streaming_chunk {
        // Streaming mode: the same simulated data, ingested through a
        // TomographySession in chunks (the daemon's code path), scored on
        // the final estimate — and, with a reaction band configured, on how
        // fast the session reacted to each injected fault.
        Some(chunk) => {
            let experiment = pipeline.simulate()?;
            let mut session = tomo_core::TomographySession::new(
                network.clone(),
                spec.session_config(grid.estimator_options()),
            )?;
            let reaction = grid.reaction_band.map(|band| ReactionConfig { band });
            experiment.evaluate_streaming_with_reactions(&mut session, chunk, reaction)?
        }
        None => (
            pipeline
                .into_task(spec.name.as_str())
                .with_options(grid.estimator_options())
                .run()?,
            None,
        ),
    };

    // Keep the spec's knob suffix on the display name: the decayed and
    // plain variants of one estimator answer with the same online display
    // name, and the ranking needs to tell them apart.
    let estimator = match task.estimator.find('+') {
        Some(pos) => format!("{}{}", outcome.estimator, &task.estimator[pos..]),
        None => outcome.estimator,
    };

    Ok(SweepRecord {
        task: task.index,
        topology: grid.topologies[task.topology].label().to_string(),
        scenario: task.scenario.label().to_string(),
        estimator,
        intervals: task.intervals,
        seed: task.seed,
        sim_seed,
        links,
        paths,
        mean_abs_error: outcome.link_errors.as_ref().map(|e| e.mean()),
        max_abs_error: outcome.link_errors.as_ref().map(|e| e.max()),
        detection_rate: outcome.inference_score.as_ref().map(|s| s.detection_rate()),
        false_positive_rate: outcome
            .inference_score
            .as_ref()
            .map(|s| s.false_positive_rate()),
        evolution: Some(evolution),
        detection_p50: reactions.as_ref().and_then(|r| r.detection_percentile(0.5)),
        detection_p95: reactions
            .as_ref()
            .and_then(|r| r.detection_percentile(0.95)),
        reconverge_p50: reactions
            .as_ref()
            .and_then(|r| r.reconverge_percentile(0.5)),
        reconverge_p95: reactions
            .as_ref()
            .and_then(|r| r.reconverge_percentile(0.95)),
        mid_fault_error: reactions.as_ref().map(|r| r.total_mid_fault_error()),
        reactions: reactions.map(|r| r.reactions),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::TopologySpec;
    use tomo_sim::ScenarioKind;

    fn toy_grid() -> SweepGrid {
        SweepGrid::new()
            .topology(TopologySpec::Toy)
            .scenario(ScenarioKind::RandomCongestion)
            .scenario(ScenarioKind::NoIndependence)
            .estimator("sparsity")
            .estimator("correlation-complete")
            .interval_count(40)
            .seed_axis(0)
            .seed_axis(1)
    }

    #[test]
    fn records_carry_capability_matched_metrics() {
        let report = SweepRunner::new().threads(2).run(&toy_grid()).unwrap();
        assert_eq!(report.records.len(), 8);
        for r in &report.records {
            match r.estimator.as_str() {
                "Sparsity" => {
                    assert!(r.mean_abs_error.is_none());
                    assert!(r.detection_rate.is_some());
                }
                "Correlation-complete" => {
                    assert!(r.mean_abs_error.is_some());
                    assert!(r.detection_rate.is_none());
                }
                other => panic!("unexpected estimator {other}"),
            }
            assert_eq!(r.links, 4);
            assert_eq!(r.intervals, 40);
        }
    }

    #[test]
    fn jsonl_is_one_parseable_line_per_record() {
        let report = SweepRunner::new().threads(1).run(&toy_grid()).unwrap();
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 8);
        for (i, line) in lines.iter().enumerate() {
            let back: SweepRecord = serde_json::from_str(line).unwrap();
            assert_eq!(back.task, i);
        }
    }

    #[test]
    fn streaming_mode_matches_batch_scores_for_unbounded_sessions() {
        let batch = SweepRunner::new().threads(2).run(&toy_grid()).unwrap();
        let mut streaming_grid = toy_grid();
        streaming_grid.streaming_chunk = Some(7);
        let streaming = SweepRunner::new().threads(2).run(&streaming_grid).unwrap();
        assert_eq!(batch.records.len(), streaming.records.len());
        // An unbounded session that ingested everything scores like the
        // batch fit (to solver tolerance); only the display names differ
        // (the online forms of the estimators answer).
        for (a, b) in batch.records.iter().zip(&streaming.records) {
            match (a.mean_abs_error, b.mean_abs_error) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-5, "{x} vs {y}"),
                (None, None) => {}
                other => panic!("capability mismatch: {other:?}"),
            }
            match (a.detection_rate, b.detection_rate) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-12),
                (None, None) => {}
                other => panic!("capability mismatch: {other:?}"),
            }
        }
        // And the streaming report is itself deterministic across threads.
        let again = SweepRunner::new().threads(1).run(&streaming_grid).unwrap();
        assert_eq!(streaming.to_jsonl(), again.to_jsonl());
    }

    #[test]
    fn chaos_cells_score_reactions_and_stay_deterministic() {
        let grid = SweepGrid::new()
            .topology(TopologySpec::Toy)
            .scenario(ScenarioKind::FlappingLinks)
            .estimator("independence")
            .estimator("independence+decay:0.9")
            .interval_count(200)
            .seed_axis(0)
            .streaming(10)
            .reaction(0.15);
        let report = SweepRunner::new().threads(2).run(&grid).unwrap();
        assert_eq!(report.records.len(), 2);
        for r in &report.records {
            let evolution = r.evolution.as_deref().expect("evolution is logged");
            assert!(evolution.starts_with("flapping("), "{evolution}");
            let reactions = r.reactions.as_ref().expect("per-fault timeline");
            assert!(!reactions.is_empty());
            assert!(r.mid_fault_error.is_some());
        }
        // The knob suffix keeps the variants distinguishable in the JSONL.
        assert_ne!(report.records[0].estimator, report.records[1].estimator);
        assert!(report.records[1].estimator.ends_with("+decay:0.9"));
        // Reaction-scored sweeps stay byte-identical across thread counts.
        let again = SweepRunner::new().threads(1).run(&grid).unwrap();
        assert_eq!(report.to_jsonl(), again.to_jsonl());
    }

    #[test]
    fn stationary_cells_log_their_evolution_but_score_no_reactions() {
        let report = SweepRunner::new().threads(1).run(&toy_grid()).unwrap();
        for r in &report.records {
            assert_eq!(r.evolution.as_deref(), Some("stationary"));
            assert!(r.reactions.is_none());
            assert!(r.detection_p50.is_none());
            assert!(r.mid_fault_error.is_none());
        }
    }

    #[test]
    fn invalid_grids_are_rejected_before_running() {
        let err = SweepRunner::new().run(&SweepGrid::new()).unwrap_err();
        assert!(matches!(err, TomoError::InvalidConfig(_)));
    }

    #[test]
    fn summary_mentions_threads_and_tasks() {
        let report = SweepRunner::new().threads(3).run(&toy_grid()).unwrap();
        let s = report.summary();
        assert!(s.contains("8 tasks"), "{s}");
        assert!(s.contains("3 thread"), "{s}");
    }
}
