//! Sweep-grid description: the cartesian product of topologies × scenarios ×
//! estimators × interval counts × seeds, plus the deterministic per-task
//! seed derivation.

use serde::{Deserialize, Serialize};
use tomo_core::{EstimatorOptions, TomoError};
use tomo_graph::Network;
use tomo_sim::{MeasurementMode, ScenarioConfig, ScenarioKind};
use tomo_topology::{BriteConfig, BriteGenerator, SparseConfig, SparseGenerator};

/// SplitMix64-style hash combining a base seed and an index (a task's
/// simulation-cell index, or an axis seed) into a derived seed.
///
/// Tasks derive **all** their randomness from this value, never from worker
/// identity or scheduling, which is what makes sweep output bit-identical
/// regardless of thread count.
pub fn derive_seed(base_seed: u64, task_index: u64) -> u64 {
    let mut z = base_seed ^ task_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One topology axis value: which generator to run and with which
/// configuration. The spec's embedded generator seed is combined with the
/// task's seed-axis value (see [`TopologySpec::generate`]), so one spec
/// yields a family of instances across the seed axis.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum TopologySpec {
    /// The toy four-link topology of Fig. 1 — for cheap CI-scale grids.
    Toy,
    /// A BRITE-style dense topology.
    Brite(BriteConfig),
    /// A traceroute-derived sparse topology.
    Sparse(SparseConfig),
    /// A measured topology loaded from a validated topology-document file
    /// (bare `Network` JSON or a full `TopologyDoc`): the same instance on
    /// every seed-axis value, so sweeps run over real uploaded topologies
    /// exactly as the daemon serves them.
    Inline(String),
}

impl TopologySpec {
    /// The label used in sweep records.
    pub fn label(&self) -> &'static str {
        match self {
            TopologySpec::Toy => "Toy",
            TopologySpec::Brite(_) => "Brite",
            TopologySpec::Sparse(_) => "Sparse",
            TopologySpec::Inline(_) => "Inline",
        }
    }

    /// Generates the measured network for one seed-axis value. Cells that
    /// share a topology spec and axis seed (e.g. different estimators on the
    /// same instance) see the same network.
    pub fn generate(&self, axis_seed: u64) -> Result<Network, TomoError> {
        match self {
            TopologySpec::Toy => Ok(tomo_graph::toy::fig1_case1()),
            TopologySpec::Brite(config) => {
                let mut config = config.clone();
                config.seed = derive_seed(config.seed, axis_seed);
                Ok(BriteGenerator::new(config).generate()?)
            }
            TopologySpec::Sparse(config) => {
                let mut config = config.clone();
                config.seed = derive_seed(config.seed, axis_seed);
                Ok(SparseGenerator::new(config).generate()?)
            }
            // A measured file is one fixed instance: the axis seed only
            // varies the simulated scenario, never the network.
            TopologySpec::Inline(path) => {
                let (network, _report) = tomo_topo::doc::load_and_validate(path)
                    .map_err(|e| TomoError::InvalidConfig(e.to_string()))?;
                Ok(network)
            }
        }
    }
}

/// A cartesian experiment grid. Every combination of the five axes becomes
/// one [`SweepTask`]; the grid is plain data and round-trips through JSON,
/// so sweeps can be described in files and checked into CI.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepGrid {
    /// Base seed hashed with each task's simulation-cell index into its
    /// simulation seed (see [`SweepTask::sim_seed`]).
    pub base_seed: u64,
    /// Topology axis.
    pub topologies: Vec<TopologySpec>,
    /// Congestion-scenario axis.
    pub scenarios: Vec<ScenarioKind>,
    /// Estimator axis (registry names, see `tomo_core::estimators`).
    pub estimators: Vec<String>,
    /// Measurement-interval-count axis.
    pub interval_counts: Vec<usize>,
    /// Seed axis: replication seeds, also fed into topology generation.
    pub seeds: Vec<u64>,
    /// Measurement mode shared by every cell.
    pub measurement: MeasurementMode,
    /// When set, layers non-stationarity (probabilities re-drawn every this
    /// many intervals) on top of every scenario, as §5.4 of the paper does.
    pub nonstationary_epoch: Option<usize>,
    /// Restrict multi-link correlation targets to co-traversed sets (the §4
    /// resource knob; mirrors `EstimatorOptions::require_common_path`).
    pub require_common_path: bool,
    /// Cap on the correlation-subset size (None keeps the algorithm
    /// default).
    pub max_subset_size: Option<usize>,
    /// When set, every cell runs in *streaming* mode: the simulated
    /// observations are fed through a `tomo_core::TomographySession` in
    /// chunks of this many intervals (exercising the incremental ingest
    /// paths) instead of one batch fit. `None` keeps the batch pipeline.
    pub streaming_chunk: Option<usize>,
    /// When set (streaming mode only), every cell additionally scores the
    /// estimator's *reaction* to the faults the scenario injected —
    /// detection latency, time-to-reconverge into this L∞ band, mid-fault
    /// error integral — into the record's reaction fields. `Option` so grid
    /// files written before the field existed still deserialize.
    pub reaction_band: Option<f64>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepGrid {
    /// An empty grid with the harness defaults (ideal monitoring,
    /// common-path restriction on). Every axis starts empty; populate all
    /// five before running ([`SweepGrid::validate`] enforces it).
    pub fn new() -> Self {
        Self {
            base_seed: 0,
            topologies: Vec::new(),
            scenarios: Vec::new(),
            estimators: Vec::new(),
            interval_counts: Vec::new(),
            seeds: Vec::new(),
            measurement: MeasurementMode::Ideal,
            nonstationary_epoch: None,
            require_common_path: true,
            max_subset_size: None,
            streaming_chunk: None,
            reaction_band: None,
        }
    }

    /// Sets the base seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Adds a topology axis value.
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        self.topologies.push(spec);
        self
    }

    /// Adds a scenario axis value.
    pub fn scenario(mut self, kind: ScenarioKind) -> Self {
        self.scenarios.push(kind);
        self
    }

    /// Adds an estimator axis value (a registry name).
    pub fn estimator(mut self, name: impl Into<String>) -> Self {
        self.estimators.push(name.into());
        self
    }

    /// Adds an interval-count axis value.
    pub fn interval_count(mut self, intervals: usize) -> Self {
        self.interval_counts.push(intervals);
        self
    }

    /// Adds a seed axis value.
    pub fn seed_axis(mut self, seed: u64) -> Self {
        self.seeds.push(seed);
        self
    }

    /// Sets the measurement mode.
    pub fn measurement(mut self, measurement: MeasurementMode) -> Self {
        self.measurement = measurement;
        self
    }

    /// Layers non-stationarity on every scenario.
    pub fn nonstationary(mut self, epoch_len: usize) -> Self {
        self.nonstationary_epoch = Some(epoch_len.max(1));
        self
    }

    /// Switches every cell to streaming mode: observations are ingested
    /// through a `TomographySession` in chunks of `chunk` intervals.
    pub fn streaming(mut self, chunk: usize) -> Self {
        self.streaming_chunk = Some(chunk.max(1));
        self
    }

    /// Enables reaction scoring with the given reconvergence band (requires
    /// streaming mode; [`SweepGrid::validate`] enforces it).
    pub fn reaction(mut self, band: f64) -> Self {
        self.reaction_band = Some(band);
        self
    }

    /// The estimator options every cell constructs its estimator with.
    pub fn estimator_options(&self) -> EstimatorOptions {
        EstimatorOptions {
            require_common_path: self.require_common_path,
            max_subset_size: self.max_subset_size,
        }
    }

    /// Number of cells in the grid.
    pub fn num_tasks(&self) -> usize {
        self.topologies.len()
            * self.scenarios.len()
            * self.estimators.len()
            * self.interval_counts.len()
            * self.seeds.len()
    }

    /// Checks that the grid is runnable: every axis non-empty, every
    /// estimator name resolvable, every interval count positive.
    pub fn validate(&self) -> Result<(), TomoError> {
        if self.num_tasks() == 0 {
            return Err(TomoError::InvalidConfig(
                "sweep grid has an empty axis (topologies, scenarios, estimators, \
                 interval_counts and seeds must all be non-empty)"
                    .into(),
            ));
        }
        for name in &self.estimators {
            let spec = crate::spec::EstimatorSpec::parse(name)?;
            spec.validate()?;
            if spec.has_session_knobs() && self.streaming_chunk.is_none() {
                return Err(TomoError::InvalidConfig(format!(
                    "estimator spec '{name}' carries session knobs, which only \
                     apply in streaming mode (set streaming_chunk)"
                )));
            }
        }
        if let Some(&bad) = self.interval_counts.iter().find(|&&t| t == 0) {
            return Err(TomoError::InvalidConfig(format!(
                "interval count {bad} is not positive"
            )));
        }
        if self.streaming_chunk == Some(0) {
            return Err(TomoError::InvalidConfig(
                "streaming chunk must be at least one interval".into(),
            ));
        }
        if let Some(band) = self.reaction_band {
            if !(band > 0.0 && band.is_finite()) {
                return Err(TomoError::InvalidConfig(format!(
                    "reaction band must be a positive number, got {band}"
                )));
            }
            if self.streaming_chunk.is_none() {
                return Err(TomoError::InvalidConfig(
                    "reaction scoring samples a streaming session; set streaming_chunk".into(),
                ));
            }
        }
        Ok(())
    }

    /// Enumerates the grid's cells in canonical order (topologies, then
    /// scenarios, then estimators, then interval counts, then seeds —
    /// rightmost axis fastest). Task indices are assigned in this order and
    /// are stable for a given grid.
    ///
    /// Each task also carries its *simulation-cell* index: the position of
    /// its (topology, scenario, intervals, seed) coordinate with the
    /// estimator axis projected out. Cells differing only in estimator share
    /// a simulation cell and therefore (via [`SweepTask::sim_seed`]) see the
    /// same simulated observations — the paper's figures compare estimators
    /// on shared data, and so do sweeps.
    pub fn tasks(&self) -> Vec<SweepTask> {
        let mut tasks = Vec::with_capacity(self.num_tasks());
        let mut index = 0;
        let (n_sc, n_iv, n_seeds) = (
            self.scenarios.len(),
            self.interval_counts.len(),
            self.seeds.len(),
        );
        for (topology, _) in self.topologies.iter().enumerate() {
            for (sc_i, &scenario) in self.scenarios.iter().enumerate() {
                for estimator in &self.estimators {
                    for (iv_i, &intervals) in self.interval_counts.iter().enumerate() {
                        for (s_i, &seed) in self.seeds.iter().enumerate() {
                            let sim_cell = ((topology * n_sc + sc_i) * n_iv + iv_i) * n_seeds + s_i;
                            tasks.push(SweepTask {
                                index,
                                sim_cell,
                                topology,
                                scenario,
                                estimator: estimator.clone(),
                                intervals,
                                seed,
                            });
                            index += 1;
                        }
                    }
                }
            }
        }
        tasks
    }

    /// The scenario configuration a task with the given kind runs, with the
    /// grid's non-stationarity layered on if configured.
    pub fn scenario_config(&self, kind: ScenarioKind) -> ScenarioConfig {
        let config = ScenarioConfig::for_kind(kind);
        match self.nonstationary_epoch {
            Some(epoch) => config.with_nonstationary(epoch),
            None => config,
        }
    }
}

/// One cell of a [`SweepGrid`]: a fully resolved coordinate plus its task
/// index, from which its simulation seed derives.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepTask {
    /// Position in the grid's canonical enumeration order.
    pub index: usize,
    /// Position of this task's (topology, scenario, intervals, seed)
    /// coordinate with the estimator axis projected out: tasks differing
    /// only in estimator share this value and hence their simulated data.
    pub sim_cell: usize,
    /// Index into the grid's topology axis.
    pub topology: usize,
    /// Scenario kind.
    pub scenario: ScenarioKind,
    /// Estimator registry name.
    pub estimator: String,
    /// Number of measurement intervals.
    pub intervals: usize,
    /// Seed-axis value (replication seed, also varies the topology
    /// instance).
    pub seed: u64,
}

impl SweepTask {
    /// The simulation seed of this task: `hash(base_seed, sim_cell)`.
    ///
    /// A pure function of the grid and the task's coordinates — never of
    /// scheduling — so sweep output is bit-identical across thread counts;
    /// and a function of the *simulation cell* rather than the raw task
    /// index, so estimators are scored against identical observations.
    pub fn sim_seed(&self, base_seed: u64) -> u64 {
        derive_seed(base_seed, self.sim_cell as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_grid() -> SweepGrid {
        SweepGrid::new()
            .topology(TopologySpec::Toy)
            .topology(TopologySpec::Brite(BriteConfig::tiny(1)))
            .scenario(ScenarioKind::RandomCongestion)
            .scenario(ScenarioKind::NoIndependence)
            .estimator("sparsity")
            .estimator("independence")
            .estimator("correlation-complete")
            .interval_count(40)
            .seed_axis(0)
            .seed_axis(1)
    }

    #[test]
    fn task_enumeration_is_the_full_product_in_stable_order() {
        let grid = demo_grid();
        // 2 topologies × 2 scenarios × 3 estimators × 1 interval count × 2 seeds.
        assert_eq!(grid.num_tasks(), 24);
        let tasks = grid.tasks();
        assert_eq!(tasks.len(), grid.num_tasks());
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.index, i);
        }
        // Rightmost axis (seeds) varies fastest.
        assert_eq!(tasks[0].seed, 0);
        assert_eq!(tasks[1].seed, 1);
        assert_eq!(tasks[0].estimator, tasks[1].estimator);
        // Leftmost axis (topology) varies slowest.
        assert!(tasks.iter().take(12).all(|t| t.topology == 0));
        assert!(tasks.iter().skip(12).all(|t| t.topology == 1));
    }

    #[test]
    fn estimator_cells_share_a_simulation_cell() {
        let grid = demo_grid();
        let tasks = grid.tasks();
        // Tasks with identical (topology, scenario, intervals, seed) but
        // different estimators share sim_cell, and hence the simulation
        // seed; tasks differing in any other coordinate do not.
        for a in &tasks {
            for b in &tasks {
                let same_cell = a.topology == b.topology
                    && a.scenario == b.scenario
                    && a.intervals == b.intervals
                    && a.seed == b.seed;
                assert_eq!(
                    a.sim_cell == b.sim_cell,
                    same_cell,
                    "tasks {} and {}",
                    a.index,
                    b.index
                );
                assert_eq!(
                    a.sim_seed(grid.base_seed) == b.sim_seed(grid.base_seed),
                    same_cell
                );
            }
        }
        // The number of distinct simulation cells is the product of the
        // non-estimator axes.
        let cells: std::collections::BTreeSet<usize> = tasks.iter().map(|t| t.sim_cell).collect();
        assert_eq!(cells.len(), 2 * 2 * 2);
    }

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(1, 3));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 2));
        // Consecutive indices should not produce consecutive seeds.
        let a = derive_seed(0, 0);
        let b = derive_seed(0, 1);
        assert!(a.abs_diff(b) > 1 << 20);
    }

    #[test]
    fn validation_rejects_empty_axes_unknown_names_and_zero_intervals() {
        assert!(SweepGrid::new().validate().is_err());
        let bad_name = demo_grid().estimator("gradient-boost");
        assert!(matches!(
            bad_name.validate(),
            Err(TomoError::UnknownEstimator { .. })
        ));
        let mut zero = demo_grid();
        zero.interval_counts = vec![0];
        assert!(matches!(zero.validate(), Err(TomoError::InvalidConfig(_))));
        assert!(demo_grid().validate().is_ok());
    }

    #[test]
    fn knobbed_specs_and_reaction_scoring_require_streaming() {
        let knobbed = demo_grid().estimator("independence+decay:0.6");
        assert!(matches!(
            knobbed.validate(),
            Err(TomoError::InvalidConfig(_))
        ));
        assert!(knobbed.streaming(10).validate().is_ok());

        let reaction = demo_grid().reaction(0.15);
        assert!(matches!(
            reaction.validate(),
            Err(TomoError::InvalidConfig(_))
        ));
        assert!(demo_grid().streaming(10).reaction(0.15).validate().is_ok());
        assert!(matches!(
            demo_grid().streaming(10).reaction(0.0).validate(),
            Err(TomoError::InvalidConfig(_))
        ));
        // Malformed specs are rejected outright.
        let bad = demo_grid().streaming(10).estimator("independence+turbo:on");
        assert!(matches!(bad.validate(), Err(TomoError::InvalidConfig(_))));
    }

    #[test]
    fn grids_round_trip_through_json() {
        let grid = demo_grid().nonstationary(25).base_seed(9);
        let json = serde_json::to_string(&grid).unwrap();
        let back: SweepGrid = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_tasks(), grid.num_tasks());
        assert_eq!(back.base_seed, 9);
        assert_eq!(back.nonstationary_epoch, Some(25));
        assert_eq!(back.tasks().len(), grid.tasks().len());
    }

    #[test]
    fn topology_specs_generate_seeded_instances() {
        let spec = TopologySpec::Brite(BriteConfig::tiny(3));
        let a = spec.generate(0).unwrap();
        let b = spec.generate(0).unwrap();
        let c = spec.generate(1).unwrap();
        assert_eq!(a.num_links(), b.num_links());
        let same =
            a.num_links() == c.num_links() && a.paths().iter().zip(c.paths()).all(|(x, y)| x == y);
        assert!(!same, "axis seed must vary the instance");
        assert_eq!(TopologySpec::Toy.generate(5).unwrap().num_links(), 4);
    }

    #[test]
    fn inline_topology_specs_load_files_and_ignore_the_axis_seed() {
        let path = std::env::temp_dir()
            .join(format!("tomo-sweep-inline-{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let doc = tomo_topo::TopologyDoc::from_network(tomo_graph::toy::fig1_case1());
        std::fs::write(&path, serde_json::to_string(&doc).unwrap()).unwrap();
        let spec = TopologySpec::Inline(path.clone());
        assert_eq!(spec.label(), "Inline");
        let a = spec.generate(0).unwrap();
        let b = spec.generate(7).unwrap();
        // One fixed measured instance on every axis seed.
        assert_eq!(a, b);
        assert_eq!(a.num_links(), 4);
        // The spec round-trips through grid-file JSON like every other.
        let json = serde_json::to_string(&spec).unwrap();
        let back: TopologySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.generate(0).unwrap(), a);
        // Missing files and invalid documents are typed errors.
        let _ = std::fs::remove_file(&path);
        assert!(spec.generate(0).is_err());
    }
}
