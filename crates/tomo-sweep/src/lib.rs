//! Parallel experiment-sweep engine for the network-tomography workspace.
//!
//! The paper's evaluation repeats one experiment shape — topology × scenario
//! × estimator × interval count × seed — hundreds of times. This crate turns
//! that cartesian product into an explicit, serializable [`SweepGrid`] and
//! fans its cells across a hand-rolled thread pool:
//!
//! * [`SweepGrid`] — the grid description. Every axis is data (JSON in, JSON
//!   out), so grids can live in files, CI configs and issue reports.
//! * [`pool::parallel_map`] — a chunked work-stealing pool on `std::thread`
//!   (the build environment has no crates.io access, so no `rayon`): workers
//!   claim fixed-size chunks of the task list from a shared atomic cursor
//!   until it runs dry. A panicking task is caught at the task boundary and
//!   surfaced as [`TomoError::TaskPanic`] instead of poisoning the pool.
//! * [`SweepRunner`] — executes a grid and collects one [`SweepRecord`] per
//!   cell into a [`SweepReport`] with a JSON-lines rendering.
//!
//! ## Determinism
//!
//! Results are **bit-identical regardless of thread count**. Two mechanisms
//! guarantee it:
//!
//! 1. every task derives its simulation seed purely from the grid's base
//!    seed and its own coordinates (`sim_seed = hash(base_seed, sim_cell)`,
//!    see [`derive_seed`] and [`SweepTask::sim_seed`]) — never from which
//!    worker ran it or when. The `sim_cell` index projects out the estimator
//!    axis, so cells differing only in estimator are scored against
//!    identical simulated observations, exactly like the paper's figures;
//! 2. records are stored by task index, so the report (and its JSON-lines
//!    serialization) is in task order no matter the completion order.
//!
//! ```
//! use tomo_sweep::{SweepGrid, SweepRunner, TopologySpec};
//! use tomo_sim::ScenarioKind;
//!
//! let grid = SweepGrid::new()
//!     .topology(TopologySpec::Toy)
//!     .scenario(ScenarioKind::RandomCongestion)
//!     .estimator("sparsity")
//!     .estimator("correlation-complete")
//!     .interval_count(60)
//!     .seed_axis(0)
//!     .seed_axis(1);
//! let report = SweepRunner::new().threads(2).run(&grid)?;
//! assert_eq!(report.records.len(), 4);
//! # Ok::<(), tomo_core::TomoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod pool;
pub mod runner;
pub mod spec;

pub use grid::{derive_seed, SweepGrid, SweepTask, TopologySpec};
pub use pool::{parallel_map, WorkerPool};
pub use runner::{SweepRecord, SweepReport, SweepRunner};
pub use spec::EstimatorSpec;
pub use tomo_core::TomoError;
