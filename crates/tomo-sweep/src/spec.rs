//! Estimator-spec parsing: an estimator-axis value with session knobs.
//!
//! The chaos grids compare the *same* estimator under different serving
//! configurations — with and without exponential decay, with and without the
//! auto-rebuild drift policy. Those knobs live on the `SessionConfig`, not
//! the estimator, so they are encoded as suffixes on the estimator-axis
//! string:
//!
//! ```text
//! independence                      plain registry estimator
//! independence+decay:0.6            exponential reweighting λ = 0.6
//! independence+rebuild:auto         auto structural rebuild on drift
//! independence+window:100           rolling window of 100 intervals
//! independence+decay:0.6+rebuild:auto   knobs compose
//! ```
//!
//! Keeping the knobs on the estimator axis preserves the sweep invariant
//! that cells differing only in estimator share a simulation cell: every
//! variant is scored against byte-identical observations, which is exactly
//! what a reaction-speed ranking needs.

use tomo_core::{estimators, EstimatorOptions, SessionConfig, TomoError};

/// A parsed estimator-axis value: registry name plus session knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct EstimatorSpec {
    /// The estimator's registry name.
    pub name: String,
    /// Exponential reweighting factor (`+decay:λ`).
    pub decay: Option<f64>,
    /// Rolling-window capacity (`+window:N`).
    pub window: Option<usize>,
    /// Auto structural rebuild on drift (`+rebuild:auto`).
    pub rebuild_auto: bool,
}

impl EstimatorSpec {
    /// Parses an estimator-axis string. The bare registry name parses to a
    /// spec with no knobs; validation of the name itself is left to the
    /// caller (the grid validates against the registry).
    pub fn parse(spec: &str) -> Result<Self, TomoError> {
        let mut parts = spec.split('+');
        let name = parts.next().unwrap_or_default().trim();
        if name.is_empty() {
            return Err(TomoError::InvalidConfig(format!(
                "estimator spec '{spec}' has no registry name"
            )));
        }
        let mut parsed = Self {
            name: name.to_string(),
            decay: None,
            window: None,
            rebuild_auto: false,
        };
        for knob in parts {
            match knob.split_once(':') {
                Some(("decay", v)) => {
                    let lambda: f64 = v.parse().map_err(|_| {
                        TomoError::InvalidConfig(format!("'{spec}': decay '{v}' is not a number"))
                    })?;
                    if !(lambda > 0.0 && lambda < 1.0) {
                        return Err(TomoError::InvalidConfig(format!(
                            "'{spec}': decay must be in (0, 1), got {lambda}"
                        )));
                    }
                    parsed.decay = Some(lambda);
                }
                Some(("window", v)) => {
                    let n: usize = v.parse().map_err(|_| {
                        TomoError::InvalidConfig(format!("'{spec}': window '{v}' is not a count"))
                    })?;
                    if n == 0 {
                        return Err(TomoError::InvalidConfig(format!(
                            "'{spec}': window must be at least one interval"
                        )));
                    }
                    parsed.window = Some(n);
                }
                Some(("rebuild", "auto")) => parsed.rebuild_auto = true,
                Some(("rebuild", other)) => {
                    return Err(TomoError::InvalidConfig(format!(
                        "'{spec}': unknown rebuild policy '{other}' (only 'auto')"
                    )));
                }
                _ => {
                    return Err(TomoError::InvalidConfig(format!(
                        "'{spec}': unknown estimator knob '{knob}' \
                         (supported: decay:<λ>, window:<N>, rebuild:auto)"
                    )));
                }
            }
        }
        Ok(parsed)
    }

    /// Whether the spec carries any session knob. Knobbed specs only run in
    /// streaming mode (the knobs configure a `TomographySession`).
    pub fn has_session_knobs(&self) -> bool {
        self.decay.is_some() || self.window.is_some() || self.rebuild_auto
    }

    /// Validates the spec against the estimator registry.
    pub fn validate(&self) -> Result<(), TomoError> {
        estimators::by_name(&self.name).map(|_| ())
    }

    /// The session configuration this spec describes.
    pub fn session_config(&self, options: EstimatorOptions) -> SessionConfig {
        SessionConfig {
            estimator: self.name.clone(),
            options,
            window_capacity: self.window,
            decay: self.decay,
            rebuild: if self.rebuild_auto {
                tomo_core::RebuildPolicy::Auto
            } else {
                tomo_core::RebuildPolicy::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_names_parse_without_knobs() {
        let spec = EstimatorSpec::parse("independence").unwrap();
        assert_eq!(spec.name, "independence");
        assert!(!spec.has_session_knobs());
        assert!(spec.validate().is_ok());
        let config = spec.session_config(EstimatorOptions::default());
        assert_eq!(config.estimator, "independence");
        assert_eq!(config.decay, None);
        assert_eq!(config.rebuild, tomo_core::RebuildPolicy::Manual);
    }

    #[test]
    fn knobs_compose_and_map_onto_session_config() {
        let spec = EstimatorSpec::parse("independence+decay:0.6+rebuild:auto+window:50").unwrap();
        assert_eq!(spec.name, "independence");
        assert_eq!(spec.decay, Some(0.6));
        assert_eq!(spec.window, Some(50));
        assert!(spec.rebuild_auto);
        assert!(spec.has_session_knobs());
        let config = spec.session_config(EstimatorOptions::default());
        assert_eq!(config.decay, Some(0.6));
        assert_eq!(config.window_capacity, Some(50));
        assert_eq!(config.rebuild, tomo_core::RebuildPolicy::Auto);
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        for bad in [
            "",
            "+decay:0.5",
            "independence+decay:nope",
            "independence+decay:1.5",
            "independence+decay:0",
            "independence+window:0",
            "independence+window:many",
            "independence+rebuild:sometimes",
            "independence+turbo:on",
            "independence+decay",
        ] {
            assert!(
                matches!(EstimatorSpec::parse(bad), Err(TomoError::InvalidConfig(_))),
                "'{bad}' should be rejected"
            );
        }
        // Unknown registry names surface at validation, not parse.
        let spec = EstimatorSpec::parse("gradient-boost+decay:0.5").unwrap();
        assert!(spec.validate().is_err());
    }
}
