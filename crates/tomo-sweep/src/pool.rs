//! A hand-rolled chunked work-stealing thread pool on `std::thread`.
//!
//! The build environment has no access to crates.io, so instead of `rayon`
//! the sweep engine uses the simplest scheduler that load-balances well for
//! its workload (hundreds of tasks, each milliseconds to seconds): the task
//! list is split into fixed-size chunks, and workers claim the next unclaimed
//! chunk from a shared atomic cursor until the list runs dry. Fast workers
//! therefore "steal" the chunks a slow worker never reached — chunk-level
//! work stealing without per-task locking.
//!
//! Panic containment: each task runs under `catch_unwind`, so a panicking
//! task is recorded as [`TomoError::TaskPanic`] and the pool shuts down
//! cleanly instead of poisoning shared state or aborting the process.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use tomo_core::TomoError;

/// Upper bound on the chunk size: small enough to balance load even when a
/// few tasks dominate the runtime.
const MAX_CHUNK: usize = 16;

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Applies `f` to every item of `items` on `threads` worker threads and
/// returns the results **in item order**.
///
/// `f` receives the item index and the item; the index is the only identity
/// a task has, so deterministic pipelines must derive all randomness from it
/// (see [`crate::derive_seed`]). The result order is independent of thread
/// count and scheduling.
///
/// Error handling is fail-fast: the first task error (by item index, among
/// the tasks that ran) aborts the sweep — workers stop claiming new chunks
/// and the error is returned. A panic inside `f` is caught and converted to
/// [`TomoError::TaskPanic`] rather than unwinding across the pool. When
/// several tasks fail, the reported error is the failed task with the lowest
/// index that was reached before shutdown.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, TomoError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R, TomoError> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.max(1).min(n);
    // Aim for ~4 chunks per worker so fast workers can steal from slow ones,
    // but never exceed MAX_CHUNK items per claim.
    let chunk = n.div_ceil(threads * 4).clamp(1, MAX_CHUNK);

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let results: Vec<Mutex<Option<Result<R, TomoError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    let worker = || loop {
        if abort.load(Ordering::Relaxed) {
            break;
        }
        let start = next.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            break;
        }
        for (i, item) in items
            .iter()
            .enumerate()
            .take((start + chunk).min(n))
            .skip(start)
        {
            let outcome = catch_unwind(AssertUnwindSafe(|| f(i, item))).unwrap_or_else(|payload| {
                Err(TomoError::TaskPanic {
                    task: i,
                    message: panic_message(payload.as_ref()),
                })
            });
            if outcome.is_err() {
                abort.store(true, Ordering::Relaxed);
            }
            *results[i].lock().expect("result slot lock") = Some(outcome);
        }
    };

    if threads == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads - 1 {
                scope.spawn(worker);
            }
            worker();
        });
    }

    let mut out = Vec::with_capacity(n);
    for slot in &results {
        let outcome = slot.lock().expect("result slot lock").take();
        match outcome {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            // Only reachable after an abort: chunks beyond the failure were
            // never claimed. The error lives in an earlier slot, so keep
            // scanning backward-compatibly — but an earlier slot must have
            // held it already, making this unreachable in practice.
            None => {
                return Err(TomoError::InvalidConfig(
                    "sweep aborted before all tasks ran".into(),
                ))
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Long-lived worker pool
// ---------------------------------------------------------------------------

/// A job submitted to the [`WorkerPool`].
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
    /// Jobs currently executing on a worker.
    in_flight: usize,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Signalled when a job arrives or the pool shuts down.
    job_ready: Condvar,
    /// Signalled when a job finishes (for [`WorkerPool::wait_idle`]).
    job_done: Condvar,
}

/// A long-lived pool of worker threads consuming a shared job queue.
///
/// [`parallel_map`] covers the sweep engine's finite task lists; the
/// `tomo-serve` daemon instead needs workers that outlive any single batch —
/// every accepted connection becomes one job that runs until the client
/// disconnects. Jobs are `FnOnce` closures; a panicking job is caught at the
/// job boundary (same containment policy as [`parallel_map`]) and logged,
/// leaving the worker alive for the next job.
///
/// Dropping the pool shuts it down: queued-but-unstarted jobs are discarded,
/// running jobs complete, workers are joined.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
                in_flight: 0,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job. Fails once the pool has begun shutting down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), TomoError> {
        let mut queue = self.shared.queue.lock().expect("pool queue lock");
        if queue.shutdown {
            return Err(TomoError::InvalidConfig(
                "worker pool is shutting down".into(),
            ));
        }
        queue.jobs.push_back(Box::new(job));
        self.shared.job_ready.notify_one();
        Ok(())
    }

    /// Blocks until every submitted job has finished executing.
    pub fn wait_idle(&self) {
        let mut queue = self.shared.queue.lock().expect("pool queue lock");
        while !queue.jobs.is_empty() || queue.in_flight > 0 {
            queue = self
                .shared
                .job_done
                .wait(queue)
                .expect("pool queue lock poisoned");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue lock");
            queue.shutdown = true;
            queue.jobs.clear();
        }
        self.shared.job_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue lock");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    queue.in_flight += 1;
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .job_ready
                    .wait(queue)
                    .expect("pool queue lock poisoned");
            }
        };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
            eprintln!(
                "worker pool: job panicked: {}",
                panic_message(payload.as_ref())
            );
        }
        let mut queue = shared.queue.lock().expect("pool queue lock");
        queue.in_flight -= 1;
        shared.job_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_at_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 3, 8, 200] {
            let out = parallel_map(&items, threads, |i, &x| Ok(x * 2 + i as u64)).unwrap();
            let expected: Vec<u64> = (0..100).map(|x| x * 3).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], 4, |_, &x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn a_panicking_task_surfaces_as_tomo_error() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 4] {
            let err = parallel_map(&items, threads, |_, &x| {
                if x == 13 {
                    panic!("task {x} exploded");
                }
                Ok(x)
            })
            .unwrap_err();
            match err {
                TomoError::TaskPanic { task, message } => {
                    assert_eq!(task, 13);
                    assert!(message.contains("exploded"), "message: {message}");
                }
                other => panic!("expected TaskPanic, got {other:?}"),
            }
        }
    }

    #[test]
    fn a_failing_task_aborts_the_pool() {
        let items: Vec<usize> = (0..256).collect();
        let err = parallel_map(&items, 4, |_, &x| {
            if x == 7 {
                Err(TomoError::InvalidConfig("bad cell".into()))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert!(matches!(err, TomoError::InvalidConfig(_)));
    }

    #[test]
    fn worker_pool_runs_every_submitted_job() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.num_threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn worker_pool_contains_job_panics() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.submit(|| panic!("job exploded")).unwrap();
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn worker_pool_rejects_jobs_after_drop_begins() {
        // Shutdown discards unstarted jobs and joins workers; a fresh pool
        // still works afterwards (nothing global is poisoned).
        {
            let pool = WorkerPool::new(1);
            pool.submit(|| std::thread::sleep(std::time::Duration::from_millis(5)))
                .unwrap();
        }
        let pool = WorkerPool::new(1);
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        pool.submit(move || flag.store(true, Ordering::Relaxed))
            .unwrap();
        pool.wait_idle();
        assert!(done.load(Ordering::Relaxed));
    }

    #[test]
    fn the_pool_survives_a_panic_and_can_run_again() {
        let items: Vec<usize> = (0..32).collect();
        let _ = parallel_map(&items, 4, |_, &x| {
            if x == 0 {
                panic!("first run panics");
            }
            Ok(x)
        });
        // A fresh call afterwards works normally (nothing was poisoned).
        let out = parallel_map(&items, 4, |_, &x| Ok(x + 1)).unwrap();
        assert_eq!(out[0], 1);
        assert_eq!(out.len(), 32);
    }
}
