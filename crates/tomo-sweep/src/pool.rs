//! A hand-rolled chunked work-stealing thread pool on `std::thread`.
//!
//! The build environment has no access to crates.io, so instead of `rayon`
//! the sweep engine uses the simplest scheduler that load-balances well for
//! its workload (hundreds of tasks, each milliseconds to seconds): the task
//! list is split into fixed-size chunks, and workers claim the next unclaimed
//! chunk from a shared atomic cursor until the list runs dry. Fast workers
//! therefore "steal" the chunks a slow worker never reached — chunk-level
//! work stealing without per-task locking.
//!
//! Panic containment: each task runs under `catch_unwind`, so a panicking
//! task is recorded as [`TomoError::TaskPanic`] and the pool shuts down
//! cleanly instead of poisoning shared state or aborting the process.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use tomo_core::TomoError;

/// Upper bound on the chunk size: small enough to balance load even when a
/// few tasks dominate the runtime.
const MAX_CHUNK: usize = 16;

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Applies `f` to every item of `items` on `threads` worker threads and
/// returns the results **in item order**.
///
/// `f` receives the item index and the item; the index is the only identity
/// a task has, so deterministic pipelines must derive all randomness from it
/// (see [`crate::derive_seed`]). The result order is independent of thread
/// count and scheduling.
///
/// Error handling is fail-fast: the first task error (by item index, among
/// the tasks that ran) aborts the sweep — workers stop claiming new chunks
/// and the error is returned. A panic inside `f` is caught and converted to
/// [`TomoError::TaskPanic`] rather than unwinding across the pool. When
/// several tasks fail, the reported error is the failed task with the lowest
/// index that was reached before shutdown.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, TomoError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R, TomoError> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.max(1).min(n);
    // Aim for ~4 chunks per worker so fast workers can steal from slow ones,
    // but never exceed MAX_CHUNK items per claim.
    let chunk = n.div_ceil(threads * 4).clamp(1, MAX_CHUNK);

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let results: Vec<Mutex<Option<Result<R, TomoError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    let worker = || loop {
        if abort.load(Ordering::Relaxed) {
            break;
        }
        let start = next.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            break;
        }
        for (i, item) in items
            .iter()
            .enumerate()
            .take((start + chunk).min(n))
            .skip(start)
        {
            let outcome = catch_unwind(AssertUnwindSafe(|| f(i, item))).unwrap_or_else(|payload| {
                Err(TomoError::TaskPanic {
                    task: i,
                    message: panic_message(payload.as_ref()),
                })
            });
            if outcome.is_err() {
                abort.store(true, Ordering::Relaxed);
            }
            *results[i].lock().expect("result slot lock") = Some(outcome);
        }
    };

    if threads == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads - 1 {
                scope.spawn(worker);
            }
            worker();
        });
    }

    let mut out = Vec::with_capacity(n);
    for slot in &results {
        let outcome = slot.lock().expect("result slot lock").take();
        match outcome {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            // Only reachable after an abort: chunks beyond the failure were
            // never claimed. The error lives in an earlier slot, so keep
            // scanning backward-compatibly — but an earlier slot must have
            // held it already, making this unreachable in practice.
            None => {
                return Err(TomoError::InvalidConfig(
                    "sweep aborted before all tasks ran".into(),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_at_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 3, 8, 200] {
            let out = parallel_map(&items, threads, |i, &x| Ok(x * 2 + i as u64)).unwrap();
            let expected: Vec<u64> = (0..100).map(|x| x * 3).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], 4, |_, &x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn a_panicking_task_surfaces_as_tomo_error() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 4] {
            let err = parallel_map(&items, threads, |_, &x| {
                if x == 13 {
                    panic!("task {x} exploded");
                }
                Ok(x)
            })
            .unwrap_err();
            match err {
                TomoError::TaskPanic { task, message } => {
                    assert_eq!(task, 13);
                    assert!(message.contains("exploded"), "message: {message}");
                }
                other => panic!("expected TaskPanic, got {other:?}"),
            }
        }
    }

    #[test]
    fn a_failing_task_aborts_the_pool() {
        let items: Vec<usize> = (0..256).collect();
        let err = parallel_map(&items, 4, |_, &x| {
            if x == 7 {
                Err(TomoError::InvalidConfig("bad cell".into()))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert!(matches!(err, TomoError::InvalidConfig(_)));
    }

    #[test]
    fn the_pool_survives_a_panic_and_can_run_again() {
        let items: Vec<usize> = (0..32).collect();
        let _ = parallel_map(&items, 4, |_, &x| {
            if x == 0 {
                panic!("first run panics");
            }
            Ok(x)
        });
        // A fresh call afterwards works normally (nothing was poisoned).
        let out = parallel_map(&items, 4, |_, &x| Ok(x + 1)).unwrap();
        assert_eq!(out[0], 1);
        assert_eq!(out.len(), 32);
    }
}
