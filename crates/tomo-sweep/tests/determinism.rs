//! The sweep engine's core contract: output is byte-identical regardless of
//! thread count, and worker failures surface as typed errors instead of
//! poisoning the pool.

use tomo_sim::ScenarioKind;
use tomo_sweep::{parallel_map, SweepGrid, SweepRunner, TomoError, TopologySpec};
use tomo_topology::BriteConfig;

/// A 24-cell grid mixing both estimator capability families and a generated
/// (non-toy) topology, so the determinism claim covers topology generation,
/// simulation and scoring.
fn grid() -> SweepGrid {
    SweepGrid::new()
        .base_seed(42)
        .topology(TopologySpec::Toy)
        .topology(TopologySpec::Brite(BriteConfig::tiny(7)))
        .scenario(ScenarioKind::RandomCongestion)
        .scenario(ScenarioKind::NoIndependence)
        .estimator("sparsity")
        .estimator("bayesian-correlation")
        .estimator("correlation-complete")
        .interval_count(40)
        .seed_axis(0)
        .seed_axis(1)
}

#[test]
fn jsonl_is_byte_identical_at_1_4_and_8_threads() {
    let grid = grid();
    let reference = SweepRunner::new().threads(1).run(&grid).unwrap().to_jsonl();
    assert_eq!(reference.lines().count(), grid.num_tasks());
    for threads in [4, 8] {
        let report = SweepRunner::new().threads(threads).run(&grid).unwrap();
        assert_eq!(report.threads, threads);
        assert_eq!(
            report.to_jsonl(),
            reference,
            "JSONL diverged at {threads} threads"
        );
    }
}

#[test]
fn changing_the_base_seed_changes_the_data_but_not_the_shape() {
    let a = SweepRunner::new().threads(2).run(&grid()).unwrap();
    let b = SweepRunner::new()
        .threads(2)
        .run(&grid().base_seed(43))
        .unwrap();
    assert_eq!(a.records.len(), b.records.len());
    let sim_seeds_differ = a
        .records
        .iter()
        .zip(&b.records)
        .all(|(x, y)| x.sim_seed != y.sim_seed);
    assert!(sim_seeds_differ);
    assert_ne!(a.to_jsonl(), b.to_jsonl());
}

#[test]
fn a_task_panic_in_one_worker_surfaces_as_a_tomo_error() {
    // Drive the same pool the sweep runner uses with a task list where one
    // cell panics: the pool must convert the panic into TaskPanic...
    let items: Vec<usize> = (0..48).collect();
    let err = parallel_map(&items, 8, |_, &x| {
        if x == 17 {
            panic!("worker took down cell {x}");
        }
        Ok(x)
    })
    .unwrap_err();
    assert!(
        matches!(err, TomoError::TaskPanic { task: 17, .. }),
        "got {err:?}"
    );

    // ...and stay usable afterwards (no poisoned state): a full sweep on the
    // same thread count still succeeds.
    let report = SweepRunner::new().threads(8).run(&grid()).unwrap();
    assert_eq!(report.records.len(), grid().num_tasks());
}
