//! The router daemon: an event-driven v2 proxy in front of a `tomo-serve`
//! fleet.
//!
//! Client connections terminate on the router's own `tomo-net` event loop
//! (same C10K architecture as the daemon: one I/O thread, fixed worker
//! pool). Each request line is decoded just enough to route it:
//!
//! * tenant-scoped requests go to the backend owning the tenant on the
//!   consistent-hash ring, over a pooled connection, and the backend's
//!   response line is forwarded to the client verbatim;
//! * fleet-level requests (`ListTenants`, `FleetStats`, `Metrics`,
//!   `SnapshotAll`) fan out to every backend and the responses are merged
//!   (metrics histograms merge bucket-wise, so fleet quantiles are exact,
//!   not averaged);
//! * `Shutdown` fans out to every backend, answers `Bye`, then stops the
//!   router itself.
//!
//! Because backend connections are shared across clients, the router — not
//! the backend — owns `Attach` state: it records the client connection's
//! attachment and stamps the tenant explicitly into every forwarded
//! envelope, so a pooled backend connection never carries per-client
//! state. Wire semantics for the client are identical to talking to a
//! single daemon (same envelopes, same error taxonomy, same `Busy`/`Flush`
//! backpressure — a `Busy` from the owning backend is forwarded as-is).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use tomo_core::TomoError;
use tomo_net::{ConnId, EventLoop, NetConfig, Sender, Service};
use tomo_serve::protocol::{
    decode_request, encode, ErrorKind, Request, RequestEnvelope, Response, ResponseEnvelope,
    PROTOCOL_VERSION,
};
use tomo_sweep::WorkerPool;

use crate::fleet::{merge_fleet_stats, merge_metrics, merge_tenant_lists, response_of, Fleet};

/// The router daemon: event loop + fleet + worker pool.
pub struct Router {
    event_loop: EventLoop,
    fleet: Arc<Fleet>,
    pool: Arc<WorkerPool>,
}

impl Router {
    /// Binds the router to `addr`, fronting `fleet`. `threads` sizes the
    /// proxy worker pool; `max_conns` bounds client connections (surplus
    /// accepts get a typed `Overloaded` envelope, exactly like the
    /// daemon's own limit).
    pub fn bind(
        addr: &str,
        fleet: Fleet,
        threads: usize,
        max_conns: Option<usize>,
    ) -> Result<Self, TomoError> {
        let config = NetConfig {
            max_conns,
            ..NetConfig::default()
        };
        let event_loop = EventLoop::bind(addr, config)?;
        Ok(Self {
            event_loop,
            fleet: Arc::new(fleet),
            pool: Arc::new(WorkerPool::new(threads)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, TomoError> {
        Ok(self.event_loop.local_addr()?)
    }

    /// The shared shutdown flag; setting it stops the router within one
    /// poll interval.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.event_loop.shutdown_flag()
    }

    /// The fleet the router proxies to.
    pub fn fleet(&self) -> &Arc<Fleet> {
        &self.fleet
    }

    /// Runs the router until a client sends `Shutdown` (which also stops
    /// every backend) or the shutdown flag is raised externally.
    pub fn run(self) -> Result<(), TomoError> {
        let Router {
            event_loop,
            fleet,
            pool,
        } = self;
        let service = RouterService {
            fleet,
            pool: Arc::clone(&pool),
            sender: event_loop.sender(),
            shutdown: event_loop.shutdown_flag(),
            conns: Mutex::new(HashMap::new()),
        };
        event_loop.run(&service)?;
        pool.wait_idle();
        Ok(())
    }
}

/// Per-client-connection state.
struct ConnCtx {
    inner: Mutex<ConnInner>,
}

struct ConnInner {
    pending: VecDeque<String>,
    processing: bool,
    /// The client connection's default tenant, bound by `Attach`. Owned by
    /// the router because backend connections are pooled.
    attached: Option<String>,
}

struct RouterService {
    fleet: Arc<Fleet>,
    pool: Arc<WorkerPool>,
    sender: Sender,
    shutdown: Arc<AtomicBool>,
    conns: Mutex<HashMap<ConnId, Arc<ConnCtx>>>,
}

impl Service for RouterService {
    fn on_open(&self, conn: ConnId, _peer: std::net::SocketAddr) {
        self.conns.lock().expect("conn map lock").insert(
            conn,
            Arc::new(ConnCtx {
                inner: Mutex::new(ConnInner {
                    pending: VecDeque::new(),
                    processing: false,
                    attached: None,
                }),
            }),
        );
    }

    fn on_line(&self, conn: ConnId, line: String) {
        if line.trim().is_empty() {
            return;
        }
        let Some(ctx) = self
            .conns
            .lock()
            .expect("conn map lock")
            .get(&conn)
            .cloned()
        else {
            return;
        };
        let submit = {
            let mut inner = ctx.inner.lock().expect("conn ctx lock");
            inner.pending.push_back(line);
            if inner.processing {
                false
            } else {
                inner.processing = true;
                true
            }
        };
        if submit {
            let fleet = Arc::clone(&self.fleet);
            let sender = self.sender.clone();
            let shutdown = Arc::clone(&self.shutdown);
            let job = move || drain_conn(&fleet, &ctx, conn, &sender, &shutdown);
            if let Err(e) = self.pool.submit(job) {
                eprintln!("tomo-router: cannot schedule proxy work: {e}");
            }
        }
    }

    fn on_close(&self, conn: ConnId) {
        self.conns.lock().expect("conn map lock").remove(&conn);
    }

    fn overload_line(&self) -> Option<String> {
        Some(encode(&ResponseEnvelope::new(
            None,
            Response::error(
                ErrorKind::Overloaded,
                "router connection limit reached (--max-conns); retry later",
            ),
        )))
    }
}

/// Worker-pool job: drains one client connection's pending lines in order.
fn drain_conn(
    fleet: &Arc<Fleet>,
    ctx: &Arc<ConnCtx>,
    conn: ConnId,
    sender: &Sender,
    shutdown: &AtomicBool,
) {
    loop {
        let (line, attached) = {
            let mut inner = ctx.inner.lock().expect("conn ctx lock");
            match inner.pending.pop_front() {
                Some(line) => (line, inner.attached.clone()),
                None => {
                    inner.processing = false;
                    return;
                }
            }
        };
        let outcome = route_line(fleet, &line, attached, shutdown);
        {
            let mut inner = ctx.inner.lock().expect("conn ctx lock");
            inner.attached = outcome.attached;
        }
        if outcome.stop {
            sender.send_then_close(conn, outcome.response_line);
        } else {
            sender.send(conn, outcome.response_line);
        }
    }
}

/// What routing one request line produced.
struct RouteOutcome {
    /// The response line to write to the client.
    response_line: String,
    /// The connection's (possibly updated) attachment.
    attached: Option<String>,
    /// Close the client connection after writing (`Bye`).
    stop: bool,
}

impl RouteOutcome {
    fn reply(resp: Response, tenant: Option<String>, attached: Option<String>) -> Self {
        Self {
            response_line: encode(&ResponseEnvelope::new(tenant, resp)),
            attached,
            stop: false,
        }
    }
}

/// Routes one decoded request line. Pure fleet I/O — no event-loop state —
/// so it is directly unit-testable against live backends.
fn route_line(
    fleet: &Arc<Fleet>,
    line: &str,
    attached: Option<String>,
    shutdown: &AtomicBool,
) -> RouteOutcome {
    let envelope = match decode_request(line) {
        Ok(envelope) => envelope,
        Err(error_response) => return RouteOutcome::reply(*error_response, None, attached),
    };
    let RequestEnvelope {
        tenant,
        deadline_ms,
        req,
        ..
    } = envelope;

    // Fleet-level requests: fan out and merge. The client's deadline is
    // not forwarded on fan-outs — a partial fleet answer is worse than a
    // slightly late merged one.
    match &req {
        // UploadTopology fans out too: `Create` naming an uploaded topology
        // can land on any ring owner, so every backend needs the library
        // entry (uploads are idempotent on the canonical hash, making the
        // broadcast safe to repeat).
        Request::ListTenants
        | Request::FleetStats
        | Request::Metrics
        | Request::SnapshotAll
        | Request::UploadTopology { .. } => {
            let forward = encode(&RequestEnvelope {
                v: PROTOCOL_VERSION,
                tenant: None,
                deadline_ms: None,
                req: req.clone(),
            });
            let results = fleet.fan_out(&forward);
            let mut responses = Vec::with_capacity(results.len());
            for (backend, result) in results {
                match result {
                    Ok(response_line) => responses.push(response_of(&response_line)),
                    Err(e) => {
                        return RouteOutcome::reply(
                            Response::error(
                                ErrorKind::Internal,
                                format!("backend {backend} unreachable: {e}"),
                            ),
                            None,
                            attached,
                        )
                    }
                }
            }
            let merged = merge_backend_responses(&req, responses);
            return RouteOutcome::reply(merged, None, attached);
        }
        Request::Shutdown => {
            // Stop the fleet first, then the router itself. Backend
            // failures are reported but do not block the router's own
            // shutdown.
            let forward = encode(&RequestEnvelope {
                v: PROTOCOL_VERSION,
                tenant: None,
                deadline_ms: None,
                req: Request::Shutdown,
            });
            for (backend, result) in fleet.fan_out(&forward) {
                if let Err(e) = result {
                    eprintln!("tomo-router: backend {backend} shutdown failed: {e}");
                }
            }
            shutdown.store(true, Ordering::Relaxed);
            return RouteOutcome {
                response_line: encode(&ResponseEnvelope::new(None, Response::Bye)),
                attached,
                stop: true,
            };
        }
        _ => {}
    }

    // Tenant-scoped: resolve the tenant, find its owner, forward stamped.
    let Some(tenant) = tenant.or(attached.clone()) else {
        return RouteOutcome::reply(
            Response::error(
                ErrorKind::InvalidRequest,
                "request needs a tenant: set the envelope's `tenant` field or `Attach` first",
            ),
            None,
            attached,
        );
    };
    let Some(owner) = fleet.owner_of(&tenant).map(str::to_string) else {
        return RouteOutcome::reply(
            Response::error(ErrorKind::Internal, "router has an empty backend fleet"),
            Some(tenant),
            attached,
        );
    };
    // Tenant-scoped forwards keep the client's deadline: the backend
    // restarts the clock from its own enqueue time, so router transit
    // isn't charged against it, but a request stuck in a backend queue
    // still times out there.
    let forward = encode(&RequestEnvelope {
        v: PROTOCOL_VERSION,
        tenant: Some(tenant.clone()),
        deadline_ms,
        req: req.clone(),
    });
    let response_line = match fleet.call(&owner, &forward) {
        Ok(response_line) => response_line,
        Err(e) => {
            return RouteOutcome::reply(
                Response::error(
                    ErrorKind::Internal,
                    format!("backend {owner} unreachable: {e}"),
                ),
                Some(tenant),
                attached,
            )
        }
    };

    // Track attachment changes router-side; the backend's response line is
    // forwarded to the client verbatim.
    let attached = match (&req, response_of(&response_line)) {
        (Request::Attach, Response::Attached { .. }) => Some(tenant),
        (Request::Drop, Response::Dropped) if attached.as_deref() == Some(tenant.as_str()) => None,
        _ => attached,
    };
    RouteOutcome {
        response_line,
        attached,
        stop: false,
    }
}

/// Merges fan-out responses for one fleet-level request kind. A backend
/// answering with an error envelope fails the merge with that error.
fn merge_backend_responses(req: &Request, responses: Vec<Response>) -> Response {
    for resp in &responses {
        if let Response::Error { kind, message } = resp {
            return Response::error(*kind, format!("backend error: {message}"));
        }
    }
    match req {
        Request::ListTenants => {
            let mut parts = Vec::with_capacity(responses.len());
            for resp in responses {
                match resp {
                    Response::Tenants { tenants } => parts.push(tenants),
                    other => {
                        return Response::error(
                            ErrorKind::Internal,
                            format!("unexpected backend response {other:?}"),
                        )
                    }
                }
            }
            Response::Tenants {
                tenants: merge_tenant_lists(&parts),
            }
        }
        Request::FleetStats => {
            let mut parts = Vec::with_capacity(responses.len());
            for resp in responses {
                match resp {
                    Response::Fleet(stats) => parts.push(stats),
                    other => {
                        return Response::error(
                            ErrorKind::Internal,
                            format!("unexpected backend response {other:?}"),
                        )
                    }
                }
            }
            Response::Fleet(merge_fleet_stats(&parts))
        }
        Request::Metrics => {
            let mut parts = Vec::with_capacity(responses.len());
            for resp in responses {
                match resp {
                    Response::Metrics(report) => parts.push(report),
                    other => {
                        return Response::error(
                            ErrorKind::Internal,
                            format!("unexpected backend response {other:?}"),
                        )
                    }
                }
            }
            Response::Metrics(merge_metrics(&parts))
        }
        Request::SnapshotAll => {
            let mut paths = Vec::new();
            for resp in responses {
                match resp {
                    Response::Snapshotted { path } => {
                        if !path.is_empty() {
                            paths.push(path);
                        }
                    }
                    other => {
                        return Response::error(
                            ErrorKind::Internal,
                            format!("unexpected backend response {other:?}"),
                        )
                    }
                }
            }
            Response::Snapshotted {
                path: paths.join(","),
            }
        }
        Request::UploadTopology { .. } => {
            // Every backend validated the same document; their canonical
            // hashes must agree, and any one acceptance represents all.
            let mut first: Option<(String, usize, usize, String)> = None;
            for resp in responses {
                match resp {
                    Response::TopologyAccepted {
                        name,
                        links,
                        paths,
                        hash,
                    } => match &first {
                        None => first = Some((name, links, paths, hash)),
                        Some((_, _, _, h)) if *h == hash => {}
                        Some(_) => {
                            return Response::error(
                                ErrorKind::Internal,
                                "backends disagree on the uploaded topology structure",
                            )
                        }
                    },
                    other => {
                        return Response::error(
                            ErrorKind::Internal,
                            format!("unexpected backend response {other:?}"),
                        )
                    }
                }
            }
            match first {
                Some((name, links, paths, hash)) => Response::TopologyAccepted {
                    name,
                    links,
                    paths,
                    hash,
                },
                None => Response::error(ErrorKind::Internal, "router has an empty backend fleet"),
            }
        }
        other => Response::error(
            ErrorKind::Internal,
            format!("request {other:?} is not a fan-out request"),
        ),
    }
}
