//! tomo-router: consistent-hash fleet routing for `tomo-serve` daemons.
//!
//! A fleet of independent `tomo-serve` daemons becomes one logical service:
//! the router hashes each [`TenantId`](tomo_serve::TenantId) onto a backend
//! with a virtual-node consistent-hash ring ([`ring`]), proxies v2
//! JSON-lines to the owning backend over pooled connections ([`fleet`]),
//! terminates client connections on its own `tomo-net` event loop
//! ([`server`]), and moves tenants between backends via snapshot handoff
//! when the fleet changes shape ([`rebalance`]).

pub mod fleet;
pub mod rebalance;
pub mod ring;
pub mod server;

pub use fleet::Fleet;
pub use rebalance::{rebalance, Move};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use server::Router;
