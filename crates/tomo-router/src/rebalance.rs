//! Tenant handoff when the fleet changes shape.
//!
//! Consistent hashing guarantees that growing or shrinking the fleet moves
//! only ~1/n of tenants — but someone still has to move them. This module
//! walks the *old* fleet, computes each tenant's owner under the *new*
//! ring, and for every tenant whose owner changed performs a snapshot
//! handoff:
//!
//! 1. `Snapshot` on the old owner → the daemon writes its per-tenant
//!    snapshot file and answers with the path;
//! 2. read the snapshot file (router and daemons share a filesystem in the
//!    static-fleet deployments this targets);
//! 3. `Drop` on the old owner;
//! 4. `Restore{snapshot}` on the new owner with the file's JSON inline.
//!
//! Steps run strictly in that order per tenant, so a crash mid-rebalance
//! leaves each tenant either fully moved or still on its old owner with a
//! snapshot file on disk — never half-moved. The estimator state travels
//! byte-for-byte: estimates on the new owner match the old owner exactly.

use std::collections::HashMap;

use tomo_core::TomoError;
use tomo_serve::protocol::{Request, Response};
use tomo_serve::Client;

use crate::ring::HashRing;

/// One completed tenant move.
#[derive(Clone, Debug, PartialEq)]
pub struct Move {
    /// The tenant that moved.
    pub tenant: String,
    /// The backend it moved from.
    pub from: String,
    /// The backend it moved to.
    pub to: String,
    /// Observation intervals carried across in the snapshot.
    pub intervals: u64,
}

/// Moves every tenant whose owner differs between the ring over
/// `old_backends` and the ring over `new_backends` (same `vnodes` on
/// both). Returns the moves performed, in the order they completed.
///
/// Backends present in both fleets must be running; the old fleet is
/// enumerated via `ListTenants` per backend. Fails fast on the first
/// tenant that cannot be moved — already-completed moves stay completed
/// (rerunning rebalance is idempotent: moved tenants hash to their new
/// owner and are skipped).
pub fn rebalance(
    old_backends: &[String],
    new_backends: &[String],
    vnodes: usize,
) -> Result<Vec<Move>, TomoError> {
    let new_ring = HashRing::new(new_backends, vnodes);
    if new_ring.is_empty() {
        return Err(TomoError::InvalidConfig(
            "rebalance target fleet is empty".into(),
        ));
    }
    let mut moves = Vec::new();
    // One cached client per destination backend; sources get their own.
    let mut dest_clients: HashMap<String, Client> = HashMap::new();

    for source in old_backends {
        let mut source_client = Client::connect(source)?;
        let tenants = match source_client.call(&Request::ListTenants)? {
            Response::Tenants { tenants } => tenants,
            other => {
                return Err(TomoError::InvalidConfig(format!(
                    "backend {source}: unexpected ListTenants response {other:?}"
                )))
            }
        };
        for summary in tenants {
            let tenant = summary.tenant;
            let target = new_ring
                .backend_for(&tenant)
                .expect("non-empty ring owns every tenant")
                .to_string();
            if &target == source {
                continue;
            }
            let intervals = move_tenant(&mut source_client, &mut dest_clients, &tenant, &target)?;
            moves.push(Move {
                tenant,
                from: source.clone(),
                to: target,
                intervals,
            });
        }
    }
    Ok(moves)
}

/// Performs one snapshot → read → drop → restore handoff. Returns the
/// interval count reported by the restoring backend.
fn move_tenant(
    source: &mut Client,
    dest_clients: &mut HashMap<String, Client>,
    tenant: &str,
    target: &str,
) -> Result<u64, TomoError> {
    source.set_tenant(tenant);
    let path = match source.call(&Request::Snapshot)? {
        Response::Snapshotted { path } => path,
        Response::Error { message, .. } => {
            return Err(TomoError::InvalidConfig(format!(
                "tenant {tenant}: snapshot on old owner failed: {message} \
                 (rebalance needs daemons started with --snapshot-dir)"
            )))
        }
        other => {
            return Err(TomoError::InvalidConfig(format!(
                "tenant {tenant}: unexpected Snapshot response {other:?}"
            )))
        }
    };
    let snapshot = std::fs::read_to_string(&path).map_err(|e| {
        TomoError::Io(format!(
            "tenant {tenant}: cannot read snapshot file {path}: {e}"
        ))
    })?;

    if !dest_clients.contains_key(target) {
        dest_clients.insert(target.to_string(), Client::connect(target)?);
    }
    let dest = dest_clients.get_mut(target).expect("just inserted");

    // Drop before restore: a tenant must never be live on two backends.
    match source.call(&Request::Drop)? {
        Response::Dropped => {}
        other => {
            return Err(TomoError::InvalidConfig(format!(
                "tenant {tenant}: unexpected Drop response {other:?}"
            )))
        }
    }
    dest.set_tenant(tenant);
    match dest.call(&Request::Restore { snapshot })? {
        Response::Restored { intervals, .. } => Ok(intervals),
        Response::Error { message, .. } => Err(TomoError::InvalidConfig(format!(
            "tenant {tenant}: restore on {target} failed after drop — state is in \
             snapshot file {path}: {message}"
        ))),
        other => Err(TomoError::InvalidConfig(format!(
            "tenant {tenant}: unexpected Restore response {other:?}"
        ))),
    }
}
