//! Consistent hashing of tenants onto a static backend fleet.
//!
//! Each backend address is projected onto the ring at `vnodes` pseudo-random
//! points (hash of `"addr#i"`); a tenant maps to the backend owning the
//! first ring point at or after the tenant's own hash (wrapping). The
//! virtual nodes smooth the load split, and the classic consistent-hashing
//! property holds: growing a fleet of `n` backends by one relocates only
//! about `1/(n+1)` of the tenants, all of them onto the new backend — the
//! rest keep their owner, so a rebalance only moves the sessions that must
//! move.

/// Default number of virtual nodes per backend.
pub const DEFAULT_VNODES: usize = 64;

/// FNV-1a, finalized with a splitmix64-style mix: FNV alone clusters on
/// short, similar keys (`"addr#0"`, `"addr#1"`, …) and a clustered ring
/// defeats the even-split purpose of virtual nodes.
pub fn hash_key(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring over a static list of backend addresses.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(ring position, index into backends)`, sorted by position.
    points: Vec<(u64, usize)>,
    backends: Vec<String>,
}

impl HashRing {
    /// Builds a ring with `vnodes` virtual nodes per backend. Duplicate
    /// addresses are collapsed; order of `backends` does not affect the
    /// mapping.
    pub fn new<S: AsRef<str>>(backends: &[S], vnodes: usize) -> Self {
        let mut unique: Vec<String> = Vec::new();
        for b in backends {
            let b = b.as_ref();
            if !unique.iter().any(|u| u == b) {
                unique.push(b.to_string());
            }
        }
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(unique.len() * vnodes);
        for (idx, addr) in unique.iter().enumerate() {
            for v in 0..vnodes {
                points.push((hash_key(&format!("{addr}#{v}")), idx));
            }
        }
        // Position ties (vanishingly rare) resolve by backend index so the
        // mapping is deterministic regardless of input order.
        points.sort_unstable();
        Self {
            points,
            backends: unique,
        }
    }

    /// The deduplicated backend list.
    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// Number of distinct backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether the ring has no backends.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// The backend owning `key` (first ring point clockwise from the key's
    /// hash). `None` only for an empty ring.
    pub fn backend_for(&self, key: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash_key(key);
        let idx = match self.points.binary_search_by(|&(pos, _)| pos.cmp(&h)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0, // wrap past the top
            Err(i) => i,
        };
        Some(&self.backends[self.points[idx].1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7000")).collect()
    }

    #[test]
    fn mapping_is_deterministic_and_order_independent() {
        let a = HashRing::new(&fleet(4), 64);
        let mut reversed = fleet(4);
        reversed.reverse();
        let b = HashRing::new(&reversed, 64);
        for t in 0..200 {
            let key = format!("tenant-{t}");
            assert_eq!(a.backend_for(&key), b.backend_for(&key));
        }
    }

    #[test]
    fn duplicates_collapse() {
        let mut addrs = fleet(3);
        addrs.extend(fleet(3));
        let ring = HashRing::new(&addrs, 8);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn load_split_is_roughly_even() {
        let ring = HashRing::new(&fleet(4), DEFAULT_VNODES);
        let mut counts = vec![0usize; 4];
        for t in 0..4000 {
            let owner = ring.backend_for(&format!("tenant-{t}")).unwrap();
            let idx = ring.backends().iter().position(|b| b == owner).unwrap();
            counts[idx] += 1;
        }
        // Perfect split is 1000 each; virtual nodes keep the skew modest.
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (400..=1800).contains(&c),
                "backend {i} got {c} of 4000 tenants: {counts:?}"
            );
        }
    }

    #[test]
    fn empty_ring_maps_nothing() {
        let ring = HashRing::new::<String>(&[], 64);
        assert!(ring.is_empty());
        assert_eq!(ring.backend_for("t"), None);
    }
}
