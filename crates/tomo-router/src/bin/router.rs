//! The consistent-hash fleet router.
//!
//! ```text
//! router serve     --fleet FILE [--addr 127.0.0.1:7000] [--threads 8]
//!                  [--vnodes 64] [--max-conns N]
//! router rebalance --fleet OLD_FILE --to NEW_FILE [--vnodes 64]
//! router owner     --fleet FILE [--vnodes 64] TENANT...
//! ```
//!
//! `serve` fronts a static fleet of `tomo-serve` daemons with one v2
//! endpoint: clients speak the exact protocol they would speak to a single
//! daemon, and the router forwards each tenant's traffic to the backend
//! owning it on the hash ring (fleet-level requests fan out and merge).
//!
//! `rebalance` moves tenants between two fleet shapes via snapshot
//! handoff: for every tenant whose ring owner changed, it snapshots on the
//! old owner, drops it there, and restores inline on the new owner. Run it
//! after editing the fleet file, before restarting `serve` with the new
//! file. Both fleets' daemons must be up and started with
//! `--snapshot-dir`.
//!
//! `owner` prints the owning backend per tenant — handy for debugging
//! placement.
//!
//! The fleet file lists one backend address per line; blank lines and
//! `#` comments are ignored:
//!
//! ```text
//! # production fleet
//! 10.0.0.1:7070
//! 10.0.0.2:7070
//! ```

use std::process::exit;

use tomo_router::{rebalance, Fleet, HashRing, Router, DEFAULT_VNODES};

fn usage() -> ! {
    eprintln!(
        "usage: router serve     --fleet FILE [--addr HOST:PORT] [--threads N]\n\
         \x20                         [--vnodes N] [--max-conns N]\n\
         \x20      router rebalance --fleet OLD_FILE --to NEW_FILE [--vnodes N]\n\
         \x20      router owner     --fleet FILE [--vnodes N] TENANT..."
    );
    exit(2);
}

/// Parses a fleet file: one backend address per line, `#` comments and
/// blank lines ignored.
fn load_fleet_file(path: &str) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read fleet file {path}: {e}");
        exit(1);
    });
    let backends: Vec<String> = text
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect();
    if backends.is_empty() {
        eprintln!("fleet file {path} lists no backends");
        exit(1);
    }
    backends
}

struct Flags {
    fleet: Option<String>,
    to: Option<String>,
    addr: String,
    threads: usize,
    vnodes: usize,
    max_conns: Option<usize>,
    positional: Vec<String>,
}

fn parse_flags(argv: &[String]) -> Flags {
    let mut flags = Flags {
        fleet: None,
        to: None,
        addr: "127.0.0.1:7000".into(),
        threads: 8,
        vnodes: DEFAULT_VNODES,
        max_conns: None,
        positional: Vec::new(),
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--fleet" => flags.fleet = Some(value(&mut i)),
            "--to" => flags.to = Some(value(&mut i)),
            "--addr" => flags.addr = value(&mut i),
            "--threads" => flags.threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--vnodes" => flags.vnodes = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-conns" => {
                flags.max_conns = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
            other => flags.positional.push(other.to_string()),
        }
        i += 1;
    }
    flags
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else { usage() };
    let flags = parse_flags(&argv[1..]);
    let Some(fleet_path) = &flags.fleet else {
        eprintln!("--fleet FILE is required");
        usage();
    };
    let backends = load_fleet_file(fleet_path);

    match command.as_str() {
        "serve" => {
            // Same C10K posture as the daemon: headroom above the client
            // limit, plus the pooled backend sockets.
            if let Some(limit) = flags.max_conns {
                let _ = tomo_net::raise_nofile_limit(limit as u64 + 256);
            } else {
                let _ = tomo_net::raise_nofile_limit(16_384);
            }
            let fleet = Fleet::new(&backends, flags.vnodes);
            let router = Router::bind(&flags.addr, fleet, flags.threads, flags.max_conns)
                .unwrap_or_else(|e| {
                    eprintln!("cannot bind {}: {e}", flags.addr);
                    exit(1);
                });
            let addr = router.local_addr().expect("bound listener has an address");
            let limit = flags
                .max_conns
                .map_or("unlimited".to_string(), |n| n.to_string());
            eprintln!(
                "tomo-router listening on {addr} ({} backend(s), {} vnode(s) each, \
                 {} worker(s), max conns {limit})",
                backends.len(),
                flags.vnodes,
                flags.threads
            );
            if let Err(e) = router.run() {
                eprintln!("router error: {e}");
                exit(1);
            }
            eprintln!("tomo-router: shut down cleanly");
        }
        "rebalance" => {
            let Some(to_path) = &flags.to else {
                eprintln!("rebalance needs --to NEW_FILE");
                usage();
            };
            let new_backends = load_fleet_file(to_path);
            match rebalance(&backends, &new_backends, flags.vnodes) {
                Ok(moves) if moves.is_empty() => {
                    eprintln!("rebalance: nothing to move ({} tenant moves)", moves.len())
                }
                Ok(moves) => {
                    for m in &moves {
                        eprintln!(
                            "moved {}: {} -> {} ({} intervals)",
                            m.tenant, m.from, m.to, m.intervals
                        );
                    }
                    eprintln!("rebalance: moved {} tenant(s)", moves.len());
                }
                Err(e) => {
                    eprintln!("rebalance failed: {e}");
                    exit(1);
                }
            }
        }
        "owner" => {
            if flags.positional.is_empty() {
                eprintln!("owner needs at least one TENANT");
                usage();
            }
            let ring = HashRing::new(&backends, flags.vnodes);
            for tenant in &flags.positional {
                match ring.backend_for(tenant) {
                    Some(owner) => println!("{tenant}\t{owner}"),
                    None => println!("{tenant}\t<empty fleet>"),
                }
            }
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage();
        }
    }
}
