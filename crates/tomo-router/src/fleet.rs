//! The backend fleet: pooled connections to `tomo-serve` daemons, plus the
//! fan-out/merge logic for fleet-level requests.
//!
//! The router keeps a small pool of idle TCP connections per backend. A
//! proxied request checks a connection out, performs one request/response
//! round trip on it, and returns it; a connection that fails mid-call is
//! discarded and the call retried once on a fresh socket (pooled sockets
//! go stale when a backend restarts). Because backend connections are
//! **shared across client connections**, the router never relies on
//! backend-side `Attach` state — every forwarded envelope carries its
//! tenant explicitly.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

use tomo_serve::protocol::{
    FleetStats, MetricsReport, NetMetrics, Response, ResponseEnvelope, TenantMetrics, TenantSummary,
};

use crate::ring::{HashRing, DEFAULT_VNODES};

/// Idle pooled connections kept per backend.
const POOL_PER_BACKEND: usize = 8;

/// Connect/IO timeout on backend calls: a hung backend must not wedge a
/// router worker forever.
const BACKEND_TIMEOUT: Duration = Duration::from_secs(30);

/// One pooled connection to a backend daemon.
struct BackendConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl BackendConn {
    fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(BACKEND_TIMEOUT))?;
        stream.set_write_timeout(Some(BACKEND_TIMEOUT))?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// One request/response round trip: writes `line`, reads one response
    /// line. An EOF (backend closed) is an error so the caller retries on
    /// a fresh socket.
    fn call(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "backend closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }
}

/// The static backend fleet: hash ring + per-backend connection pools.
pub struct Fleet {
    ring: HashRing,
    pools: HashMap<String, Mutex<Vec<BackendConn>>>,
}

impl Fleet {
    /// Builds a fleet over `backends` with `vnodes` virtual nodes each
    /// (pass [`DEFAULT_VNODES`] unless tuning).
    pub fn new<S: AsRef<str>>(backends: &[S], vnodes: usize) -> Self {
        let ring = HashRing::new(backends, vnodes);
        let pools = ring
            .backends()
            .iter()
            .map(|addr| (addr.clone(), Mutex::new(Vec::new())))
            .collect();
        Self { ring, pools }
    }

    /// Builds a fleet with the default virtual-node count.
    pub fn with_default_vnodes<S: AsRef<str>>(backends: &[S]) -> Self {
        Self::new(backends, DEFAULT_VNODES)
    }

    /// The hash ring (for ownership queries).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The backend owning `tenant`. `None` only for an empty fleet.
    pub fn owner_of(&self, tenant: &str) -> Option<&str> {
        self.ring.backend_for(tenant)
    }

    /// One request/response round trip against `backend` on a pooled
    /// connection. A call that fails on a pooled socket is retried once on
    /// a freshly connected one.
    pub fn call(&self, backend: &str, line: &str) -> io::Result<String> {
        let pooled = self.checkout(backend);
        if let Some(mut conn) = pooled {
            match conn.call(line) {
                Ok(response) => {
                    self.checkin(backend, conn);
                    return Ok(response);
                }
                Err(_) => { /* stale pooled socket: fall through to a fresh one */ }
            }
        }
        let mut fresh = BackendConn::connect(backend)?;
        let response = fresh.call(line)?;
        self.checkin(backend, fresh);
        Ok(response)
    }

    /// Sends `line` to every backend, collecting each response line in
    /// backend order. Per-backend failures surface as `Err` entries so the
    /// caller can decide whether a partial merge is acceptable.
    pub fn fan_out(&self, line: &str) -> Vec<(String, io::Result<String>)> {
        self.ring
            .backends()
            .iter()
            .map(|addr| (addr.clone(), self.call(addr, line)))
            .collect()
    }

    fn checkout(&self, backend: &str) -> Option<BackendConn> {
        self.pools
            .get(backend)
            .and_then(|pool| pool.lock().expect("backend pool lock").pop())
    }

    fn checkin(&self, backend: &str, conn: BackendConn) {
        if let Some(pool) = self.pools.get(backend) {
            let mut pool = pool.lock().expect("backend pool lock");
            if pool.len() < POOL_PER_BACKEND {
                pool.push(conn);
            }
        }
    }
}

/// Merges per-backend [`FleetStats`] into the fleet-wide view the router
/// reports: counters sum (`shards` included — it becomes "total shards
/// across the fleet"), per-tenant rows concatenate sorted by tenant id.
pub fn merge_fleet_stats(parts: &[FleetStats]) -> FleetStats {
    let mut merged = FleetStats {
        tenants: 0,
        shards: 0,
        total_ingested: 0,
        busy_rejections: 0,
        shed_batches: 0,
        timeouts: 0,
        refits: Default::default(),
        drift: Default::default(),
        live_connections: 0,
        per_tenant: Vec::new(),
    };
    for part in parts {
        merged.tenants += part.tenants;
        merged.shards += part.shards;
        merged.total_ingested += part.total_ingested;
        merged.busy_rejections += part.busy_rejections;
        merged.shed_batches += part.shed_batches;
        merged.timeouts += part.timeouts;
        merged.refits.incremental += part.refits.incremental;
        merged.refits.full += part.refits.full;
        merged.refits.basis_rebuilds += part.refits.basis_rebuilds;
        merged.drift.merge(&part.drift);
        merged.live_connections += part.live_connections;
        merged.per_tenant.extend(part.per_tenant.iter().cloned());
    }
    merged.per_tenant.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    merged
}

/// Merges per-backend [`MetricsReport`]s into the fleet-wide view: totals
/// and network counters sum, per-tenant rows concatenate sorted by tenant
/// id. Tenants are disjoint across backends by construction (the ring
/// assigns each to one owner), but a row collision — e.g. mid-rebalance —
/// is merged **histogram-wise** (bucket counts add, quantiles re-derived),
/// never by averaging quantiles, which would be statistically meaningless.
pub fn merge_metrics(parts: &[MetricsReport]) -> MetricsReport {
    let mut merged = MetricsReport {
        total_intervals: 0,
        busy_rejections: 0,
        shed_batches: 0,
        timeouts: 0,
        net: None,
        per_tenant: Vec::new(),
    };
    let mut rows: Vec<TenantMetrics> = Vec::new();
    for part in parts {
        merged.total_intervals += part.total_intervals;
        merged.busy_rejections += part.busy_rejections;
        merged.shed_batches += part.shed_batches;
        merged.timeouts += part.timeouts;
        if let Some(part_net) = part.net {
            let net = merged.net.get_or_insert_with(NetMetrics::default);
            net.accepted += part_net.accepted;
            net.rejected_overload += part_net.rejected_overload;
            net.lines_in += part_net.lines_in;
            net.lines_out += part_net.lines_out;
            net.bytes_in += part_net.bytes_in;
            net.bytes_out += part_net.bytes_out;
        }
        for row in &part.per_tenant {
            match rows.iter_mut().find(|r| r.tenant == row.tenant) {
                Some(existing) => {
                    existing.ingested_intervals += row.ingested_intervals;
                    existing.queue_depth += row.queue_depth;
                    existing.queue_bound = existing.queue_bound.max(row.queue_bound);
                    existing.busy_rejections += row.busy_rejections;
                    existing.shed_batches += row.shed_batches;
                    existing.shed_intervals += row.shed_intervals;
                    existing.timeouts += row.timeouts;
                    existing.ingest.merge(&row.ingest);
                    existing.query.merge(&row.query);
                    existing.drift_links_appeared += row.drift_links_appeared;
                    existing.drift_links_disappeared += row.drift_links_disappeared;
                    existing.drift_path_set_changes += row.drift_path_set_changes;
                }
                None => rows.push(row.clone()),
            }
        }
    }
    rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    merged.per_tenant = rows;
    merged
}

/// Merges per-backend tenant listings, sorted by tenant id.
pub fn merge_tenant_lists(parts: &[Vec<TenantSummary>]) -> Vec<TenantSummary> {
    let mut merged: Vec<TenantSummary> = parts.iter().flatten().cloned().collect();
    merged.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    merged
}

/// Parses one backend response line into its envelope.
pub fn parse_response(line: &str) -> Result<ResponseEnvelope, String> {
    tomo_serve::protocol::decode(line).map_err(|e| e.to_string())
}

/// Extracts the `resp` of a backend response line, mapping parse failures
/// to a router-side internal error response.
pub fn response_of(line: &str) -> Response {
    match parse_response(line) {
        Ok(envelope) => envelope.resp,
        Err(e) => Response::error(
            tomo_serve::protocol::ErrorKind::Internal,
            format!("unparseable backend response: {e}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tomo_serve::protocol::TenantLoad;

    #[test]
    fn fleet_stats_merge_sums_counters_and_sorts_tenants() {
        let a = FleetStats {
            tenants: 2,
            shards: 8,
            total_ingested: 100,
            busy_rejections: 3,
            shed_batches: 2,
            timeouts: 1,
            refits: Default::default(),
            drift: Default::default(),
            live_connections: 5,
            per_tenant: vec![
                TenantLoad {
                    tenant: "zeta".into(),
                    pending_batches: 1,
                    live_conns: 2,
                },
                TenantLoad {
                    tenant: "alpha".into(),
                    pending_batches: 0,
                    live_conns: 3,
                },
            ],
        };
        let b = FleetStats {
            tenants: 1,
            shards: 8,
            total_ingested: 50,
            busy_rejections: 1,
            shed_batches: 1,
            timeouts: 4,
            refits: Default::default(),
            drift: Default::default(),
            live_connections: 4,
            per_tenant: vec![TenantLoad {
                tenant: "mid".into(),
                pending_batches: 2,
                live_conns: 4,
            }],
        };
        let merged = merge_fleet_stats(&[a, b]);
        assert_eq!(merged.tenants, 3);
        assert_eq!(merged.shards, 16);
        assert_eq!(merged.total_ingested, 150);
        assert_eq!(merged.busy_rejections, 4);
        assert_eq!(merged.shed_batches, 3);
        assert_eq!(merged.timeouts, 5);
        assert_eq!(merged.live_connections, 9);
        let names: Vec<&str> = merged
            .per_tenant
            .iter()
            .map(|t| t.tenant.as_str())
            .collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn metrics_merge_sums_totals_and_rederives_quantiles() {
        use tomo_metrics::{HistogramSnapshot, LatencySummary};

        let summary = |samples: &[u64]| {
            let mut hist = HistogramSnapshot::new();
            for &s in samples {
                hist.record(s);
            }
            LatencySummary::from_snapshot(hist)
        };
        let row = |tenant: &str, intervals: u64, samples: &[u64]| TenantMetrics {
            tenant: tenant.into(),
            ingested_intervals: intervals,
            queue_depth: 1,
            queue_bound: 64,
            admission: Default::default(),
            busy_rejections: 0,
            shed_batches: 0,
            shed_intervals: 0,
            timeouts: 0,
            ingest: summary(samples),
            query: LatencySummary::default(),
            drift_links_appeared: 0,
            drift_links_disappeared: 0,
            drift_path_set_changes: 0,
        };
        let a = MetricsReport {
            total_intervals: 100,
            busy_rejections: 2,
            shed_batches: 1,
            timeouts: 0,
            net: Some(NetMetrics {
                accepted: 5,
                ..NetMetrics::default()
            }),
            per_tenant: vec![row("zeta", 60, &[1_000, 2_000]), row("alpha", 40, &[500])],
        };
        let b = MetricsReport {
            total_intervals: 50,
            busy_rejections: 1,
            shed_batches: 0,
            timeouts: 3,
            net: Some(NetMetrics {
                accepted: 7,
                ..NetMetrics::default()
            }),
            // Same tenant as backend `a` (mid-rebalance): histograms must
            // combine, not average.
            per_tenant: vec![row("zeta", 50, &[1_000_000])],
        };
        let merged = merge_metrics(&[a, b]);
        assert_eq!(merged.total_intervals, 150);
        assert_eq!(merged.busy_rejections, 3);
        assert_eq!(merged.shed_batches, 1);
        assert_eq!(merged.timeouts, 3);
        assert_eq!(merged.net.unwrap().accepted, 12);
        let names: Vec<&str> = merged
            .per_tenant
            .iter()
            .map(|t| t.tenant.as_str())
            .collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        let zeta = &merged.per_tenant[1];
        assert_eq!(zeta.ingested_intervals, 110);
        assert_eq!(zeta.ingest.count, 3);
        // Re-derived from the combined histogram: the p99 reflects the
        // 1ms outlier from backend `b`, which quantile-averaging would
        // have hidden.
        assert!(zeta.ingest.p99_ns >= 1_000_000, "{}", zeta.ingest.p99_ns);
        assert!(zeta.ingest.p50_ns <= 3_000, "{}", zeta.ingest.p50_ns);
    }

    #[test]
    fn tenant_list_merge_is_sorted() {
        let summary = |name: &str| TenantSummary {
            tenant: name.into(),
            estimator: "independence".into(),
            links: 4,
            paths: 3,
            intervals: 0,
        };
        let merged = merge_tenant_lists(&[vec![summary("c"), summary("a")], vec![summary("b")]]);
        let names: Vec<&str> = merged.iter().map(|t| t.tenant.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
