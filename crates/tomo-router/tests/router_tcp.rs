//! End-to-end router tests over real TCP: a router in front of live
//! `tomo-serve` backends must preserve the single-daemon v2 semantics
//! (including `Busy`/`Flush` backpressure and `Attach` binding), merge
//! fleet-level fan-outs, and hand tenants off between backends with their
//! estimator state intact.

use std::sync::Arc;

use tomo_core::estimators;
use tomo_graph::LinkId;
use tomo_router::{rebalance, Fleet, Router, DEFAULT_VNODES};
use tomo_serve::protocol::{ErrorKind, Request, Response};
use tomo_serve::stream::{record_scenario, stream_to_observations, ObservedInterval};
use tomo_serve::{Client, EngineRegistry, RegistryConfig, Server};
use tomo_sim::{MeasurementMode, ScenarioConfig};

/// Starts one backend daemon on an ephemeral port.
fn start_backend(config: RegistryConfig, threads: usize) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(EngineRegistry::new(config)),
        threads,
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run().expect("backend runs"));
    (addr, handle)
}

/// Starts a router over `backends` on an ephemeral port.
fn start_router(backends: &[String]) -> (String, std::thread::JoinHandle<()>) {
    let fleet = Fleet::new(backends, DEFAULT_VNODES);
    let router = Router::bind("127.0.0.1:0", fleet, 4, None).unwrap();
    let addr = router.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || router.run().expect("router runs"));
    (addr, handle)
}

/// Records a drifting-loss stream on a named topology.
fn stream_for(topology: &str, seed: u64, intervals: usize) -> Vec<Vec<usize>> {
    let network = tomo_serve::resolve_topology(topology, seed).unwrap();
    let mut scenario = ScenarioConfig::drifting_loss();
    scenario.congestible_fraction = 0.5;
    record_scenario(&network, scenario, intervals, seed, MeasurementMode::Ideal)
        .into_iter()
        .map(|i| i.congested)
        .collect()
}

/// Offline batch fit on a stream, as dense link probabilities.
fn offline_fit(topology: &str, seed: u64, estimator: &str, stream: &[Vec<usize>]) -> Vec<f64> {
    let network = tomo_serve::resolve_topology(topology, seed).unwrap();
    let observations = stream_to_observations(
        &stream
            .iter()
            .map(|c| ObservedInterval {
                congested: c.clone(),
            })
            .collect::<Vec<_>>(),
        network.num_paths(),
    )
    .unwrap();
    let mut offline = estimators::by_name(estimator).unwrap();
    offline.fit(&network, &observations).unwrap();
    let estimate = offline.estimate().unwrap();
    (0..network.num_links())
        .map(|l| estimate.link_congestion_probability(LinkId(l)))
        .collect()
}

/// The core proxy contract: tenants spread across two backends, per-tenant
/// traffic routes to the owner and matches the offline fit, fleet requests
/// merge across backends (with per-tenant load rows and live-connection
/// totals), `Attach` binds the *client's* router connection, and
/// `Shutdown` through the router stops the whole fleet.
#[test]
fn router_spreads_tenants_and_merges_fleet_views() {
    let (b1, h1) = start_backend(RegistryConfig::default(), 3);
    let (b2, h2) = start_backend(RegistryConfig::default(), 3);
    let backends = vec![b1.clone(), b2.clone()];
    let (router_addr, router_handle) = start_router(&backends);

    // 10 tenants, all created *through the router*.
    let fleet_view = Fleet::new(&backends, DEFAULT_VNODES);
    let tenants: Vec<String> = (0..10).map(|i| format!("as-{i}")).collect();
    let mut per_backend = std::collections::HashMap::new();
    for tenant in &tenants {
        let owner = fleet_view.owner_of(tenant).unwrap().to_string();
        *per_backend.entry(owner).or_insert(0usize) += 1;
        let mut client = Client::connect(&router_addr).unwrap();
        client
            .create_tenant(tenant.clone(), "toy", 0, "independence", None, None)
            .unwrap();
    }
    // With 10 tenants and 64 vnodes the deterministic hash spreads over
    // both backends; this guards against a degenerate ring.
    assert_eq!(per_backend.len(), 2, "placement: {per_backend:?}");

    // Each backend only knows its own tenants.
    for backend in &backends {
        let mut direct = Client::connect(backend).unwrap();
        match direct.call(&Request::ListTenants).unwrap() {
            Response::Tenants { tenants: rows } => {
                assert_eq!(rows.len(), per_backend[backend], "{backend}");
                for row in rows {
                    assert_eq!(fleet_view.owner_of(&row.tenant).unwrap(), backend);
                }
            }
            other => panic!("{other:?}"),
        }
    }

    // Stream through the router; estimates must match the offline fit.
    let stream = stream_for("toy", 0, 100);
    let want = offline_fit("toy", 0, "independence", &stream);
    for tenant in &tenants {
        let mut client = Client::connect(&router_addr).unwrap();
        client.set_tenant(tenant.clone());
        for chunk in stream.chunks(20) {
            while !client.observe_batch(chunk.to_vec()).unwrap() {
                client.flush().unwrap();
            }
        }
        assert_eq!(client.flush().unwrap(), 100, "{tenant}");
        let got = client.query().unwrap();
        assert_eq!(got.intervals, 100);
        for (l, (g, w)) in got.probabilities.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-3, "{tenant} link {l}: {g} vs {w}");
        }
    }

    // Attach binds the router-side client connection: after Attach the
    // tenant field can be omitted entirely.
    let mut attached = Client::connect(&router_addr).unwrap();
    attached.set_tenant("as-3");
    assert!(matches!(
        attached.call(&Request::Attach).unwrap(),
        Response::Attached { .. }
    ));
    {
        use std::io::{BufRead, BufReader, Write};
        let mut raw = std::net::TcpStream::connect(&router_addr).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut line = String::new();
        // Attach with a tenant, then query with *no* tenant field.
        writeln!(raw, r#"{{"v":2,"tenant":"as-7","req":"Attach"}}"#).unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("Attached"), "{line}");
        line.clear();
        writeln!(raw).unwrap(); // blank lines stay ignored through the router
        writeln!(raw, r#"{{"v":2,"tenant":null,"req":"Stats"}}"#).unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"Stats\""), "{line}");
        assert!(line.contains("\"as-7\""), "{line}");
    }

    // Fleet views through the router merge both backends.
    let mut admin = Client::connect(&router_addr).unwrap();
    match admin.call(&Request::ListTenants).unwrap() {
        Response::Tenants { tenants: rows } => {
            let names: Vec<&str> = rows.iter().map(|t| t.tenant.as_str()).collect();
            let mut want_names: Vec<&str> = tenants.iter().map(String::as_str).collect();
            want_names.sort();
            assert_eq!(names, want_names);
            assert!(rows.iter().all(|t| t.intervals == 100));
        }
        other => panic!("{other:?}"),
    }
    match admin.call(&Request::FleetStats).unwrap() {
        Response::Fleet(fleet) => {
            assert_eq!(fleet.tenants, 10);
            assert_eq!(fleet.total_ingested, 1000);
            // Both daemons report 8 shards; the merged view sums them.
            assert_eq!(fleet.shards, 16);
            assert_eq!(fleet.per_tenant.len(), 10);
            let mut names: Vec<&str> = fleet.per_tenant.iter().map(|t| t.tenant.as_str()).collect();
            let sorted = {
                let mut s = names.clone();
                s.sort();
                s
            };
            assert_eq!(names, sorted, "per-tenant rows must arrive sorted");
            names.dedup();
            assert_eq!(names.len(), 10);
            // The router's pooled backend connections are live connections,
            // and the forwarded Attach calls bound some of them to tenants.
            assert!(fleet.live_connections > 0, "{fleet:?}");
            let bound: u64 = fleet.per_tenant.iter().map(|t| t.live_conns).sum();
            assert!(
                bound >= 1,
                "no tenant shows a live attached conn: {fleet:?}"
            );
        }
        other => panic!("{other:?}"),
    }

    // A tenant-scoped request with no tenant and no attachment is a typed
    // error from the router itself.
    let mut bare = Client::connect(&router_addr).unwrap();
    match bare.call(&Request::Stats).unwrap() {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::InvalidRequest);
            assert!(message.contains("tenant"), "{message}");
        }
        other => panic!("{other:?}"),
    }

    // Shutdown through the router stops backends and router alike.
    assert!(matches!(
        admin.call(&Request::Shutdown).unwrap(),
        Response::Bye
    ));
    router_handle.join().unwrap();
    h1.join().unwrap();
    h2.join().unwrap();
}

/// Backpressure passes through unchanged: flooding a tenant behind the
/// router yields `Busy` (observe_batch → false), a `Flush` absorbs it, and
/// the backend's own rejection counters agree.
#[test]
fn busy_flush_retry_flows_through_the_router() {
    let config = RegistryConfig {
        queue_bound: 2,
        ..RegistryConfig::default()
    };
    let (b1, h1) = start_backend(config, 4);
    let backends = vec![b1];
    let (router_addr, router_handle) = start_router(&backends);

    let mut admin = Client::connect(&router_addr).unwrap();
    // A buffered full-refit estimator makes batch drains slow enough for
    // concurrent writers to overflow a queue bound of 2.
    admin
        .create_tenant("noisy", "brite-tiny", 3, "bayesian-correlation", None, None)
        .unwrap();

    // Flood through the router from three connections at once until the
    // queue bound bites (the exact same drill the direct-path backpressure
    // test runs against a bare daemon).
    let stream = Arc::new(stream_for("brite-tiny", 3, 400));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let busy_total = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut flooders = Vec::new();
    for f in 0..3 {
        let router_addr = router_addr.clone();
        let stream = Arc::clone(&stream);
        let stop = Arc::clone(&stop);
        let busy_total = Arc::clone(&busy_total);
        flooders.push(std::thread::spawn(move || {
            let mut client = Client::connect(&router_addr).unwrap();
            client.set_tenant("noisy");
            'outer: for _round in 0..50 {
                for chunk in stream.chunks(40).skip(f % 2) {
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        break 'outer;
                    }
                    match client.observe_batch(chunk.to_vec()) {
                        Ok(true) => {}
                        Ok(false) => {
                            busy_total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(tomo_core::TomoError::Io(_)) => break 'outer,
                        Err(e) => panic!("flooder failed: {e}"),
                    }
                }
            }
        }));
    }
    for _ in 0..2000 {
        if busy_total.load(std::sync::atomic::Ordering::Relaxed) >= 5 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for flooder in flooders {
        flooder.join().unwrap();
    }
    let busy = busy_total.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        busy >= 5,
        "flood never hit the queue bound through the router (busy: {busy})"
    );

    // The canonical recovery sequence works through the router too:
    // Busy → Flush → retry until accepted.
    admin.set_tenant("noisy");
    for chunk in stream.chunks(40).take(3) {
        while !admin.observe_batch(chunk.to_vec()).unwrap() {
            admin.flush().unwrap();
        }
    }
    admin.flush().unwrap();

    // The backend's own counters agree that backpressure engaged.
    let stats = admin.stats().unwrap();
    assert_eq!(stats.queue_bound, 2);
    assert!(stats.busy_rejections >= busy, "{stats:?}");
    assert_eq!(stats.ingest_errors, 0);

    assert!(matches!(
        admin.call(&Request::Shutdown).unwrap(),
        Response::Bye
    ));
    router_handle.join().unwrap();
    h1.join().unwrap();
}

/// The observability contract through the router: `Metrics` fans out and
/// merges such that the router-reported ingest total equals the sum of
/// what each backend reports directly (the CI merge-consistency
/// invariant), per-tenant histogram rows survive the merge, and a
/// tenant-scoped request's `deadline_ms` is forwarded to the owning
/// backend where it produces the same typed `Timeout`.
#[test]
fn metrics_merge_through_the_router_is_consistent_with_backends() {
    let (b1, h1) = start_backend(RegistryConfig::default(), 3);
    let (b2, h2) = start_backend(RegistryConfig::default(), 3);
    let backends = vec![b1.clone(), b2.clone()];
    let (router_addr, router_handle) = start_router(&backends);

    let fleet_view = Fleet::new(&backends, DEFAULT_VNODES);
    let tenants: Vec<String> = (0..8).map(|i| format!("obs-{i}")).collect();
    let owners: std::collections::HashSet<&str> = tenants
        .iter()
        .map(|t| fleet_view.owner_of(t).unwrap())
        .collect();
    assert_eq!(owners.len(), 2, "placement degenerate");

    let stream = stream_for("toy", 0, 60);
    for tenant in &tenants {
        let mut client = Client::connect(&router_addr).unwrap();
        client
            .create_tenant(tenant.clone(), "toy", 0, "independence", None, None)
            .unwrap();
        for chunk in stream.chunks(20) {
            while !client.observe_batch(chunk.to_vec()).unwrap() {
                client.flush().unwrap();
            }
        }
        assert_eq!(client.flush().unwrap(), 60);
        client.query().unwrap();
    }

    // Each backend's own report, fetched directly.
    let mut backend_total = 0u64;
    let mut backend_rows = 0usize;
    for backend in &backends {
        let report = Client::connect(backend).unwrap().metrics().unwrap();
        assert!(report.total_intervals > 0, "{backend} ingested nothing");
        backend_total += report.total_intervals;
        backend_rows += report.per_tenant.len();
    }
    assert_eq!(backend_total, 60 * tenants.len() as u64);

    // The router-merged report must agree exactly.
    let mut admin = Client::connect(&router_addr).unwrap();
    let merged = admin.metrics().unwrap();
    assert_eq!(merged.total_intervals, backend_total);
    assert_eq!(merged.per_tenant.len(), backend_rows);
    let names: Vec<&str> = merged
        .per_tenant
        .iter()
        .map(|t| t.tenant.as_str())
        .collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted, "merged rows must arrive sorted");
    for row in &merged.per_tenant {
        assert_eq!(row.ingested_intervals, 60, "{}", row.tenant);
        assert!(row.ingest.count >= 1, "{}", row.tenant);
        assert!(row.ingest.p50_ns > 0 && row.ingest.p50_ns <= row.ingest.p99_ns);
        assert_eq!(row.query.count, 1, "{}", row.tenant);
    }
    // Both backends contributed their network counters to the merged view.
    let net = merged.net.expect("merged net counters");
    assert!(net.accepted >= 2, "{net:?}");
    assert!(net.lines_in > 0 && net.lines_out > 0, "{net:?}");

    // A deadline on a tenant-scoped request survives the forward: the
    // owning backend, not the router, answers the typed Timeout.
    let mut impatient = Client::connect(&router_addr).unwrap();
    impatient.set_tenant(tenants[0].clone());
    impatient.set_deadline_ms(Some(0));
    match impatient.call(&Request::Query).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Timeout),
        other => panic!("expected Timeout through the router, got {other:?}"),
    }
    impatient.set_deadline_ms(None);
    assert_eq!(impatient.query().unwrap().intervals, 60);
    let after = admin.metrics().unwrap();
    assert_eq!(after.timeouts, 1);

    assert!(matches!(
        admin.call(&Request::Shutdown).unwrap(),
        Response::Bye
    ));
    router_handle.join().unwrap();
    h1.join().unwrap();
    h2.join().unwrap();
}

/// Growing the fleet: rebalance moves exactly the tenants whose ring owner
/// changed — via snapshot-file handoff — and their estimates survive the
/// move to snapshot precision. Rerunning rebalance is a no-op.
#[test]
fn rebalance_hands_tenants_off_with_estimates_intact() {
    let dir1 = std::env::temp_dir()
        .join(format!("tomo-router-rb1-{}", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let dir2 = std::env::temp_dir()
        .join(format!("tomo-router-rb2-{}", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let (b1, h1) = start_backend(
        RegistryConfig {
            snapshot_dir: Some(dir1.clone()),
            ..RegistryConfig::default()
        },
        2,
    );
    let (b2, h2) = start_backend(
        RegistryConfig {
            snapshot_dir: Some(dir2.clone()),
            ..RegistryConfig::default()
        },
        2,
    );
    let old_fleet = vec![b1.clone()];
    let new_fleet = vec![b1.clone(), b2.clone()];

    // Seed 6 tenants on the single-backend fleet and record their
    // estimates.
    let stream = stream_for("toy", 0, 90);
    let tenants: Vec<String> = (0..6).map(|i| format!("tin-{i}")).collect();
    let mut before = std::collections::HashMap::new();
    for tenant in &tenants {
        let mut client = Client::connect(&b1).unwrap();
        client
            .create_tenant(tenant.clone(), "toy", 0, "independence", None, None)
            .unwrap();
        for chunk in stream.chunks(30) {
            while !client.observe_batch(chunk.to_vec()).unwrap() {
                client.flush().unwrap();
            }
        }
        client.flush().unwrap();
        before.insert(tenant.clone(), client.query().unwrap());
    }

    // Hand off to the grown fleet.
    let moves = rebalance(&old_fleet, &new_fleet, DEFAULT_VNODES).unwrap();
    let new_ring = Fleet::new(&new_fleet, DEFAULT_VNODES);
    let expected_movers: Vec<&String> = tenants
        .iter()
        .filter(|t| new_ring.owner_of(t).unwrap() != b1)
        .collect();
    assert!(
        !expected_movers.is_empty(),
        "degenerate ring: no tenant maps to the new backend"
    );
    assert_eq!(moves.len(), expected_movers.len());
    for m in &moves {
        assert_eq!(m.from, b1, "{m:?}");
        assert_eq!(
            m.to, b2,
            "growing by one backend only moves tenants to it: {m:?}"
        );
        assert_eq!(m.intervals, 90, "{m:?}");
    }

    // Rerunning against the same shape moves nothing.
    assert!(rebalance(&new_fleet, &new_fleet, DEFAULT_VNODES)
        .unwrap()
        .is_empty());

    // Through a router over the new fleet, every tenant answers with its
    // pre-move estimate.
    let (router_addr, router_handle) = start_router(&new_fleet);
    let mut client = Client::connect(&router_addr).unwrap();
    for tenant in &tenants {
        client.set_tenant(tenant.clone());
        let after = client.query().unwrap();
        let expected = &before[tenant];
        assert_eq!(after.intervals, expected.intervals, "{tenant}");
        // Same tolerance as the direct snapshot/restore round-trip test:
        // the JSON float encoding bounds snapshot precision near 1e-8.
        for (a, b) in after.probabilities.iter().zip(&expected.probabilities) {
            assert!((a - b).abs() < 1e-6, "{tenant}: {after:?} vs {expected:?}");
        }
    }
    match client.call(&Request::ListTenants).unwrap() {
        Response::Tenants { tenants: rows } => {
            assert_eq!(rows.len(), 6);
            assert!(rows.iter().all(|t| t.intervals == 90));
        }
        other => panic!("{other:?}"),
    }

    assert!(matches!(
        client.call(&Request::Shutdown).unwrap(),
        Response::Bye
    ));
    router_handle.join().unwrap();
    h1.join().unwrap();
    h2.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir2);
}

/// `UploadTopology` through the router broadcasts to every backend (a
/// `Create` naming the upload can land on any ring owner), merges the
/// backends' identical reports into one acceptance, and dedups idempotent
/// re-uploads fleet-wide.
#[test]
fn topology_uploads_broadcast_to_every_backend() {
    let (b1, h1) = start_backend(RegistryConfig::default(), 3);
    let (b2, h2) = start_backend(RegistryConfig::default(), 3);
    let backends = vec![b1.clone(), b2.clone()];
    let (router_addr, router_handle) = start_router(&backends);

    let doc = tomo_topo::TopologyDoc::from_network(tomo_serve::resolve_topology("toy", 0).unwrap());
    let mut client = Client::connect(&router_addr).unwrap();
    let (links, paths, hash) = client.upload_topology("measured-9", doc.clone()).unwrap();
    assert_eq!((links, paths), (4, 3));
    // Idempotent through the router too.
    let (_, _, again) = client.upload_topology("measured-9", doc).unwrap();
    assert_eq!(again, hash);

    // Every backend holds the library entry, so tenants created through the
    // router resolve the name regardless of which owner the ring picks.
    for backend in &backends {
        let mut direct = Client::connect(backend).unwrap();
        let (links, paths) = direct
            .create_tenant_from(
                format!("probe-{backend}").replace([':', '.'], "-"),
                tomo_serve::TopologySource::Named("measured-9".into()),
                0,
                "independence",
                None,
                None,
                None,
            )
            .unwrap();
        assert_eq!((links, paths), (4, 3));
    }
    let fleet_view = Fleet::new(&backends, DEFAULT_VNODES);
    let mut owners = std::collections::HashSet::new();
    for i in 0..8 {
        let tenant = format!("as-{i}");
        owners.insert(fleet_view.owner_of(&tenant).unwrap().to_string());
        let mut client = Client::connect(&router_addr).unwrap();
        let (links, paths) = client
            .create_tenant_from(
                tenant,
                tomo_serve::TopologySource::Named("measured-9".into()),
                0,
                "independence",
                None,
                None,
                None,
            )
            .unwrap();
        assert_eq!((links, paths), (4, 3));
    }
    assert_eq!(owners.len(), 2, "ring must exercise both backends");

    assert!(matches!(
        client.call(&Request::Shutdown).unwrap(),
        Response::Bye
    ));
    router_handle.join().unwrap();
    h1.join().unwrap();
    h2.join().unwrap();
}
