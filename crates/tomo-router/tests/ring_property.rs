//! Property tests for the consistent-hash ring: growing the fleet by one
//! backend must move only ~1/(n+1) of tenants, and every tenant that moves
//! must move *to* the new backend — no collateral reshuffling between
//! surviving backends. This is the property that makes snapshot-handoff
//! rebalancing cheap.

use proptest::prelude::*;
use tomo_router::{HashRing, DEFAULT_VNODES};

/// Backend address for index `i` (stable, collision-free names).
fn backend(i: usize) -> String {
    format!("10.0.0.{}:7070", i + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adding one backend to an `n`-backend fleet relocates roughly a
    /// 1/(n+1) fraction of tenants, and only onto the new backend.
    #[test]
    fn growing_the_fleet_moves_about_one_nth_of_tenants(
        n in 2usize..8,
        tenant_ids in proptest::collection::vec(0u64..1_000_000, 200..400),
    ) {
        let old_backends: Vec<String> = (0..n).map(backend).collect();
        let mut new_backends = old_backends.clone();
        new_backends.push(backend(n));
        let added = backend(n);

        let old_ring = HashRing::new(&old_backends, DEFAULT_VNODES);
        let new_ring = HashRing::new(&new_backends, DEFAULT_VNODES);

        let mut tenants: Vec<String> =
            tenant_ids.iter().map(|id| format!("tenant-{id}")).collect();
        tenants.sort();
        tenants.dedup();

        let mut moved = 0usize;
        for tenant in &tenants {
            let before = old_ring.backend_for(tenant).unwrap();
            let after = new_ring.backend_for(tenant).unwrap();
            if before != after {
                // The only legal destination is the backend we added.
                prop_assert_eq!(
                    after, added.as_str(),
                    "tenant {} moved {} -> {} instead of to the new backend",
                    tenant, before, after
                );
                moved += 1;
            }
        }

        // Expect ~|tenants|/(n+1) movers. Virtual nodes keep the variance
        // modest; allow a generous 3x band plus slack for small samples.
        let expected = tenants.len() as f64 / (n as f64 + 1.0);
        let bound = (3.0 * expected + 10.0).ceil() as usize;
        prop_assert!(
            moved <= bound,
            "{} of {} tenants moved when adding 1 backend to {} (expected ~{:.0}, bound {})",
            moved, tenants.len(), n, expected, bound
        );
    }

    /// Shrinking is symmetric: tenants not owned by the removed backend
    /// stay exactly where they were.
    #[test]
    fn shrinking_the_fleet_only_moves_the_removed_backends_tenants(
        n in 3usize..8,
        victim in 0usize..8,
        tenant_ids in proptest::collection::vec(0u64..1_000_000, 100..300),
    ) {
        let victim = victim % n;
        let old_backends: Vec<String> = (0..n).map(backend).collect();
        let removed = old_backends[victim].clone();
        let new_backends: Vec<String> = old_backends
            .iter()
            .filter(|b| **b != removed)
            .cloned()
            .collect();

        let old_ring = HashRing::new(&old_backends, DEFAULT_VNODES);
        let new_ring = HashRing::new(&new_backends, DEFAULT_VNODES);

        for id in &tenant_ids {
            let tenant = format!("tenant-{id}");
            let before = old_ring.backend_for(&tenant).unwrap();
            let after = new_ring.backend_for(&tenant).unwrap();
            if before != removed {
                prop_assert_eq!(
                    before, after,
                    "tenant {} was reshuffled {} -> {} though its owner survived",
                    tenant, before, after
                );
            } else {
                prop_assert_ne!(after, removed.as_str());
            }
        }
    }
}
