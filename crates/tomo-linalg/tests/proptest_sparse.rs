//! Property-based equivalence tests for the sparse fast path.
//!
//! `sparse_least_squares` must be a drop-in replacement for the dense
//! `least_squares` oracle on the 0/1 routing systems the tomography
//! algorithms assemble: identical rank and identifiability reporting,
//! residuals bracketed by the dense optimum, and solutions that agree with
//! the exact dense ridge solve wherever both sides minimize the same
//! objective. Densities span the sparse→dense range so both sides of the
//! `should_use_sparse` dispatch threshold are exercised.

use proptest::prelude::*;
use tomo_linalg::{
    gauss, least_squares, sparse_least_squares, LstsqOptions, Matrix, SparseMatrix, Vector,
};

/// Strategy: a random 0/1 system `(A, b)` with `1..=max_rows` rows,
/// `1..=max_cols` columns and a fill density drawn from `[0.05, 0.95)`.
fn binary_system(max_rows: usize, max_cols: usize) -> impl Strategy<Value = (Matrix, Vector)> {
    (1..=max_rows, 1..=max_cols, 0.05f64..0.95).prop_flat_map(|(r, c, density)| {
        (
            proptest::collection::vec(0.0f64..1.0, r * c),
            proptest::collection::vec(-2.0f64..2.0, r),
        )
            .prop_map(move |(cells, rhs)| {
                let data: Vec<f64> = cells
                    .into_iter()
                    .map(|u| if u < density { 1.0 } else { 0.0 })
                    .collect();
                (Matrix::from_vec(r, c, data), Vector::from_slice(&rhs))
            })
    })
}

/// Strategy: a 0/1 system with strictly more columns than rows, so the
/// matrix is rank-deficient and the dense solver is forced onto its ridge
/// fallback — the regime where dense and sparse minimize the identical
/// objective.
fn wide_binary_system() -> impl Strategy<Value = (Matrix, Vector)> {
    (1..=6usize, 0.1f64..0.9).prop_flat_map(|(r, density)| {
        ((r + 1)..=(r + 8)).prop_flat_map(move |c| {
            (
                proptest::collection::vec(0.0f64..1.0, r * c),
                proptest::collection::vec(-2.0f64..2.0, r),
            )
                .prop_map(move |(cells, rhs)| {
                    let data: Vec<f64> = cells
                        .into_iter()
                        .map(|u| if u < density { 1.0 } else { 0.0 })
                        .collect();
                    (Matrix::from_vec(r, c, data), Vector::from_slice(&rhs))
                })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_roundtrip_preserves_the_dense_matrix(sys in binary_system(16, 12)) {
        let (a, _) = sys;
        let csr = SparseMatrix::from_dense(&a);
        prop_assert_eq!(csr.rows(), a.rows());
        prop_assert_eq!(csr.cols(), a.cols());
        let ones = (0..a.rows())
            .flat_map(|i| (0..a.cols()).map(move |j| (i, j)))
            .filter(|&(i, j)| a[(i, j)] != 0.0)
            .count();
        prop_assert_eq!(csr.nnz(), ones);
        prop_assert!(csr.to_dense().approx_eq(&a, 0.0));
    }

    #[test]
    fn csr_products_match_dense_arithmetic(
        sys in binary_system(14, 10),
        xdata in proptest::collection::vec(-3.0f64..3.0, 10),
        ydata in proptest::collection::vec(-3.0f64..3.0, 14),
    ) {
        let (a, _) = sys;
        let csr = SparseMatrix::from_dense(&a);
        let x = Vector::from_slice(&xdata[..a.cols()]);
        let y = Vector::from_slice(&ydata[..a.rows()]);
        prop_assert!(csr.matvec(&x).approx_eq(&a.matvec(&x), 1e-12));
        prop_assert!(csr.at_matvec(&y).approx_eq(&a.transpose().matvec(&y), 1e-12));
        let ridge = 1e-8;
        let mut ata = a.transpose().matmul(&a);
        for i in 0..a.cols() {
            ata[(i, i)] += ridge;
        }
        prop_assert!(csr.normal_matvec(&x, ridge).approx_eq(&ata.matvec(&x), 1e-10));
        prop_assert!(csr.normal_matrix(ridge).approx_eq(&ata, 1e-12));
    }

    #[test]
    fn sparse_rank_and_identifiability_match_dense(sys in binary_system(16, 12)) {
        let (a, b) = sys;
        let csr = SparseMatrix::from_dense(&a);
        let opts = LstsqOptions::default();
        let dense = least_squares(&a, &b, &opts);
        let sparse = sparse_least_squares(&csr, &b, &opts);
        prop_assert_eq!(sparse.rank, dense.rank);
        prop_assert_eq!(sparse.identifiable, dense.identifiable);
    }

    #[test]
    fn sparse_solution_solves_the_ridge_normal_equations(sys in binary_system(16, 12)) {
        // CG runs on (AᵀA + λI) x = Aᵀb; its exit criterion is far below the
        // identifiability scale, so the returned x must satisfy the system
        // to solver precision. The solution itself is compared to a direct
        // dense elimination of the identical matrix — on the fitted values
        // and the identifiable components only, because in unidentifiable
        // null directions the dense elimination amplifies rounding noise by
        // 1/λ while CG (starting from x₀ = 0) stays in range(AᵀA); both are
        // equally valid minimizers there and neither value is meaningful.
        let (a, b) = sys;
        let csr = SparseMatrix::from_dense(&a);
        let opts = LstsqOptions::default();
        let sparse = sparse_least_squares(&csr, &b, &opts);
        let normal = csr.normal_matrix(opts.ridge);
        let atb = csr.at_matvec(&b);
        let gap = &normal.matvec(&sparse.x) - &atb;
        prop_assert!(gap.norm_inf() <= 1e-10 * (1.0 + atb.norm_inf()));
        let exact = gauss::solve_square(&normal, &atb)
            .expect("ridge-regularized normal matrix is nonsingular");
        let fitted_gap = &a.matvec(&sparse.x) - &a.matvec(&exact);
        prop_assert!(fitted_gap.norm_inf() <= 1e-6 * (1.0 + b.norm_inf()));
        for i in 0..a.cols() {
            if sparse.identifiable[i] {
                prop_assert!(
                    (sparse.x[i] - exact[i]).abs() <= 1e-6 * (1.0 + exact[i].abs()),
                    "identifiable unknown {} diverges: {} vs {}",
                    i,
                    sparse.x[i],
                    exact[i],
                );
            }
        }
    }

    #[test]
    fn sparse_residual_brackets_the_dense_optimum(sys in binary_system(16, 12)) {
        // The ridge solution can never beat the unregularized least-squares
        // optimum, and can trail it by at most λ‖x*‖² (plus solver noise).
        let (a, b) = sys;
        let csr = SparseMatrix::from_dense(&a);
        let opts = LstsqOptions::default();
        let dense = least_squares(&a, &b, &opts);
        let sparse = sparse_least_squares(&csr, &b, &opts);
        let x_norm_sq = dense.x.dot(&dense.x);
        prop_assert!(sparse.residual_norm_sq + 1e-7 >= dense.residual_norm_sq);
        prop_assert!(
            sparse.residual_norm_sq <= dense.residual_norm_sq + opts.ridge * x_norm_sq + 1e-7,
            "sparse residual {} exceeds dense {} by more than the ridge slack",
            sparse.residual_norm_sq,
            dense.residual_norm_sq,
        );
    }

    #[test]
    fn rank_deficient_solutions_agree_where_determined(sys in wide_binary_system()) {
        // With cols > rows both solvers minimize the same ridge objective.
        // The minimizer is only pinned down where the data pins it: fitted
        // values and identifiable components must coincide (null-direction
        // content is 1/λ-amplified rounding noise on the dense side).
        let (a, b) = sys;
        let csr = SparseMatrix::from_dense(&a);
        let opts = LstsqOptions::default();
        let dense = least_squares(&a, &b, &opts);
        let sparse = sparse_least_squares(&csr, &b, &opts);
        prop_assert!(dense.used_ridge_fallback);
        prop_assert!(sparse.used_ridge_fallback);
        prop_assert_eq!(sparse.rank, dense.rank);
        prop_assert_eq!(sparse.identifiable.clone(), dense.identifiable.clone());
        let fitted_gap = &a.matvec(&sparse.x) - &a.matvec(&dense.x);
        prop_assert!(
            fitted_gap.norm_inf() <= 1e-6 * (1.0 + b.norm_inf()),
            "fitted values diverge: ‖AΔx‖∞ = {}",
            fitted_gap.norm_inf(),
        );
        for i in 0..a.cols() {
            if dense.identifiable[i] {
                prop_assert!(
                    (sparse.x[i] - dense.x[i]).abs() <= 1e-6 * (1.0 + dense.x[i].abs()),
                    "identifiable unknown {} diverges: {} vs {}",
                    i,
                    sparse.x[i],
                    dense.x[i],
                );
            }
        }
    }

    #[test]
    fn skipped_identifiability_reports_the_same_contract(sys in binary_system(16, 12)) {
        // Hot paths disable the identifiability pass; both solvers must then
        // report the identical placeholder diagnostics (this is what keeps
        // the online and batch estimators in agreement at scale).
        let (a, b) = sys;
        let csr = SparseMatrix::from_dense(&a);
        let opts = LstsqOptions::without_identifiability();
        let dense = least_squares(&a, &b, &opts);
        let sparse = sparse_least_squares(&csr, &b, &opts);
        prop_assert_eq!(sparse.rank, dense.rank);
        prop_assert_eq!(sparse.rank, a.cols().min(a.rows()));
        prop_assert_eq!(sparse.identifiable.clone(), dense.identifiable.clone());
        prop_assert!(sparse.identifiable.iter().all(|&f| f));
    }
}
