//! Property-based tests for the linear-algebra substrate.
//!
//! These exercise the invariants the tomography algorithms rely on:
//! rank/nullity consistency, null-space correctness, QR orthogonality and
//! reconstruction, least-squares optimality, and agreement between the
//! incremental null-space update (Algorithm 2) and batch recomputation.

use proptest::prelude::*;
use tomo_linalg::{
    gauss, least_squares, lstsq::LstsqOptions, nullspace, nullspace_update, qr_decompose, Matrix,
    Vector,
};

/// Strategy: a small dense matrix with entries in [-5, 5].
fn small_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-5.0f64..5.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: a small binary matrix (like the tomography incidence matrices).
fn binary_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(prop_oneof![Just(0.0f64), Just(1.0f64)], r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rank_is_at_most_min_dimension(m in small_matrix(6, 6)) {
        let r = gauss::rank(&m);
        prop_assert!(r <= m.rows().min(m.cols()));
    }

    #[test]
    fn rank_of_transpose_matches(m in small_matrix(6, 6)) {
        prop_assert_eq!(gauss::rank(&m), gauss::rank(&m.transpose()));
    }

    #[test]
    fn nullspace_is_annihilated(m in binary_matrix(8, 8)) {
        let ns = nullspace(&m);
        prop_assert_eq!(ns.cols(), m.cols() - gauss::rank(&m));
        if ns.cols() > 0 {
            prop_assert!(m.matmul(&ns).max_abs() < 1e-7);
        }
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthogonal(m in small_matrix(6, 5)) {
        let qr = qr_decompose(&m);
        prop_assert!(qr.reconstruct().approx_eq(&m, 1e-7));
        let qtq = qr.q.transpose().matmul(&qr.q);
        prop_assert!(qtq.approx_eq(&Matrix::identity(m.rows()), 1e-7));
    }

    #[test]
    fn least_squares_gradient_vanishes_on_full_rank(
        m in small_matrix(7, 4),
        bdata in proptest::collection::vec(-5.0f64..5.0, 7),
    ) {
        prop_assume!(m.rows() >= m.cols());
        prop_assume!(gauss::rank(&m) == m.cols());
        let b = Vector::from_slice(&bdata[..m.rows()]);
        let sol = least_squares(&m, &b, &LstsqOptions::default());
        if !sol.used_ridge_fallback {
            let residual = &m.matvec(&sol.x) - &b;
            let grad = m.transpose().matvec(&residual);
            prop_assert!(grad.norm_inf() < 1e-6);
        }
    }

    #[test]
    fn incremental_update_matches_batch(
        base in binary_matrix(5, 7),
        row in proptest::collection::vec(prop_oneof![Just(0.0f64), Just(1.0f64)], 7),
    ) {
        prop_assume!(base.cols() == 7);
        let n0 = nullspace(&base);
        let upd = nullspace_update(&n0, &row);
        let mut aug = base.clone();
        aug.push_row(&row);
        let batch = nullspace(&aug);
        // Dimensions agree...
        prop_assert_eq!(upd.clone().into_basis().cols(), batch.cols());
        // ...and the incremental basis is annihilated by the augmented matrix.
        let nb = upd.into_basis();
        if nb.cols() > 0 {
            prop_assert!(aug.matmul(&nb).max_abs() < 1e-7);
        }
    }

    #[test]
    fn row_sequence_fold_spans_batch_nullspace(
        rows in proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(0.0f64), Just(1.0f64)], 6),
            1..=10,
        ),
    ) {
        // Fold a whole random row sequence through Algorithm 2, starting
        // from the null space of the empty system (the identity), exactly
        // as the online estimator rebuilds its basis. After every step the
        // incrementally maintained basis must describe the same null space
        // as a from-scratch recompute on the accumulated matrix.
        let n = 6;
        let mut basis = Matrix::identity(n);
        let mut acc = Matrix::zeros(0, n);
        for row in &rows {
            let before = basis.cols();
            let increases = gauss::row_increases_rank(&acc, row);
            let upd = nullspace_update(&basis, row);
            // Algorithm 2 reduces the basis exactly when the row is a new,
            // linearly independent equation.
            prop_assert_eq!(upd.reduced(), increases);
            basis = upd.into_basis();
            acc.push_row(row);
            prop_assert_eq!(basis.cols(), if increases { before - 1 } else { before });
            // Same dimension as the batch null space...
            prop_assert_eq!(basis.cols(), nullspace(&acc).cols());
            if basis.cols() > 0 {
                // ...annihilated by the accumulated matrix...
                prop_assert!(acc.matmul(&basis).max_abs() < 1e-7);
                // ...and of full column rank, so it *spans* the null space
                // rather than collapsing into a subspace of it.
                prop_assert_eq!(gauss::rank(&basis.transpose()), basis.cols());
            }
        }
    }

    #[test]
    fn solve_multi_agrees_with_per_column_solves(
        data in proptest::collection::vec(-4.0f64..4.0, 16),
        bdata in proptest::collection::vec(-4.0f64..4.0, 4 * 3),
    ) {
        let a = Matrix::from_vec(4, 4, data);
        let b = Matrix::from_vec(4, 3, bdata);
        let multi = gauss::solve_multi(&a, &b);
        let singles: Vec<Option<Vector>> =
            (0..3).map(|j| gauss::solve_square(&a, &b.col(j))).collect();
        match multi {
            Some(x) => {
                for (j, single) in singles.iter().enumerate() {
                    let single = single.as_ref().expect("singular detection must agree");
                    prop_assert!(x.col(j).approx_eq(single, 1e-6));
                }
            }
            None => prop_assert!(singles.iter().any(|s| s.is_none())),
        }
    }

    #[test]
    fn matmul_is_associative(
        a in small_matrix(4, 3),
        bdata in proptest::collection::vec(-3.0f64..3.0, 3 * 4),
        cdata in proptest::collection::vec(-3.0f64..3.0, 4 * 2),
    ) {
        prop_assume!(a.cols() == 3);
        let b = Matrix::from_vec(3, 4, bdata);
        let c = Matrix::from_vec(4, 2, cdata);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-7));
    }

    #[test]
    fn solve_square_solution_satisfies_system(
        data in proptest::collection::vec(-4.0f64..4.0, 16),
        bdata in proptest::collection::vec(-4.0f64..4.0, 4),
    ) {
        let a = Matrix::from_vec(4, 4, data);
        let b = Vector::from_slice(&bdata);
        if let Some(x) = gauss::solve_square(&a, &b) {
            let ax = a.matvec(&x);
            prop_assert!(ax.approx_eq(&b, 1e-5));
        }
    }
}
