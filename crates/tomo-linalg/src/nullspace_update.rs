//! Incremental null-space update — Algorithm 2 of the paper.
//!
//! When Algorithm 1 adds a new path-set equation (a new row `r` of the system
//! matrix), recomputing the null space from scratch would cost a full
//! elimination over a matrix with thousands of rows. Algorithm 2 instead
//! updates the existing null-space basis `N` directly:
//!
//! ```text
//! NullSpaceUpdate(N, r) = (I_n − N_j · r / (r · N_j)) · N_{-j}
//! ```
//!
//! where `N_j` is a column of `N` not orthogonal to `r` (the paper fixes
//! `j = 1` after the search loop guarantees `‖r × N‖ > 0`; we pick the column
//! with the largest `|r · N_j|` for numerical robustness, which is equivalent
//! up to a column permutation of the basis) and `N_{-j}` is `N` with that
//! column removed. The result spans the null space of the augmented matrix
//! `[R; r]` and has exactly one fewer column than `N`.

use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::DEFAULT_TOL;

/// Outcome of an incremental null-space update.
#[derive(Clone, Debug)]
pub enum NullSpaceUpdate {
    /// The row was linearly dependent on the existing equations
    /// (`r · N = 0`): the null space is unchanged and the row adds no
    /// information.
    Unchanged(Matrix),
    /// The row was independent: the returned basis spans the null space of
    /// the augmented system and has one fewer column.
    Reduced(Matrix),
}

impl NullSpaceUpdate {
    /// Returns the (possibly updated) null-space basis, consuming the enum.
    pub fn into_basis(self) -> Matrix {
        match self {
            NullSpaceUpdate::Unchanged(n) | NullSpaceUpdate::Reduced(n) => n,
        }
    }

    /// Returns `true` if the row reduced the null space (i.e. it was a new,
    /// linearly independent equation).
    pub fn reduced(&self) -> bool {
        matches!(self, NullSpaceUpdate::Reduced(_))
    }
}

/// Checks whether the row `r` "sees" the null space `n`, i.e. whether
/// `‖r × N‖ > tol`. This is the test on line 13 of Algorithm 1: a candidate
/// path set only helps if its row is not orthogonal to the current null
/// space (equivalently, if appending it increases the rank of the system).
pub fn row_intersects_nullspace(n: &Matrix, r: &[f64], tol: f64) -> bool {
    if n.cols() == 0 {
        return false;
    }
    let rv = Vector::from_slice(r);
    let prod = n.vecmat(&rv); // r × N, length = n.cols()
    prod.norm_inf() > tol
}

/// Applies Algorithm 2: updates the null-space basis `n` after appending the
/// row `r` to the system matrix.
///
/// `n` must have `r.len()` rows (one per unknown). If `r` is orthogonal to
/// every column of `n` the basis is returned unchanged wrapped in
/// [`NullSpaceUpdate::Unchanged`]; otherwise the reduced basis is returned in
/// [`NullSpaceUpdate::Reduced`].
pub fn nullspace_update(n: &Matrix, r: &[f64]) -> NullSpaceUpdate {
    nullspace_update_with_tol(n, r, DEFAULT_TOL)
}

/// Same as [`nullspace_update`] with an explicit zero tolerance.
pub fn nullspace_update_with_tol(n: &Matrix, r: &[f64], tol: f64) -> NullSpaceUpdate {
    assert_eq!(
        n.rows(),
        r.len(),
        "null-space basis has {} rows but row vector has length {}",
        n.rows(),
        r.len()
    );
    let p = n.cols();
    if p == 0 {
        return NullSpaceUpdate::Unchanged(n.clone());
    }
    let rv = Vector::from_slice(r);
    // r · N_j for every column j.
    let dots = n.vecmat(&rv);
    // Pick the column with the largest |r · N_j| (the paper uses j = 1; any
    // non-orthogonal column yields the same span).
    let (j, &dj) = match dots
        .as_slice()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
    {
        Some(x) => x,
        None => return NullSpaceUpdate::Unchanged(n.clone()),
    };
    if dj.abs() <= tol {
        return NullSpaceUpdate::Unchanged(n.clone());
    }

    let nj = n.col(j);
    // For every remaining column c: c' = c − N_j · (r · c) / (r · N_j).
    // This is the rank-one update (I − N_j r / (r N_j)) applied column-wise,
    // which keeps R · c' = 0 (columns stay in the old null space) and makes
    // r · c' = 0 (they also annihilate the new row).
    let mut out = Matrix::zeros(n.rows(), p - 1);
    let mut oc = 0;
    for c in 0..p {
        if c == j {
            continue;
        }
        let factor = dots[c] / dj;
        for i in 0..n.rows() {
            out[(i, oc)] = n[(i, c)] - nj[i] * factor;
        }
        oc += 1;
    }
    NullSpaceUpdate::Reduced(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss::rank;
    use crate::nullspace::nullspace;

    /// Checks that every column of `ns` is annihilated by every row of `a`.
    fn annihilates(a: &Matrix, ns: &Matrix) -> bool {
        ns.cols() == 0 || a.matmul(ns).max_abs() < 1e-8
    }

    #[test]
    fn independent_row_shrinks_basis_by_one() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0, 0.0, 0.0, 0.0]]);
        let n0 = nullspace(&a);
        assert_eq!(n0.cols(), 4);

        let r = vec![1.0, 0.0, 0.0, 0.0, 1.0];
        let upd = nullspace_update(&n0, &r);
        assert!(upd.reduced());
        let n1 = upd.into_basis();
        assert_eq!(n1.cols(), 3);

        let mut aug = a.clone();
        aug.push_row(&r);
        assert!(annihilates(&aug, &n1));
        // The updated basis must still be full column rank.
        assert_eq!(rank(&n1.transpose()), 3);
    }

    #[test]
    fn dependent_row_leaves_basis_unchanged() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0, 0.0], vec![0.0, 1.0, 1.0]]);
        let n0 = nullspace(&a);
        assert_eq!(n0.cols(), 1);
        // This row is the sum of the two existing ones minus nothing new in
        // terms of the null space? Actually test with a row orthogonal to N:
        // any linear combination of existing rows is orthogonal to the null
        // space.
        let dependent = vec![1.0, 2.0, 1.0]; // row1 + row2
        let upd = nullspace_update(&n0, &dependent);
        assert!(!upd.reduced());
        assert_eq!(upd.into_basis().cols(), 1);
    }

    #[test]
    fn repeated_updates_match_batch_nullspace_dimension() {
        // Start from one equation and add rows one at a time; the dimension
        // of the incrementally maintained null space must always match the
        // batch computation on the accumulated matrix.
        let rows = [
            vec![1.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 1.0, 0.0],
            vec![1.0, 0.0, 1.0, 0.0, 1.0],
            vec![1.0, 1.0, 1.0, 1.0, 0.0], // dependent on rows 0+1
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
        ];
        let mut acc = Matrix::from_rows(&[rows[0].clone()]);
        let mut n = nullspace(&acc);
        for row in rows.iter().skip(1) {
            let upd = nullspace_update(&n, row);
            let increased = crate::gauss::row_increases_rank(&acc, row);
            assert_eq!(upd.reduced(), increased, "incremental/batch disagree");
            n = upd.into_basis();
            acc.push_row(row);
            assert_eq!(n.cols(), nullspace(&acc).cols());
            assert!(annihilates(&acc, &n));
        }
    }

    #[test]
    fn row_intersects_nullspace_matches_rank_test() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0, 0.0, 0.0]]);
        let n = nullspace(&a);
        assert!(row_intersects_nullspace(&n, &[0.0, 0.0, 1.0, 0.0], 1e-9));
        assert!(!row_intersects_nullspace(&n, &[2.0, 2.0, 0.0, 0.0], 1e-9));
    }

    #[test]
    fn empty_basis_never_intersects() {
        let n = Matrix::zeros(4, 0);
        assert!(!row_intersects_nullspace(&n, &[1.0, 0.0, 0.0, 0.0], 1e-9));
        let upd = nullspace_update(&n, &[1.0, 0.0, 0.0, 0.0]);
        assert!(!upd.reduced());
    }
}
