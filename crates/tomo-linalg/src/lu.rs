//! LU factorization with partial pivoting, for factor-once / solve-many.
//!
//! The online estimators repeatedly solve `(AᵀA + λI) x = Aᵀ b` with a fixed
//! left-hand side and a per-batch right-hand side. The previous scheme
//! materialized the full pseudo-inverse `(AᵀA + λI)⁻¹Aᵀ` with one Gaussian
//! elimination per *column of `Aᵀ`* (an `n × rows` dense product applied per
//! refresh). Factoring once into `P A = L U` costs one `O(n³)` elimination and
//! each subsequent solve is two `O(n²)` triangular sweeps against a vector —
//! no `n × rows` matrix ever exists.

use crate::matrix::Matrix;
use crate::vector::Vector;

/// A partial-pivoting LU factorization `P A = L U` of a square matrix.
///
/// `L` (unit lower) and `U` (upper) are packed into one dense matrix; `piv`
/// records the row swaps applied during elimination.
#[derive(Clone, Debug)]
pub struct LuFactors {
    lu: Matrix,
    piv: Vec<usize>,
}

impl LuFactors {
    /// Factors a square matrix. Returns `None` when the matrix is singular to
    /// working precision (a zero pivot column), in which case callers should
    /// fall back to a least-squares solve.
    pub fn factor(a: &Matrix) -> Option<Self> {
        assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting: largest magnitude in column k at or below the
            // diagonal.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 || !best.is_finite() {
                return None;
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                piv.swap(k, p);
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    lu[(i, j)] -= m * lu[(k, j)];
                }
            }
        }
        Some(Self { lu, piv })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` using the cached factors (`O(n²)`).
    ///
    /// # Panics
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> Vector {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply the row permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let row = self.lu.row_slice(i);
            let mut acc = x[i];
            for (j, xj) in x.iter().enumerate().take(i) {
                acc -= row[j] * xj;
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let row = self.lu.row_slice(i);
            let mut acc = x[i];
            for (j, xj) in x.iter().enumerate().skip(i + 1) {
                acc -= row[j] * xj;
            }
            x[i] = acc / row[i];
        }
        Vector::from_vec(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss::solve_square;

    #[test]
    fn factor_solve_matches_direct_elimination() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let b = Vector::from_slice(&[1.0, -2.0, 3.5]);
        let lu = LuFactors::factor(&a).expect("regular matrix factors");
        let x = lu.solve(&b);
        let direct = solve_square(&a, &b).expect("regular matrix solves");
        assert!(x.approx_eq(&direct, 1e-10));
        assert!(a.matvec(&x).approx_eq(&b, 1e-10));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 1.0]]);
        let lu = LuFactors::factor(&a).expect("pivoting makes this regular");
        let x = lu.solve(&Vector::from_slice(&[3.0, 5.0]));
        assert!(a
            .matvec(&x)
            .approx_eq(&Vector::from_slice(&[3.0, 5.0]), 1e-12));
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(LuFactors::factor(&a).is_none());
    }

    #[test]
    fn factors_are_reused_across_rhs() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let lu = LuFactors::factor(&a).unwrap();
        for k in 0..5 {
            let b = Vector::from_slice(&[k as f64, 1.0 - k as f64]);
            let x = lu.solve(&b);
            assert!(a.matvec(&x).approx_eq(&b, 1e-10), "rhs {k}");
        }
    }
}
