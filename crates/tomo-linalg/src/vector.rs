//! Dense `f64` vector with the small set of operations the tomography
//! algorithms need (dot products, norms, element-wise arithmetic).

use std::fmt;
use std::ops::{Add, Index, IndexMut, Sub};

/// A dense vector of `f64` values.
#[derive(Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Creates a vector from a slice.
    pub fn from_slice(s: &[f64]) -> Self {
        Self { data: s.to_vec() }
    }

    /// Creates a vector by taking ownership of a `Vec<f64>`.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Self { data }
    }

    /// Creates a vector from an iterator of values.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(it: impl IntoIterator<Item = f64>) -> Self {
        Self {
            data: it.into_iter().collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the elements as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// L1 norm (sum of absolute values).
    pub fn norm_l1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Maximum absolute element; `0.0` for an empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns a copy with every element multiplied by `s`.
    pub fn scaled(&self, s: f64) -> Vector {
        let mut v = self.clone();
        v.scale_in_place(s);
        v
    }

    /// Adds `s * other` to `self` in place (an "axpy" update).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, s: f64, other: &Vector) {
        assert_eq!(self.len(), other.len(), "axpy length mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Element-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Vector, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> impl Iterator<Item = &f64> {
        self.data.iter()
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add for &Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "add length mismatch");
        Vector::from_iter(self.data.iter().zip(&rhs.data).map(|(a, b)| a + b))
    }
}

impl Sub for &Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "sub length mismatch");
        Vector::from_iter(self.data.iter().zip(&rhs.data).map(|(a, b)| a - b))
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.4}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Self { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        assert_eq!(Vector::zeros(4).len(), 4);
        assert_eq!(Vector::from_slice(&[1.0, 2.0]).as_slice(), &[1.0, 2.0]);
        assert!(Vector::default().is_empty());
    }

    #[test]
    fn dot_and_norms() {
        let a = Vector::from_slice(&[3.0, 4.0]);
        let b = Vector::from_slice(&[1.0, -1.0]);
        assert_eq!(a.dot(&b), -1.0);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.norm_l1(), 7.0);
        assert_eq!(b.norm_inf(), 1.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
    }

    #[test]
    fn elementwise_operators() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.scaled(-2.0).as_slice(), &[-2.0, -4.0]);
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }
}
