//! Null-space basis extraction.
//!
//! Algorithm 1 of the paper needs, for the system matrix `R` assembled from
//! the initial path sets, a matrix `N` whose columns span the null space of
//! `R` (`R * N = 0`). The basis is obtained from the reduced row-echelon form
//! of `R`: every non-pivot ("free") column contributes one basis vector.

use crate::gauss::rref_with_tol;
use crate::matrix::Matrix;
use crate::DEFAULT_TOL;

/// Computes a basis of the null space of `a`.
///
/// Returns an `n x k` matrix whose `k` columns span `{ x : a x = 0 }`, where
/// `n = a.cols()` and `k = n - rank(a)`. When `a` has full column rank the
/// returned matrix has zero columns (shape `n x 0`).
pub fn nullspace(a: &Matrix) -> Matrix {
    nullspace_with_tol(a, DEFAULT_TOL)
}

/// Computes a basis of the null space of `a` using the supplied tolerance for
/// pivot decisions.
pub fn nullspace_with_tol(a: &Matrix, tol: f64) -> Matrix {
    let n = a.cols();
    if n == 0 {
        return Matrix::zeros(0, 0);
    }
    if a.rows() == 0 {
        // Every vector is in the null space: the basis is the identity.
        return Matrix::identity(n);
    }
    let r = rref_with_tol(a, tol);
    let pivot_cols = &r.pivot_cols;
    let is_pivot: Vec<bool> = {
        let mut v = vec![false; n];
        for &c in pivot_cols {
            v[c] = true;
        }
        v
    };
    let free_cols: Vec<usize> = (0..n).filter(|&c| !is_pivot[c]).collect();
    let k = free_cols.len();
    let mut basis = Matrix::zeros(n, k);

    for (bi, &free_col) in free_cols.iter().enumerate() {
        // The basis vector corresponding to a free column has a 1 in that
        // position; pivot variables are back-filled from the RREF rows.
        basis[(free_col, bi)] = 1.0;
        for (row, &pivot_col) in pivot_cols.iter().enumerate() {
            // RREF row `row` reads: x[pivot_col] + sum_j rref[row, j] x[j] = 0
            // over non-pivot columns j, so x[pivot_col] = -rref[row, free_col].
            basis[(pivot_col, bi)] = -r.rref[(row, free_col)];
        }
    }
    basis
}

/// Returns the nullity (dimension of the null space) of `a`.
pub fn nullity(a: &Matrix) -> usize {
    if a.rows() == 0 {
        return a.cols();
    }
    a.cols() - rref_with_tol(a, DEFAULT_TOL).rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss::rank;

    fn assert_annihilates(a: &Matrix, ns: &Matrix) {
        if ns.cols() == 0 {
            return;
        }
        let prod = a.matmul(ns);
        assert!(
            prod.max_abs() < 1e-8,
            "A * nullspace(A) should be zero, got max abs {}",
            prod.max_abs()
        );
    }

    #[test]
    fn full_rank_matrix_has_empty_nullspace() {
        let a = Matrix::identity(3);
        let ns = nullspace(&a);
        assert_eq!(ns.shape(), (3, 0));
        assert_eq!(nullity(&a), 0);
    }

    #[test]
    fn nullspace_dimension_matches_rank_nullity_theorem() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 4.0, 6.0, 8.0],
            vec![0.0, 1.0, 0.0, 1.0],
        ]);
        let ns = nullspace(&a);
        assert_eq!(ns.cols(), a.cols() - rank(&a));
        assert_annihilates(&a, &ns);
    }

    #[test]
    fn nullspace_of_zero_rows_is_identity() {
        let a = Matrix::zeros(0, 4);
        let ns = nullspace(&a);
        assert!(ns.approx_eq(&Matrix::identity(4), 0.0));
    }

    #[test]
    fn nullspace_vectors_are_independent() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0, 0.0, 0.0], vec![0.0, 0.0, 1.0, 1.0]]);
        let ns = nullspace(&a);
        assert_eq!(ns.cols(), 2);
        assert_annihilates(&a, &ns);
        // The two basis vectors must themselves be linearly independent.
        assert_eq!(rank(&ns.transpose()), 2);
    }

    #[test]
    fn binary_system_example_from_paper_shape() {
        // Matrix(P̂, Ê) example from §5.2 of the paper:
        //   [1 1 0 0 0]
        //   [1 0 0 0 1]
        // has 5 unknowns and rank 2, so nullity 3.
        let a = Matrix::from_rows(&[vec![1.0, 1.0, 0.0, 0.0, 0.0], vec![1.0, 0.0, 0.0, 0.0, 1.0]]);
        let ns = nullspace(&a);
        assert_eq!(ns.cols(), 3);
        assert_annihilates(&a, &ns);
    }
}
