//! Householder QR decomposition.
//!
//! Used by the least-squares solver ([`crate::lstsq`]) for well-conditioned
//! overdetermined systems, and exposed publicly because the paper (§5.3)
//! mentions QR factorization as one of the standard ways to obtain the
//! initial null space of the system matrix.

use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::DEFAULT_TOL;

/// The result of a (full) Householder QR decomposition `A = Q * R` with `Q`
/// orthogonal (`m x m`) and `R` upper trapezoidal (`m x n`).
#[derive(Clone, Debug)]
pub struct QrDecomposition {
    /// Orthogonal factor, `m x m`.
    pub q: Matrix,
    /// Upper-trapezoidal factor, `m x n`.
    pub r: Matrix,
}

impl QrDecomposition {
    /// Numerical rank of `R` (number of diagonal entries above `tol`).
    pub fn rank(&self, tol: f64) -> usize {
        let n = self.r.rows().min(self.r.cols());
        (0..n).filter(|&i| self.r[(i, i)].abs() > tol).count()
    }

    /// Reconstructs `Q * R`; useful for testing.
    pub fn reconstruct(&self) -> Matrix {
        self.q.matmul(&self.r)
    }
}

/// Computes the Householder QR decomposition of `a`.
pub fn qr_decompose(a: &Matrix) -> QrDecomposition {
    let (m, n) = a.shape();
    let mut r = a.clone();
    let mut q = Matrix::identity(m);

    for k in 0..n.min(m.saturating_sub(1)) {
        // Build the Householder reflector for column k, rows k..m.
        let mut norm_x = 0.0;
        for i in k..m {
            norm_x += r[(i, k)] * r[(i, k)];
        }
        let norm_x = norm_x.sqrt();
        if norm_x <= DEFAULT_TOL {
            continue;
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm_x } else { norm_x };
        // v = x - alpha * e1
        let mut v = vec![0.0; m - k];
        v[0] = r[(k, k)] - alpha;
        for i in (k + 1)..m {
            v[i - k] = r[(i, k)];
        }
        let v_norm_sq: f64 = v.iter().map(|x| x * x).sum();
        if v_norm_sq <= DEFAULT_TOL * DEFAULT_TOL {
            continue;
        }

        // Apply the reflector H = I - 2 v vᵀ / (vᵀ v) to R (rows k..m).
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * r[(i, j)];
            }
            let scale = 2.0 * dot / v_norm_sq;
            for i in k..m {
                r[(i, j)] -= scale * v[i - k];
            }
        }
        // Accumulate Q = Q * H (apply H to the columns of Q on the right).
        for i in 0..m {
            let mut dot = 0.0;
            for j in k..m {
                dot += q[(i, j)] * v[j - k];
            }
            let scale = 2.0 * dot / v_norm_sq;
            for j in k..m {
                q[(i, j)] -= scale * v[j - k];
            }
        }
    }

    // Zero out the strictly-lower triangle residue of R.
    for i in 0..m {
        for j in 0..n.min(i) {
            if r[(i, j)].abs() <= 1e-12 {
                r[(i, j)] = 0.0;
            }
        }
    }

    QrDecomposition { q, r }
}

/// Solves the least-squares problem `min_x || A x - b ||_2` via QR, assuming
/// `A` has full column rank. Returns `None` if `A` is rank deficient (the
/// caller should fall back to a regularized solver).
///
/// Unlike [`qr_decompose`], this routine never materializes the orthogonal
/// factor: the Householder reflectors are applied directly to a working copy
/// of `[A | b]`, which keeps the cost at `O(m n^2)` instead of `O(m^2 n)` —
/// the difference between seconds and minutes on the thousands-of-unknowns
/// systems the sparse-topology experiments produce.
pub fn qr_least_squares(a: &Matrix, b: &Vector, tol: f64) -> Option<Vector> {
    let (m, n) = a.shape();
    if b.len() != m || m < n {
        return None;
    }
    // Working copies: R starts as A, rhs starts as b; both get the same
    // sequence of reflectors applied.
    let mut r = a.clone();
    let mut rhs = b.clone();

    for k in 0..n.min(m.saturating_sub(1)) {
        let mut norm_x = 0.0;
        for i in k..m {
            norm_x += r[(i, k)] * r[(i, k)];
        }
        let norm_x = norm_x.sqrt();
        if norm_x <= tol {
            return None; // structurally rank deficient column
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm_x } else { norm_x };
        let mut v = vec![0.0; m - k];
        v[0] = r[(k, k)] - alpha;
        for i in (k + 1)..m {
            v[i - k] = r[(i, k)];
        }
        let v_norm_sq: f64 = v.iter().map(|x| x * x).sum();
        if v_norm_sq <= tol * tol {
            continue;
        }
        // Apply H = I - 2 v vᵀ / (vᵀ v) to the remaining columns of R…
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * r[(i, j)];
            }
            let scale = 2.0 * dot / v_norm_sq;
            if scale != 0.0 {
                for i in k..m {
                    r[(i, j)] -= scale * v[i - k];
                }
            }
        }
        // …and to the right-hand side.
        let mut dot = 0.0;
        for i in k..m {
            dot += v[i - k] * rhs[i];
        }
        let scale = 2.0 * dot / v_norm_sq;
        for i in k..m {
            rhs[i] -= scale * v[i - k];
        }
    }

    // Back substitution on the triangular factor.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let d = r[(i, i)];
        if d.abs() <= tol {
            return None;
        }
        let mut s = rhs[i];
        for j in (i + 1)..n {
            s -= r[(i, j)] * x[j];
        }
        x[i] = s / d;
    }
    Some(Vector::from_vec(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_orthogonal(q: &Matrix, tol: f64) -> bool {
        let qtq = q.transpose().matmul(q);
        qtq.approx_eq(&Matrix::identity(q.rows()), tol)
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let qr = qr_decompose(&a);
        assert!(qr.reconstruct().approx_eq(&a, 1e-9));
        assert!(is_orthogonal(&qr.q, 1e-9));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 3.0],
            vec![4.0, 1.0, 0.0],
            vec![-2.0, 5.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ]);
        let qr = qr_decompose(&a);
        for i in 0..qr.r.rows() {
            for j in 0..qr.r.cols().min(i) {
                assert!(qr.r[(i, j)].abs() < 1e-9, "R[{i},{j}] not zero");
            }
        }
    }

    #[test]
    fn qr_rank_detects_deficiency() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let qr = qr_decompose(&a);
        assert_eq!(qr.rank(1e-9), 1);
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // Overdetermined but consistent: y = 2x + 1 sampled at x = 0,1,2.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 1.0], vec![2.0, 1.0]]);
        let b = Vector::from_slice(&[1.0, 3.0, 5.0]);
        let x = qr_least_squares(&a, &b, 1e-9).expect("full rank");
        assert!(x.approx_eq(&Vector::from_slice(&[2.0, 1.0]), 1e-9));
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system; check optimality via the normal equations:
        // Aᵀ (A x - b) should be ~ 0 at the minimizer.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ]);
        let b = Vector::from_slice(&[0.0, 1.1, 1.9, 3.2]);
        let x = qr_least_squares(&a, &b, 1e-9).expect("full rank");
        let residual = &a.matvec(&x) - &b;
        let grad = a.transpose().matvec(&residual);
        assert!(grad.norm_inf() < 1e-9);
    }

    #[test]
    fn least_squares_rejects_rank_deficient() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
        assert!(qr_least_squares(&a, &b, 1e-9).is_none());
    }
}
