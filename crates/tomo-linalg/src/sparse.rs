//! Compressed-sparse-row (CSR) representation for the 0/1 routing systems.
//!
//! The tomography systems are *extremely* sparse: a row is one path set (or
//! one path) and carries a handful of nonzero entries out of thousands of
//! columns (links / correlation subsets). The dense [`Matrix`] solvers pay
//! `O(rows · cols)` just to look at all those zeros; at `BriteConfig::large`
//! scale (≈12k rows × 5.5k columns) the dense matrix alone would be ~0.5 GB.
//!
//! [`SparseMatrix`] stores only the nonzeros, and [`sparse_least_squares`]
//! solves the same ridge-regularized normal equations the dense fallback
//! solves — `(AᵀA + λI) y = Aᵀ b` — but by conjugate gradients, whose only
//! contact with `A` is one mat-vec and one transposed mat-vec per iteration
//! (`O(nnz)` each). Starting CG from `x₀ = 0` keeps every iterate inside
//! `range(AᵀA)`, so on rank-deficient systems the unidentifiable null-space
//! components stay (numerically) zero — exactly the behaviour of the dense
//! ridge solve — and the effective condition number is governed by the
//! *nonzero* singular values only.
//!
//! The dense path remains the reference oracle: property tests assert the
//! sparse solve matches [`least_squares`](crate::lstsq::least_squares) across
//! densities.

use crate::lstsq::{LstsqOptions, LstsqSolution};
use crate::matrix::Matrix;
use crate::nullspace::nullspace_with_tol;
use crate::vector::Vector;

/// A sparse matrix in compressed-sparse-row form.
///
/// Invariants: `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`, column indices
/// within one row are strictly increasing and `< cols`.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// An empty matrix with `cols` columns and no rows yet. Grow it with
    /// [`SparseMatrix::push_row`].
    pub fn with_cols(cols: usize) -> Self {
        Self {
            rows: 0,
            cols,
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends one row given its nonzero entries as `(column, value)` pairs.
    /// Entries may arrive in any order; they are sorted into CSR order.
    /// Exact zeros are dropped.
    ///
    /// # Panics
    /// Panics if a column index is out of range or repeated.
    pub fn push_row(&mut self, entries: &[(usize, f64)]) {
        let mut row: Vec<(usize, f64)> =
            entries.iter().copied().filter(|&(_, v)| v != 0.0).collect();
        row.sort_unstable_by_key(|&(c, _)| c);
        for w in row.windows(2) {
            assert!(w[0].0 != w[1].0, "repeated column {} in sparse row", w[0].0);
        }
        for &(c, v) in &row {
            assert!(c < self.cols, "column {} out of range ({})", c, self.cols);
            self.col_idx.push(c);
            self.values.push(v);
        }
        self.rows += 1;
        self.row_ptr.push(self.col_idx.len());
    }

    /// Appends one 0/1 row given the sorted-or-not set of columns that are 1.
    pub fn push_binary_row(&mut self, cols_set: &[usize]) {
        let mut cols: Vec<usize> = cols_set.to_vec();
        cols.sort_unstable();
        for w in cols.windows(2) {
            assert!(w[0] != w[1], "repeated column {} in binary row", w[0]);
        }
        for &c in &cols {
            assert!(c < self.cols, "column {} out of range ({})", c, self.cols);
            self.col_idx.push(c);
            self.values.push(1.0);
        }
        self.rows += 1;
        self.row_ptr.push(self.col_idx.len());
    }

    /// Builds a CSR matrix from a dense one, keeping entries with
    /// `|a_ij| > 0`.
    pub fn from_dense(a: &Matrix) -> Self {
        let mut m = Self::with_cols(a.cols());
        let mut entries = Vec::new();
        for i in 0..a.rows() {
            entries.clear();
            for (j, &v) in a.row_slice(i).iter().enumerate() {
                if v != 0.0 {
                    entries.push((j, v));
                }
            }
            m.push_row(&entries);
        }
        m
    }

    /// Materializes the dense equivalent. Meant for tests and small systems;
    /// at large scale this is exactly the allocation the sparse path exists
    /// to avoid.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (c, v) in self.row_entries(i) {
                m[(i, c)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are nonzero (`1.0` for an empty matrix so
    /// degenerate shapes route to the dense path).
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 1.0;
        }
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// The column indices of row `i` (sorted ascending).
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// The nonzero values of row `i`, aligned with [`SparseMatrix::row_cols`].
    pub fn row_values(&self, i: usize) -> &[f64] {
        &self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Iterates `(column, value)` over the nonzeros of row `i`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.row_cols(i)
            .iter()
            .copied()
            .zip(self.row_values(i).iter().copied())
    }

    /// Scatters row `i` into a dense buffer of length `cols` (zeroing it
    /// first). Used when folding sparse rows through the dense null-space
    /// update.
    pub fn scatter_row_into(&self, i: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.cols, "scatter buffer length mismatch");
        out.fill(0.0);
        for (c, v) in self.row_entries(i) {
            out[c] = v;
        }
    }

    /// Sparse mat-vec `A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let xs = x.as_slice();
        let mut out = vec![0.0; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row_entries(i) {
                acc += v * xs[c];
            }
            *slot = acc;
        }
        Vector::from_vec(out)
    }

    /// Transposed sparse mat-vec `Aᵀ y`.
    ///
    /// # Panics
    /// Panics if `y.len() != self.rows()`.
    pub fn at_matvec(&self, y: &Vector) -> Vector {
        assert_eq!(y.len(), self.rows, "at_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let yi = y[i];
            if yi == 0.0 {
                continue;
            }
            for (c, v) in self.row_entries(i) {
                out[c] += v * yi;
            }
        }
        Vector::from_vec(out)
    }

    /// Applies the ridge-regularized normal operator: `Aᵀ(A x) + λ x`,
    /// without ever forming `AᵀA`. This is the only operator CG needs.
    pub fn normal_matvec(&self, x: &Vector, ridge: f64) -> Vector {
        let mut out = self.at_matvec(&self.matvec(x));
        if ridge != 0.0 {
            out.axpy(ridge, x);
        }
        out
    }

    /// Assembles the dense normal matrix `AᵀA + λI` directly from the
    /// nonzeros: `O(Σ nnz(row)²)` instead of the dense `O(rows · cols²)`
    /// matmul. The *output* is dense `cols × cols`, so this is for systems
    /// whose column count is moderate (the LU-cached online solvers); CG
    /// never needs it.
    pub fn normal_matrix(&self, ridge: f64) -> Matrix {
        let n = self.cols;
        let mut ata = Matrix::zeros(n, n);
        for i in 0..self.rows {
            let cols = self.row_cols(i);
            let vals = self.row_values(i);
            for (a, &ca) in cols.iter().enumerate() {
                let va = vals[a];
                for (b, &cb) in cols.iter().enumerate() {
                    ata[(ca, cb)] += va * vals[b];
                }
            }
        }
        for d in 0..n {
            ata[(d, d)] += ridge;
        }
        ata
    }
}

/// Density threshold below which the CSR/CG path is worthwhile. Systems whose
/// incidence matrices carry ≥ 25 % nonzeros gain nothing from skipping zeros
/// and keep the dense elimination's exact numerics.
pub const SPARSE_MAX_DENSITY: f64 = 0.25;

/// Minimum number of columns (unknowns) before the sparse path activates.
/// Toy systems below this size keep the dense solvers byte-for-byte so their
/// worked examples and pinned tests never move.
pub const SPARSE_MIN_COLS: usize = 64;

/// Decides representation for a system of the given shape and nonzero count:
/// `true` routes to [`sparse_least_squares`], `false` keeps the dense oracle.
pub fn should_use_sparse(rows: usize, cols: usize, nnz: usize) -> bool {
    if cols < SPARSE_MIN_COLS || rows == 0 {
        return false;
    }
    (nnz as f64) < SPARSE_MAX_DENSITY * rows as f64 * cols as f64
}

/// Solves `min_x ||A x − b||` on a CSR system by conjugate gradients on the
/// ridge-regularized normal equations, reporting the same [`LstsqSolution`]
/// diagnostics as the dense [`least_squares`](crate::lstsq::least_squares).
///
/// Identifiability (when requested) is still derived from a dense null-space
/// elimination — it is a rank question, not a solve question — so hot paths
/// at scale should pass
/// [`LstsqOptions::without_identifiability`] exactly as they do on the dense
/// path.
///
/// # Panics
/// Panics if `b.len() != a.rows()`.
pub fn sparse_least_squares(a: &SparseMatrix, b: &Vector, opts: &LstsqOptions) -> LstsqSolution {
    assert_eq!(a.rows(), b.len(), "rhs length must equal number of rows");
    let n = a.cols();
    if n == 0 {
        return LstsqSolution {
            x: Vector::zeros(0),
            residual_norm_sq: b.dot(b),
            rank: 0,
            identifiable: Vec::new(),
            used_ridge_fallback: false,
        };
    }

    let (rank, identifiable) = if opts.compute_identifiability {
        let ns = nullspace_with_tol(&a.to_dense(), opts.tol);
        let rank = n - ns.cols();
        let mut identifiable = vec![true; n];
        for i in 0..n {
            for j in 0..ns.cols() {
                if ns[(i, j)].abs() > 1e-7 {
                    identifiable[i] = false;
                    break;
                }
            }
        }
        (rank, identifiable)
    } else {
        (n.min(a.rows()), vec![true; n])
    };

    let atb = a.at_matvec(b);
    let x = conjugate_gradient_normal(a, &atb, opts.ridge);
    let residual = &a.matvec(&x) - b;
    LstsqSolution {
        residual_norm_sq: residual.dot(&residual),
        x,
        rank,
        identifiable,
        used_ridge_fallback: true,
    }
}

/// CG on `(AᵀA + λI) x = atb` from `x₀ = 0`. Converges in at most
/// `distinct eigenvalues` steps in exact arithmetic; the iteration cap is a
/// safety net for pathological rounding, not the expected exit.
fn conjugate_gradient_normal(a: &SparseMatrix, atb: &Vector, ridge: f64) -> Vector {
    let n = a.cols();
    let mut x = Vector::zeros(n);
    let mut r = atb.clone();
    let mut p = r.clone();
    let mut rs = r.dot(&r);
    if rs == 0.0 {
        return x;
    }
    // Converge well below the 1e-7 identifiability scale so the sparse
    // solution is indistinguishable from the dense ridge solve.
    let stop = rs * 1e-24;
    let max_iter = 4 * n + 40;
    for _ in 0..max_iter {
        let ap = a.normal_matvec(&p, ridge);
        let p_ap = p.dot(&ap);
        if p_ap <= 0.0 || !p_ap.is_finite() {
            break;
        }
        let alpha = rs / p_ap;
        x.axpy(alpha, &p);
        r.axpy(-alpha, &ap);
        let rs_next = r.dot(&r);
        if rs_next <= stop || !rs_next.is_finite() {
            break;
        }
        let beta = rs_next / rs;
        rs = rs_next;
        let mut p_next = r.clone();
        p_next.axpy(beta, &p);
        p = p_next;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstsq::least_squares;

    fn dense_fixture() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![1.0, 1.0, 0.0, 1.0],
            vec![0.0, 0.0, 1.0, 1.0],
            vec![1.0, 0.0, 0.0, 0.0],
        ])
    }

    #[test]
    fn csr_round_trips_through_dense() {
        let d = dense_fixture();
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.rows(), 5);
        assert_eq!(s.cols(), 4);
        assert_eq!(s.nnz(), 9);
        assert!(s.to_dense().approx_eq(&d, 0.0));
        assert!((s.density() - 9.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn push_row_sorts_and_drops_zeros() {
        let mut s = SparseMatrix::with_cols(4);
        s.push_row(&[(3, 2.0), (0, 1.0), (2, 0.0)]);
        assert_eq!(s.row_cols(0), &[0, 3]);
        assert_eq!(s.row_values(0), &[1.0, 2.0]);
        s.push_binary_row(&[2, 1]);
        assert_eq!(s.row_cols(1), &[1, 2]);
        assert_eq!(s.row_values(1), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "repeated column")]
    fn repeated_columns_are_rejected() {
        let mut s = SparseMatrix::with_cols(4);
        s.push_row(&[(1, 1.0), (1, 2.0)]);
    }

    #[test]
    fn matvec_agrees_with_dense() {
        let d = dense_fixture();
        let s = SparseMatrix::from_dense(&d);
        let x = Vector::from_slice(&[1.0, -2.0, 0.5, 3.0]);
        assert!(s.matvec(&x).approx_eq(&d.matvec(&x), 1e-12));
        let y = Vector::from_slice(&[1.0, 0.0, -1.0, 2.0, 0.5]);
        assert!(s.at_matvec(&y).approx_eq(&d.transpose().matvec(&y), 1e-12));
    }

    #[test]
    fn normal_matrix_matches_dense_assembly() {
        let d = dense_fixture();
        let s = SparseMatrix::from_dense(&d);
        let mut expected = d.transpose().matmul(&d);
        for i in 0..expected.rows() {
            expected[(i, i)] += 0.5;
        }
        assert!(s.normal_matrix(0.5).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn scatter_row_reconstructs_dense_row() {
        let d = dense_fixture();
        let s = SparseMatrix::from_dense(&d);
        let mut buf = vec![7.0; 4];
        s.scatter_row_into(2, &mut buf);
        assert_eq!(buf, d.row_slice(2));
    }

    #[test]
    fn sparse_solve_matches_dense_on_full_rank() {
        let d = dense_fixture();
        let s = SparseMatrix::from_dense(&d);
        let b = Vector::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let opts = LstsqOptions::default();
        let dense = least_squares(&d, &b, &opts);
        let sparse = sparse_least_squares(&s, &b, &opts);
        assert!(
            sparse.x.approx_eq(&dense.x, 1e-6),
            "{sparse:?} vs {dense:?}"
        );
        assert_eq!(sparse.rank, dense.rank);
        assert_eq!(sparse.identifiable, dense.identifiable);
        assert!((sparse.residual_norm_sq - dense.residual_norm_sq).abs() < 1e-6);
    }

    #[test]
    fn sparse_solve_matches_dense_on_rank_deficient() {
        // x0 + x1 pinned to 2, x2 pinned to 5; x0/x1 unidentifiable.
        let d = Matrix::from_rows(&[vec![1.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]]);
        let s = SparseMatrix::from_dense(&d);
        let b = Vector::from_slice(&[2.0, 5.0]);
        let opts = LstsqOptions::default();
        let dense = least_squares(&d, &b, &opts);
        let sparse = sparse_least_squares(&s, &b, &opts);
        assert_eq!(sparse.rank, 2);
        assert_eq!(sparse.identifiable, vec![false, false, true]);
        assert!(sparse.x.approx_eq(&dense.x, 1e-5));
        assert!((sparse.x[2] - 5.0).abs() < 1e-3);
        assert!((sparse.x[0] + sparse.x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn empty_column_space_yields_empty_solution() {
        let s = SparseMatrix::with_cols(0);
        let b = Vector::zeros(0);
        let sol = sparse_least_squares(&s, &b, &LstsqOptions::default());
        assert_eq!(sol.x.len(), 0);
        assert_eq!(sol.rank, 0);
    }

    #[test]
    fn representation_choice_keeps_toy_systems_dense() {
        assert!(!should_use_sparse(100, SPARSE_MIN_COLS - 1, 10));
        assert!(should_use_sparse(100, 100, 400));
        // A dense-ish system stays on the dense path even when large.
        assert!(!should_use_sparse(100, 100, 5000));
        assert!(!should_use_sparse(0, 100, 0));
    }
}
