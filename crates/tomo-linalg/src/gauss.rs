//! Gaussian elimination: reduced row-echelon form (RREF), rank computation,
//! and exact solving of square systems.
//!
//! RREF with partial pivoting is the workhorse behind both the rank checks
//! used by the path-set selection algorithm (Algorithm 1 of the paper) and
//! the null-space basis extraction in [`crate::nullspace`].

use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::DEFAULT_TOL;

/// Result of reducing a matrix to reduced row-echelon form.
#[derive(Clone, Debug)]
pub struct RrefResult {
    /// The matrix in reduced row-echelon form.
    pub rref: Matrix,
    /// Column indices of the pivot columns, one per non-zero row, in order.
    pub pivot_cols: Vec<usize>,
    /// Rank of the original matrix (number of pivots).
    pub rank: usize,
}

/// Computes the reduced row-echelon form of `a` using partial pivoting.
///
/// Entries with absolute value below `tol` are treated as zero when choosing
/// pivots and when cleaning up the reduced matrix.
pub fn rref_with_tol(a: &Matrix, tol: f64) -> RrefResult {
    let mut m = a.clone();
    let (rows, cols) = m.shape();
    let mut pivot_cols = Vec::new();
    let mut pivot_row = 0usize;

    for col in 0..cols {
        if pivot_row >= rows {
            break;
        }
        // Partial pivoting: pick the row with the largest absolute value in
        // this column at or below `pivot_row`.
        let mut best_row = pivot_row;
        let mut best_val = m[(pivot_row, col)].abs();
        for r in (pivot_row + 1)..rows {
            let v = m[(r, col)].abs();
            if v > best_val {
                best_val = v;
                best_row = r;
            }
        }
        if best_val <= tol {
            continue; // no pivot in this column
        }
        // Swap rows.
        if best_row != pivot_row {
            for c in 0..cols {
                let tmp = m[(pivot_row, c)];
                m[(pivot_row, c)] = m[(best_row, c)];
                m[(best_row, c)] = tmp;
            }
        }
        // Normalize pivot row.
        let pivot = m[(pivot_row, col)];
        for c in 0..cols {
            m[(pivot_row, c)] /= pivot;
        }
        // Eliminate this column from every other row.
        for r in 0..rows {
            if r == pivot_row {
                continue;
            }
            let factor = m[(r, col)];
            if factor.abs() <= tol {
                m[(r, col)] = 0.0;
                continue;
            }
            for c in 0..cols {
                m[(r, c)] -= factor * m[(pivot_row, c)];
            }
            m[(r, col)] = 0.0;
        }
        pivot_cols.push(col);
        pivot_row += 1;
    }

    // Clean tiny residues so downstream consumers can rely on exact zeros.
    for i in 0..rows {
        for j in 0..cols {
            if m[(i, j)].abs() <= tol {
                m[(i, j)] = 0.0;
            }
        }
    }

    let rank = pivot_cols.len();
    RrefResult {
        rref: m,
        pivot_cols,
        rank,
    }
}

/// Computes the reduced row-echelon form of `a` with the default tolerance.
pub fn rref(a: &Matrix) -> RrefResult {
    rref_with_tol(a, DEFAULT_TOL)
}

/// Returns the rank of `a` (with the default tolerance).
pub fn rank(a: &Matrix) -> usize {
    rref(a).rank
}

/// Returns the rank of `a` using the supplied tolerance.
pub fn rank_with_tol(a: &Matrix, tol: f64) -> usize {
    rref_with_tol(a, tol).rank
}

/// Solves the square system `a * x = b` by Gaussian elimination.
///
/// Returns `None` if `a` is not square, the dimensions do not match, or `a`
/// is (numerically) singular.
pub fn solve_square(a: &Matrix, b: &Vector) -> Option<Vector> {
    let (rows, cols) = a.shape();
    if rows != cols || b.len() != rows {
        return None;
    }
    let n = rows;
    // Build the augmented matrix [a | b] and reduce it.
    let mut aug = Matrix::zeros(n, n + 1);
    for i in 0..n {
        for j in 0..n {
            aug[(i, j)] = a[(i, j)];
        }
        aug[(i, n)] = b[i];
    }
    let r = rref(&aug);
    // The system has a unique solution iff every one of the first n columns
    // is a pivot column.
    if r.rank < n
        || r.pivot_cols
            .iter()
            .take(n)
            .enumerate()
            .any(|(i, &c)| c != i)
    {
        return None;
    }
    Some(Vector::from_iter((0..n).map(|i| r.rref[(i, n)])))
}

/// Solves the square system `a * X = B` for a whole matrix of right-hand
/// sides in one elimination pass.
///
/// Equivalent to calling [`solve_square`] once per column of `b`, but the
/// O(n³) elimination is paid once instead of once per column — this is what
/// makes caching `(AᵀA + λI)⁻¹Aᵀ` affordable for the online estimators,
/// which re-apply the cached solver to every new observation batch.
///
/// Returns `None` if `a` is not square, the row counts do not match, or `a`
/// is (numerically) singular.
pub fn solve_multi(a: &Matrix, b: &Matrix) -> Option<Matrix> {
    let (rows, cols) = a.shape();
    if rows != cols || b.rows() != rows {
        return None;
    }
    let n = rows;
    let k = b.cols();
    // Build the augmented matrix [a | B] and reduce it.
    let mut aug = Matrix::zeros(n, n + k);
    for i in 0..n {
        for j in 0..n {
            aug[(i, j)] = a[(i, j)];
        }
        for j in 0..k {
            aug[(i, n + j)] = b[(i, j)];
        }
    }
    let r = rref(&aug);
    if r.rank < n
        || r.pivot_cols
            .iter()
            .take(n)
            .enumerate()
            .any(|(i, &c)| c != i)
    {
        return None;
    }
    Some(Matrix::from_fn(n, k, |i, j| r.rref[(i, n + j)]))
}

/// Checks whether appending `row` to the rows of `a` increases its rank.
///
/// This is the test used when deciding whether a new path-set equation is
/// linearly independent from the ones already collected. It is provided here
/// as a straightforward (non-incremental) reference; the incremental
/// equivalent used by Algorithm 1 goes through the null space
/// ([`crate::nullspace_update`]).
pub fn row_increases_rank(a: &Matrix, row: &[f64]) -> bool {
    if a.rows() == 0 {
        return row.iter().any(|&x| x.abs() > DEFAULT_TOL);
    }
    assert_eq!(row.len(), a.cols(), "row length mismatch");
    let base_rank = rank(a);
    let mut with_row = a.clone();
    with_row.push_row(row);
    rank(&with_row) > base_rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rref_of_identity_is_identity() {
        let i = Matrix::identity(4);
        let r = rref(&i);
        assert_eq!(r.rank, 4);
        assert!(r.rref.approx_eq(&i, 1e-12));
        assert_eq!(r.pivot_cols, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rank_of_dependent_rows() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![1.0, 0.0, 1.0],
        ]);
        assert_eq!(rank(&m), 2);
    }

    #[test]
    fn rank_of_zero_matrix_is_zero() {
        assert_eq!(rank(&Matrix::zeros(3, 5)), 0);
    }

    #[test]
    fn rref_known_example() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 1.0], vec![2.0, 4.0, 4.0]]);
        let r = rref(&m);
        // Row-reduces to [[1, 2, 0], [0, 0, 1]].
        let expected = Matrix::from_rows(&[vec![1.0, 2.0, 0.0], vec![0.0, 0.0, 1.0]]);
        assert!(r.rref.approx_eq(&expected, 1e-9));
        assert_eq!(r.pivot_cols, vec![0, 2]);
        assert_eq!(r.rank, 2);
    }

    #[test]
    fn solve_square_known_system() {
        // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let b = Vector::from_slice(&[5.0, 1.0]);
        let x = solve_square(&a, &b).expect("system is regular");
        assert!(x.approx_eq(&Vector::from_slice(&[2.0, 1.0]), 1e-9));
    }

    #[test]
    fn solve_square_detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let b = Vector::from_slice(&[1.0, 2.0]);
        assert!(solve_square(&a, &b).is_none());
    }

    #[test]
    fn solve_square_rejects_non_square() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let b = Vector::from_slice(&[1.0]);
        assert!(solve_square(&a, &b).is_none());
    }

    #[test]
    fn solve_multi_matches_per_column_solves() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 1.0, 0.0], vec![1.0, -1.0, 3.0]]);
        let x = solve_multi(&a, &b).expect("system is regular");
        assert_eq!(x.shape(), (2, 3));
        for j in 0..3 {
            let xj = solve_square(&a, &b.col(j)).unwrap();
            assert!(x.col(j).approx_eq(&xj, 1e-9), "column {j}");
        }
    }

    #[test]
    fn solve_multi_detects_singular_and_shape_mismatch() {
        let singular = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(solve_multi(&singular, &Matrix::identity(2)).is_none());
        let a = Matrix::identity(2);
        assert!(solve_multi(&a, &Matrix::zeros(3, 1)).is_none());
    }

    #[test]
    fn row_increases_rank_detects_dependence() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 1.0]]);
        assert!(!row_increases_rank(&a, &[1.0, 1.0, 2.0]));
        assert!(row_increases_rank(&a, &[0.0, 0.0, 1.0]));
    }

    #[test]
    fn rank_is_bounded_by_dimensions() {
        let m = Matrix::from_fn(4, 7, |i, j| ((i * 7 + j) % 5) as f64);
        assert!(rank(&m) <= 4);
    }
}
